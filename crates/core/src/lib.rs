#![warn(missing_docs)]

//! # zoom-core
//!
//! The ZOOM*UserViews system facade — the Rust analog of the prototype of
//! Section IV: register workflow specifications, construct good user views
//! interactively, ingest run logs into the provenance warehouse, and answer
//! immediate/deep/forward provenance queries *with respect to a user view*,
//! with rendered (DOT / text) provenance graphs.
//!
//! ```
//! use zoom_core::Zoom;
//! use zoom_model::{DataId, SpecBuilder, RunBuilder};
//!
//! // A two-module workflow: formatting then analysis.
//! let mut b = SpecBuilder::new("demo");
//! b.formatting("Format");
//! b.analysis("Analyze");
//! b.from_input("Format").edge("Format", "Analyze").to_output("Analyze");
//! let spec = b.build().unwrap();
//!
//! let mut zoom = Zoom::new();
//! let sid = zoom.register_workflow(spec.clone()).unwrap();
//! // Only "Analyze" matters to this user: formatting folds into its view.
//! let view = zoom.build_view(sid, &["Analyze"]).unwrap();
//!
//! let mut rb = RunBuilder::new(&spec);
//! let s1 = rb.step(spec.module("Format").unwrap());
//! let s2 = rb.step(spec.module("Analyze").unwrap());
//! rb.input_edge(s1, [1]).data_edge(s1, s2, [2]).output_edge(s2, [3]);
//! let rid = zoom.load_run(sid, rb.build().unwrap()).unwrap();
//!
//! let prov = zoom.deep_provenance(rid, view, DataId(3)).unwrap();
//! // d2 (internal to the composite) is hidden; d1 and d3 are visible.
//! assert_eq!(prov.tuples(), 2);
//! ```

pub mod compare;
pub mod queries;
pub mod remote;
pub mod render;
pub mod server;
pub mod session;
pub mod system;

pub use compare::{compare_view_runs, ComparisonReport, ExecMatch, RunComparison};
pub use queries::{
    execute as execute_canned, execute_many as execute_canned_many, CannedQuery, QueryAnswer,
};
pub use remote::{execute_canned_remote, RemoteError, RemoteResult, RemoteRetry, RemoteZoom};
pub use render::{provenance_to_dot, provenance_to_text, view_on_spec_to_dot};
pub use server::{Daemon, DaemonConfig, DrainReport};
pub use session::QuerySession;
pub use system::{StreamHandle, Zoom};

pub use zoom_warehouse::{
    BreakerState, HealthReport, ImmediateAnswer, IndexBackend, ProvenanceResult, ProvenanceRow,
    PushOutcome, ReplayOptions, ReplayReport, Result, RunId, SpecId, StreamError, TraceError,
    TraceOp, TraceRecorder, TraceReplayer, TraceTarget, ViewId, VisibilityPolicy, Warehouse,
    WarehouseError,
};
