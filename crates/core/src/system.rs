//! The ZOOM system facade (Section IV, Figure 8): one object wiring the
//! provenance warehouse, the view builder, and the query layer together.

use std::path::Path;
use zoom_graph::NodeId;
use zoom_model::{DataId, EventLog, UserView, WorkflowRun, WorkflowSpec};
use zoom_views::relev_user_view_builder;
use zoom_warehouse::persist::PersistError;
use zoom_warehouse::{
    ImmediateAnswer, ProvenanceResult, Result, RunId, SpecId, ViewId, Warehouse, WarehouseError,
};

/// The ZOOM system: registration, view building, execution loading, and
/// provenance querying behind one API.
#[derive(Debug, Default)]
pub struct Zoom {
    warehouse: Warehouse,
}

impl Zoom {
    /// A fresh system with an empty warehouse.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the underlying warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Mutable access to the underlying warehouse (bulk operations).
    pub fn warehouse_mut(&mut self) -> &mut Warehouse {
        &mut self.warehouse
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a workflow specification.
    pub fn register_workflow(&mut self, spec: WorkflowSpec) -> Result<SpecId> {
        self.warehouse.register_spec(spec)
    }

    /// Registers an explicit user view.
    pub fn register_view(&mut self, spec: SpecId, view: UserView) -> Result<ViewId> {
        self.warehouse.register_view(spec, view)
    }

    /// Builds a *good* user view from relevant module labels with
    /// `RelevUserViewBuilder` and registers it. Re-registering the same
    /// relevant set returns the existing view.
    pub fn build_view(&mut self, spec_id: SpecId, relevant_labels: &[&str]) -> Result<ViewId> {
        let spec = self.warehouse.spec(spec_id)?;
        let relevant: Vec<NodeId> = relevant_labels
            .iter()
            .map(|l| spec.module(l))
            .collect::<zoom_model::Result<_>>()?;
        let built = relev_user_view_builder(spec, &relevant)?;
        if let Some(existing) = self.warehouse.find_view(spec_id, built.view.name()) {
            return Ok(existing);
        }
        self.warehouse.register_view(spec_id, built.view)
    }

    /// The finest view (UAdmin), registered on first use.
    pub fn admin_view(&mut self, spec_id: SpecId) -> Result<ViewId> {
        if let Some(v) = self.warehouse.find_view(spec_id, "UAdmin") {
            return Ok(v);
        }
        let view = UserView::admin(self.warehouse.spec(spec_id)?);
        self.warehouse.register_view(spec_id, view)
    }

    /// The coarsest view (UBlackBox), registered on first use.
    pub fn black_box_view(&mut self, spec_id: SpecId) -> Result<ViewId> {
        if let Some(v) = self.warehouse.find_view(spec_id, "UBlackBox") {
            return Ok(v);
        }
        let view = UserView::black_box(self.warehouse.spec(spec_id)?);
        self.warehouse.register_view(spec_id, view)
    }

    /// Loads a validated run.
    pub fn load_run(&mut self, spec: SpecId, run: WorkflowRun) -> Result<RunId> {
        self.warehouse.load_run(spec, run)
    }

    /// Ingests a workflow-system event log.
    pub fn load_log(&mut self, spec: SpecId, log: &EventLog) -> Result<RunId> {
        self.warehouse.load_log(spec, log)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Deep provenance of `data` through `view`.
    pub fn deep_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ProvenanceResult> {
        self.warehouse.deep_provenance(run, view, data)
    }

    /// Deep provenance of many `(run, view, data)` triples at once,
    /// fanned out across threads; results come back in input order.
    pub fn query_batch(
        &self,
        queries: &[(RunId, ViewId, DataId)],
    ) -> Vec<Result<ProvenanceResult>> {
        self.warehouse.deep_provenance_many(queries)
    }

    /// Immediate provenance of `data` through `view`.
    pub fn immediate_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ImmediateAnswer> {
        self.warehouse.immediate_provenance(run, view, data)
    }

    /// Canned forward query: the data objects that have `data` in their
    /// provenance.
    pub fn dependents_of(&self, run: RunId, view: ViewId, data: DataId) -> Result<Vec<DataId>> {
        self.warehouse.dependents_of(run, view, data)
    }

    /// The data set passed between two executions (Section IV's edge-click
    /// interaction). `None` endpoints denote the run's input/output nodes.
    pub fn data_between(
        &self,
        run: RunId,
        view: ViewId,
        from: Option<zoom_model::StepId>,
        to: Option<zoom_model::StepId>,
    ) -> Result<Vec<DataId>> {
        self.warehouse.data_between(run, view, from, to)
    }

    /// The run's final outputs (data flowing to the output node) — the
    /// target of "the most expensive provenance query possible" used
    /// throughout Section V.
    pub fn final_outputs(&self, run: RunId) -> Result<Vec<DataId>> {
        Ok(self.warehouse.run(run)?.final_outputs())
    }

    /// Deep provenance of the run's (first) final output through `view`.
    pub fn deep_provenance_of_final_output(
        &self,
        run: RunId,
        view: ViewId,
    ) -> Result<ProvenanceResult> {
        let outs = self.final_outputs(run)?;
        let &target = outs
            .first()
            .ok_or(WarehouseError::DataNotFound(DataId(0)))?;
        self.deep_provenance(run, view, target)
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Saves the warehouse snapshot to `path`.
    pub fn save(&self, path: &Path) -> std::result::Result<(), PersistError> {
        zoom_warehouse::persist::save(&self.warehouse, path)
    }

    /// Loads a system from a warehouse snapshot.
    pub fn load(path: &Path) -> std::result::Result<Self, PersistError> {
        Ok(Zoom {
            warehouse: zoom_warehouse::persist::load(path)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, StepId};

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("sys");
        b.formatting("F");
        b.analysis("R");
        b.from_input("F").edge("F", "R").to_output("R");
        b.build().unwrap()
    }

    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(s.module("F").unwrap());
        let s2 = rb.step(s.module("R").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        rb.build().unwrap()
    }

    #[test]
    fn facade_flow() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let vid = z.build_view(sid, &["R"]).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();

        // The built view groups F into C(R): only d1 and d3 are visible.
        let res = z.deep_provenance_of_final_output(rid, vid).unwrap();
        assert_eq!(res.tuples(), 2);
        let admin = z.admin_view(sid).unwrap();
        let res = z.deep_provenance_of_final_output(rid, admin).unwrap();
        assert_eq!(res.tuples(), 3);
        let bb = z.black_box_view(sid).unwrap();
        let res = z.deep_provenance_of_final_output(rid, bb).unwrap();
        assert_eq!(res.tuples(), 2);

        // Idempotent view creation.
        assert_eq!(z.build_view(sid, &["R"]).unwrap(), vid);
        assert_eq!(z.admin_view(sid).unwrap(), admin);
        assert_eq!(z.black_box_view(sid).unwrap(), bb);
    }

    #[test]
    fn unknown_relevant_label_errors() {
        let mut z = Zoom::new();
        let sid = z.register_workflow(spec()).unwrap();
        assert!(z.build_view(sid, &["nope"]).is_err());
    }

    #[test]
    fn forward_query_through_facade() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();
        assert_eq!(
            z.dependents_of(rid, admin, DataId(1)).unwrap(),
            vec![DataId(2), DataId(3)]
        );
        match z.immediate_provenance(rid, admin, DataId(3)).unwrap() {
            ImmediateAnswer::Produced { exec, .. } => assert_eq!(exec, StepId(2)),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn save_and_load_via_facade() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("zoom-core-test-{}", std::process::id()));
        z.save(&path).unwrap();
        let z2 = Zoom::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let res = z2.deep_provenance_of_final_output(rid, admin).unwrap();
        assert_eq!(res.tuples(), 3);
    }
}
