//! The ZOOM system facade (Section IV, Figure 8): one object wiring the
//! provenance warehouse, the view builder, and the query layer together.

use std::cell::RefCell;
use std::path::Path;
use zoom_graph::NodeId;
use zoom_model::{DataId, EventLog, LogEvent, UserView, WorkflowRun, WorkflowSpec};
use zoom_views::relev_user_view_builder;
use zoom_warehouse::metrics::MetricsRegistry;
use zoom_warehouse::persist::PersistError;
use zoom_warehouse::privacy::{Decision, PolicyMetricsSink, PolicyTable, ViewRegistry};
use zoom_warehouse::{
    DurableError, DurableOptions, DurableWarehouse, FsckReport, HealthReport, ImmediateAnswer,
    IndexBackend, MetricsSnapshot, ProvenanceResult, PushOutcome, ReadRegistrar, Result, RunId,
    SlowQuery, SpecId, StreamError, TraceOp, TraceTarget, ViewId, VisibilityPolicy, Warehouse,
    WarehouseError, WarehouseStats,
};

/// Maps a durable-store error back into the warehouse error space:
/// warehouse-level rejections surface identically to the in-memory path;
/// genuine durability failures (io, torn snapshots, bad manifests) come
/// through as [`WarehouseError::Durability`].
fn durability_err(e: DurableError) -> WarehouseError {
    match e {
        DurableError::Warehouse(we) => we,
        other => WarehouseError::Durability(Box::new(other)),
    }
}

/// The storage behind a [`Zoom`] system: a plain in-memory warehouse or a
/// crash-safe [`DurableWarehouse`] directory.
#[derive(Debug)]
enum Backing {
    Memory(Box<Warehouse>),
    Durable(Box<DurableWarehouse>),
}

/// The ZOOM system: registration, view building, execution loading, and
/// provenance querying behind one API.
#[derive(Debug)]
pub struct Zoom {
    backing: Backing,
    /// Per-tenant visibility policies (DESIGN.md §16). The plain query
    /// methods are the embedder's own (admin) surface and never consult
    /// this; the `*_as` tenant-scoped variants enforce it. Policies are
    /// compiled eagerly at every registration point, so tenant-scoped
    /// queries only ever hit the compiled caches.
    policies: PolicyTable,
}

impl Default for Zoom {
    fn default() -> Self {
        Zoom {
            backing: Backing::Memory(Box::new(Warehouse::new())),
            policies: PolicyTable::new(),
        }
    }
}

/// [`ViewRegistry`] + [`PolicyMetricsSink`] over an exclusively-borrowed
/// [`Zoom`]: view registration takes the facade's own (journaled, when
/// durable) path, and enforcement counters land in the warehouse's
/// metrics registry. The `RefCell` threads the single `&mut` through the
/// registry trait's `&self` methods — sound because the policy compiler
/// never re-enters the registrar.
struct ZoomRegistrar<'a>(RefCell<&'a mut Zoom>);

impl ViewRegistry for ZoomRegistrar<'_> {
    fn spec_of(&self, id: SpecId) -> Result<WorkflowSpec> {
        self.0.borrow().warehouse().spec(id).cloned()
    }
    fn view_of(&self, id: ViewId) -> Result<UserView> {
        self.0.borrow().warehouse().view(id).cloned()
    }
    fn find_view_id(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        self.0.borrow().warehouse().find_view(spec, name)
    }
    fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> Result<ViewId> {
        let mut z = self.0.borrow_mut();
        if let Some(existing) = z.warehouse().find_view(spec, view.name()) {
            return Ok(existing);
        }
        z.register_view_raw(spec, view.clone())
    }
    fn spec_ids(&self) -> Vec<SpecId> {
        self.0.borrow().warehouse().spec_ids()
    }
    fn view_ids_of(&self, spec: SpecId) -> Vec<ViewId> {
        self.0.borrow().warehouse().views_of_spec(spec).to_vec()
    }
}

impl PolicyMetricsSink for ZoomRegistrar<'_> {
    fn policy_substitution(&self) {
        self.0
            .borrow()
            .warehouse()
            .metrics_registry()
            .record_policy_substitution();
    }
    fn policy_denial(&self) {
        self.0
            .borrow()
            .warehouse()
            .metrics_registry()
            .record_policy_denial();
    }
    fn policy_cache_hit(&self) {
        self.0
            .borrow()
            .warehouse()
            .metrics_registry()
            .record_policy_cache_hit();
    }
    fn policy_compilation(&self) {
        self.0
            .borrow()
            .warehouse()
            .metrics_registry()
            .record_policy_compilation();
    }
}

impl Zoom {
    /// A fresh system with an empty in-memory warehouse.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or initializes) a crash-safe system in `dir`: every
    /// registration and run load is journaled before it is acknowledged,
    /// and the journal auto-compacts into snapshots. See
    /// [`zoom_warehouse::durable`].
    pub fn open_durable(dir: &Path) -> std::result::Result<Self, DurableError> {
        Ok(Zoom {
            backing: Backing::Durable(Box::new(DurableWarehouse::open(dir)?)),
            policies: PolicyTable::new(),
        })
    }

    /// [`Zoom::open_durable`] with explicit durability options.
    pub fn open_durable_opts(
        dir: &Path,
        options: DurableOptions,
    ) -> std::result::Result<Self, DurableError> {
        Ok(Zoom {
            backing: Backing::Durable(Box::new(DurableWarehouse::open_opts(dir, options)?)),
            policies: PolicyTable::new(),
        })
    }

    /// Whether this system is backed by a durable directory.
    pub fn is_durable(&self) -> bool {
        matches!(self.backing, Backing::Durable(_))
    }

    /// Forces a compaction of the durable store (snapshot, fresh journal,
    /// atomic manifest swing). Returns `false` (and does nothing) for
    /// in-memory systems.
    pub fn checkpoint(&mut self) -> Result<bool> {
        match &mut self.backing {
            Backing::Memory(_) => Ok(false),
            Backing::Durable(dw) => {
                dw.checkpoint().map_err(durability_err)?;
                Ok(true)
            }
        }
    }

    /// Rebuilds a durable backing in place: fsck the directory, replay
    /// manifest + snapshot + journal into a fresh [`DurableWarehouse`]
    /// (fresh breaker, fresh retry state), prove the disk writable with a
    /// checkpoint, and swap the fresh store in. This is the single-system
    /// analog of the shard router's online repair — the recovery path an
    /// operator reaches for after replacing a sick disk under a live
    /// `Zoom`. Returns `None` (and does nothing) for in-memory systems;
    /// on any failure the existing backing is left untouched.
    pub fn repair(&mut self) -> std::result::Result<Option<FsckReport>, DurableError> {
        let Backing::Durable(dw) = &self.backing else {
            return Ok(None);
        };
        let (io, dir, options) = (dw.io(), dw.dir().to_path_buf(), dw.options());
        let report = zoom_warehouse::durable::fsck_with(&*io, &dir)?;
        let mut fresh = DurableWarehouse::open_with(io, &dir, options)?;
        // Recovery alone is read-only; only a write proves the disk back.
        fresh.checkpoint()?;
        self.backing = Backing::Durable(Box::new(fresh));
        Ok(Some(report))
    }

    /// Warehouse statistics; durable systems fill in the journal and
    /// compaction counters.
    pub fn stats(&self) -> WarehouseStats {
        match &self.backing {
            Backing::Memory(w) => w.stats(),
            Backing::Durable(dw) => dw.stats(),
        }
    }

    /// A full observability snapshot: the [`WarehouseStats`] table
    /// counters folded together with per-query-class latency histograms,
    /// cache hit/miss/eviction counters, journal fsync latency,
    /// checkpoint durations, batch fan-out, and the slow-query log.
    /// Serializable, and rendered as JSON by
    /// [`MetricsSnapshot::to_json`] (`zoomctl stats --json`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.warehouse().metrics_with(self.stats())
    }

    /// Sets the slow-query threshold: successful queries at least this
    /// slow are captured (with run/view/data context) in a bounded ring
    /// buffer. 0 captures everything; `u64::MAX` disables the log.
    pub fn set_slow_query_threshold_nanos(&self, nanos: u64) {
        self.warehouse()
            .metrics_registry()
            .set_slow_threshold_nanos(nanos);
    }

    /// The captured slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.warehouse().metrics_registry().slow_queries()
    }

    /// A point-in-time health report: write-availability, circuit-breaker
    /// state, and the lifetime resilience counters. In-memory systems are
    /// always healthy and writable; durable systems report the breaker.
    pub fn health(&self) -> HealthReport {
        match &self.backing {
            Backing::Memory(_) => HealthReport::in_memory(),
            Backing::Durable(dw) => dw.health(),
        }
    }

    /// Sets the default per-query time budget. `None` removes the limit.
    /// Queries exceeding the budget return
    /// [`WarehouseError::DeadlineExceeded`].
    pub fn set_default_deadline(&self, budget: Option<std::time::Duration>) {
        self.warehouse().set_default_deadline(budget);
    }

    /// The current default per-query time budget, if any.
    pub fn default_deadline(&self) -> Option<std::time::Duration> {
        self.warehouse().default_deadline()
    }

    /// Cancels every in-flight query cooperatively: each returns
    /// [`WarehouseError::Cancelled`] at its next deadline check. Queries
    /// issued after this call run normally.
    pub fn cancel_queries(&self) {
        self.warehouse().cancel_queries();
    }

    /// Bounds concurrent facade queries (admission control). Queries past
    /// `max_in_flight` wait in a queue of at most `max_queue`; beyond that
    /// they are shed with [`WarehouseError::Overloaded`].
    pub fn set_admission_limits(&mut self, max_in_flight: usize, max_queue: usize) {
        match &mut self.backing {
            Backing::Memory(w) => w.set_admission_limits(max_in_flight, max_queue),
            Backing::Durable(dw) => dw.set_admission_limits(max_in_flight, max_queue),
        }
    }

    /// Caps worker threads used by batch query fan-out (0 = hardware
    /// parallelism).
    pub fn set_max_batch_workers(&self, workers: usize) {
        self.warehouse().set_max_batch_workers(workers);
    }

    /// Forces every provenance query onto one reachability backend
    /// (`IndexBackend::{Labels, Bitset, Bfs}`); `None` restores the
    /// automatic node-count policy.
    pub fn set_index_backend(&self, backend: Option<IndexBackend>) {
        self.warehouse().set_index_backend(backend);
    }

    /// The forced reachability backend, or `None` under the automatic
    /// policy.
    pub fn index_backend(&self) -> Option<IndexBackend> {
        self.warehouse().index_backend()
    }

    /// Sets the run size (graph nodes) at which the automatic policy
    /// switches from bitset rows to interval labels.
    pub fn set_labels_threshold(&self, nodes: usize) {
        self.warehouse().set_labels_threshold(nodes);
    }

    /// Read access to the underlying warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        match &self.backing {
            Backing::Memory(w) => w,
            Backing::Durable(dw) => dw.warehouse(),
        }
    }

    /// Mutable access to the underlying warehouse, for bulk operations
    /// that bypass the durability layer. `None` when the system is
    /// durable: direct mutation would diverge memory from disk.
    pub fn warehouse_mut(&mut self) -> Option<&mut Warehouse> {
        match &mut self.backing {
            Backing::Memory(w) => Some(w),
            Backing::Durable(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a workflow specification (journaled when durable).
    pub fn register_workflow(&mut self, spec: WorkflowSpec) -> Result<SpecId> {
        let id = match &mut self.backing {
            Backing::Memory(w) => w.register_spec(spec),
            Backing::Durable(dw) => dw.register_spec(spec).map_err(durability_err),
        }?;
        self.refresh_policies()?;
        Ok(id)
    }

    /// The registration path without the policy refresh — what the
    /// policy compiler itself registers privacy views through (refreshing
    /// from inside the refresh would recurse before the compiled cache is
    /// written).
    fn register_view_raw(&mut self, spec: SpecId, view: UserView) -> Result<ViewId> {
        match &mut self.backing {
            Backing::Memory(w) => w.register_view(spec, view),
            Backing::Durable(dw) => dw.register_view(spec, view).map_err(durability_err),
        }
    }

    /// Registers an explicit user view (journaled when durable).
    pub fn register_view(&mut self, spec: SpecId, view: UserView) -> Result<ViewId> {
        let id = self.register_view_raw(spec, view)?;
        self.refresh_policies()?;
        Ok(id)
    }

    /// Builds a *good* user view from relevant module labels with
    /// `RelevUserViewBuilder` and registers it. Re-registering the same
    /// relevant set returns the existing view.
    pub fn build_view(&mut self, spec_id: SpecId, relevant_labels: &[&str]) -> Result<ViewId> {
        let spec = self.warehouse().spec(spec_id)?;
        let relevant: Vec<NodeId> = relevant_labels
            .iter()
            .map(|l| spec.module(l))
            .collect::<zoom_model::Result<_>>()?;
        let built = relev_user_view_builder(spec, &relevant)?;
        if let Some(existing) = self.warehouse().find_view(spec_id, built.view.name()) {
            return Ok(existing);
        }
        self.register_view(spec_id, built.view)
    }

    /// The finest view (UAdmin), registered on first use.
    pub fn admin_view(&mut self, spec_id: SpecId) -> Result<ViewId> {
        if let Some(v) = self.warehouse().find_view(spec_id, "UAdmin") {
            return Ok(v);
        }
        let view = UserView::admin(self.warehouse().spec(spec_id)?);
        self.register_view(spec_id, view)
    }

    /// The coarsest view (UBlackBox), registered on first use.
    pub fn black_box_view(&mut self, spec_id: SpecId) -> Result<ViewId> {
        if let Some(v) = self.warehouse().find_view(spec_id, "UBlackBox") {
            return Ok(v);
        }
        let view = UserView::black_box(self.warehouse().spec(spec_id)?);
        self.register_view(spec_id, view)
    }

    /// The coarsest view that conceals the given modules — every hidden
    /// module ends up inside a composite with at least one other module,
    /// so no query at this view can single it out. Registered on first
    /// use; re-requesting the same hidden set returns the existing view.
    /// Errors with [`WarehouseError::PolicyUnsatisfiable`] when the spec
    /// has nothing to absorb the hidden module into (≤ 1 module).
    pub fn private_view(&mut self, spec_id: SpecId, hidden_labels: &[&str]) -> Result<ViewId> {
        let spec = self.warehouse().spec(spec_id)?;
        let hidden: Vec<NodeId> = hidden_labels
            .iter()
            .map(|l| spec.module(l))
            .collect::<zoom_model::Result<_>>()?;
        let view = zoom_warehouse::conceal(spec, &hidden)?;
        if let Some(existing) = self.warehouse().find_view(spec_id, view.name()) {
            return Ok(existing);
        }
        self.register_view(spec_id, view)
    }

    // ------------------------------------------------------------------
    // Per-tenant visibility policies (DESIGN.md §16)
    // ------------------------------------------------------------------

    /// Installs (or with `None`/an empty policy, clears) `tenant`'s
    /// visibility policy, then eagerly compiles every installed policy
    /// against every registered spec — an unsatisfiable policy fails
    /// *here*, at administration time, with
    /// [`WarehouseError::PolicyUnsatisfiable`].
    pub fn set_policy(&mut self, tenant: &str, policy: Option<VisibilityPolicy>) -> Result<()> {
        let table = std::mem::take(&mut self.policies);
        let result = {
            let reg = ZoomRegistrar(RefCell::new(self));
            table
                .install(tenant, policy, &reg, &reg)
                .and_then(|()| table.compile_all(&reg, &reg))
        };
        self.policies = table;
        result
    }

    /// The installed policy for `tenant`, if any.
    pub fn policy(&self, tenant: &str) -> Option<VisibilityPolicy> {
        self.policies.get(tenant).map(|p| (*p).clone())
    }

    /// Re-compiles every installed policy against the current spec/view
    /// tables (no-op when no policies are installed). Called after each
    /// registration so tenant-scoped queries never need to register
    /// through a shared borrow.
    fn refresh_policies(&mut self) -> Result<()> {
        if self.policies.is_empty() {
            return Ok(());
        }
        let table = std::mem::take(&mut self.policies);
        let result = {
            let reg = ZoomRegistrar(RefCell::new(self));
            table.compile_all(&reg, &reg)
        };
        self.policies = table;
        result
    }

    /// The view a query by `tenant` against `(run, view)` actually
    /// executes with: unchanged for unrestricted tenants (one atomic load
    /// when no policies exist at all), the compiled privacy/meet view for
    /// restricted ones, and `Err(RunNotFound)` — byte-identical to the
    /// run being absent — when the policy denies the run's workflow
    /// outright. Internal policy errors fail *closed* for the same
    /// reason: a distinct error would confirm the run exists.
    pub fn effective_view(&self, tenant: &str, run: RunId, view: ViewId) -> Result<ViewId> {
        if self.policies.is_empty() {
            return Ok(view);
        }
        let wh = self.warehouse();
        let Ok(spec) = wh.run_spec(run) else {
            return Ok(view); // natural RunNotFound renders downstream
        };
        let reg = ReadRegistrar::new(wh);
        let sink = wh.metrics_registry();
        match self.policies.spec_denied(tenant, spec, &reg, sink) {
            Ok(false) => {}
            Ok(true) | Err(_) => return Err(WarehouseError::RunNotFound(run)),
        }
        match self.policies.view_decision(tenant, spec, view, &reg, sink) {
            Ok(Decision::Pass) => Ok(view),
            Ok(Decision::Substitute(v)) => Ok(v),
            Ok(Decision::Deny) | Err(_) => Err(WarehouseError::RunNotFound(run)),
        }
    }

    /// Renders hidden-data answers as absence for restricted tenants: a
    /// [`WarehouseError::DataNotVisible`] from a query `tenant` ran under
    /// a policy that conceals modules in `run`'s workflow becomes
    /// [`WarehouseError::DataNotFound`]. Without this, probing a data id
    /// internal to a concealed composite answers "exists but hidden" —
    /// an existence oracle distinguishing two runs that differ only
    /// inside hidden modules. Internal policy errors keep the laundered
    /// rendering (fail closed).
    fn conceal_data_errors<T>(&self, tenant: &str, run: RunId, res: Result<T>) -> Result<T> {
        let Err(WarehouseError::DataNotVisible { data, view }) = res else {
            return res;
        };
        if !self.policies.is_empty() {
            let wh = self.warehouse();
            if let Ok(spec) = wh.run_spec(run) {
                let reg = ReadRegistrar::new(wh);
                match self
                    .policies
                    .spec_restricted(tenant, spec, &reg, wh.metrics_registry())
                {
                    Ok(true) | Err(_) => return Err(WarehouseError::DataNotFound(data)),
                    Ok(false) => {}
                }
            }
        }
        Err(WarehouseError::DataNotVisible { data, view })
    }

    /// Gate for run-addressed (viewless) tenant queries: `Err(RunNotFound)`
    /// when `tenant`'s policy hides the run's workflow.
    fn run_gate(&self, tenant: &str, run: RunId) -> Result<()> {
        if self.policies.is_empty() {
            return Ok(());
        }
        let wh = self.warehouse();
        let Ok(spec) = wh.run_spec(run) else {
            return Ok(());
        };
        let reg = ReadRegistrar::new(wh);
        match self
            .policies
            .spec_denied(tenant, spec, &reg, wh.metrics_registry())
        {
            Ok(false) => Ok(()),
            Ok(true) | Err(_) => Err(WarehouseError::RunNotFound(run)),
        }
    }

    /// [`Zoom::deep_provenance`] as `tenant`, with the tenant's policy
    /// enforced by view substitution before the query runs.
    pub fn deep_provenance_as(
        &self,
        tenant: &str,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ProvenanceResult> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        let view = self.effective_view(tenant, run, view)?;
        let res = self.warehouse().deep_provenance(run, view, data);
        self.conceal_data_errors(tenant, run, res)
    }

    /// [`Zoom::immediate_provenance`] as `tenant`.
    pub fn immediate_provenance_as(
        &self,
        tenant: &str,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ImmediateAnswer> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        let view = self.effective_view(tenant, run, view)?;
        let res = self.warehouse().immediate_provenance(run, view, data);
        self.conceal_data_errors(tenant, run, res)
    }

    /// [`Zoom::dependents_of`] as `tenant`.
    pub fn dependents_of_as(
        &self,
        tenant: &str,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<Vec<DataId>> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        let view = self.effective_view(tenant, run, view)?;
        let res = self.warehouse().dependents_of(run, view, data);
        self.conceal_data_errors(tenant, run, res)
    }

    /// [`Zoom::data_between`] as `tenant`.
    pub fn data_between_as(
        &self,
        tenant: &str,
        run: RunId,
        view: ViewId,
        from: Option<zoom_model::StepId>,
        to: Option<zoom_model::StepId>,
    ) -> Result<Vec<DataId>> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        let view = self.effective_view(tenant, run, view)?;
        let res = self.warehouse().data_between(run, view, from, to);
        self.conceal_data_errors(tenant, run, res)
    }

    /// [`Zoom::final_outputs`] as `tenant`.
    pub fn final_outputs_as(&self, tenant: &str, run: RunId) -> Result<Vec<DataId>> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        self.run_gate(tenant, run)?;
        self.final_outputs(run)
    }

    /// [`Zoom::visible_data`] as `tenant`.
    pub fn visible_data_as(&self, tenant: &str, run: RunId, view: ViewId) -> Result<Vec<DataId>> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        let view = self.effective_view(tenant, run, view)?;
        self.visible_data(run, view)
    }

    /// [`Zoom::query_batch`] as `tenant`: each triple is enforced
    /// independently; denied slots answer in place with the same error an
    /// absent run would produce.
    pub fn query_batch_as(
        &self,
        tenant: &str,
        queries: &[(RunId, ViewId, DataId)],
    ) -> Vec<Result<ProvenanceResult>> {
        let _tag = zoom_warehouse::metrics::tag_tenant(Some(tenant));
        if self.policies.is_empty() {
            return self.query_batch(queries);
        }
        let mut slots: Vec<Option<Result<ProvenanceResult>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut routed: Vec<(usize, (RunId, ViewId, DataId))> = Vec::new();
        for (i, &(run, view, data)) in queries.iter().enumerate() {
            match self.effective_view(tenant, run, view) {
                Ok(v) => routed.push((i, (run, v, data))),
                Err(e) => slots[i] = Some(Err(e)),
            }
        }
        let triples: Vec<_> = routed.iter().map(|&(_, t)| t).collect();
        for ((i, (run, _, _)), ans) in routed.iter().zip(self.query_batch(&triples)) {
            slots[*i] = Some(self.conceal_data_errors(tenant, *run, ans));
        }
        slots
            .into_iter()
            .map(|s| s.expect("every batch slot answered"))
            .collect()
    }

    /// Loads a validated run (journaled when durable).
    pub fn load_run(&mut self, spec: SpecId, run: WorkflowRun) -> Result<RunId> {
        match &mut self.backing {
            Backing::Memory(w) => w.load_run(spec, run),
            Backing::Durable(dw) => dw.load_run(spec, run).map_err(durability_err),
        }
    }

    /// Ingests a workflow-system event log (journaled when durable).
    pub fn load_log(&mut self, spec: SpecId, log: &EventLog) -> Result<RunId> {
        match &mut self.backing {
            Backing::Memory(w) => w.load_log(spec, log),
            Backing::Durable(dw) => dw.load_log(spec, log).map_err(durability_err),
        }
    }

    // ------------------------------------------------------------------
    // Streaming ingestion
    // ------------------------------------------------------------------

    /// Opens a streaming run against a registered spec and returns a
    /// handle for pushing events. The run is queryable immediately: every
    /// committed step answers deep/forward provenance mid-run, and
    /// [`StreamHandle::seal`] turns the prefix into a complete run.
    /// Journaled event-by-event when durable.
    pub fn begin_stream(&mut self, spec: SpecId) -> Result<StreamHandle<'_>> {
        let run = match &mut self.backing {
            Backing::Memory(w) => w.begin_stream(spec)?,
            Backing::Durable(dw) => dw.begin_stream(spec).map_err(durability_err)?,
        };
        Ok(StreamHandle { zoom: self, run })
    }

    /// Re-attaches to a live stream (e.g. after recovering a durable
    /// store that crashed mid-run). Errors if the run is not streaming.
    pub fn resume_stream(&mut self, run: RunId) -> Result<StreamHandle<'_>> {
        if !self.warehouse().is_streaming(run) {
            self.warehouse().run(run)?; // surface RunNotFound first
            return Err(WarehouseError::Stream(StreamError::SealedStream));
        }
        Ok(StreamHandle { zoom: self, run })
    }

    /// Pushes one event into a live stream (journaled when durable).
    /// Handle-free variant of [`StreamHandle::push_event`].
    pub fn stream_push(&mut self, run: RunId, event: &LogEvent) -> Result<PushOutcome> {
        match &mut self.backing {
            Backing::Memory(w) => w.stream_push(run, event),
            Backing::Durable(dw) => dw.stream_push(run, event).map_err(durability_err),
        }
    }

    /// Seals a live stream into a complete run (journaled when durable).
    pub fn stream_seal(&mut self, run: RunId) -> Result<()> {
        match &mut self.backing {
            Backing::Memory(w) => w.stream_seal(run),
            Backing::Durable(dw) => dw.stream_seal(run).map_err(durability_err),
        }
    }

    /// Number of live (unsealed) streams.
    pub fn active_streams(&self) -> usize {
        self.warehouse().active_streams()
    }

    /// Whether `run` is a live stream.
    pub fn is_streaming(&self, run: RunId) -> bool {
        self.warehouse().is_streaming(run)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Deep provenance of `data` through `view`.
    pub fn deep_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ProvenanceResult> {
        self.warehouse().deep_provenance(run, view, data)
    }

    /// Deep provenance of `data` through `view` under an explicit time
    /// budget, overriding the system-wide default deadline. Returns
    /// [`WarehouseError::DeadlineExceeded`] when the budget runs out.
    pub fn deep_provenance_within(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
        budget: std::time::Duration,
    ) -> Result<ProvenanceResult> {
        let mut deadline = zoom_warehouse::Deadline::after(budget);
        self.warehouse()
            .deep_provenance_with_deadline(run, view, data, &mut deadline)
    }

    /// Deep provenance of many `(run, view, data)` triples at once,
    /// fanned out across threads; results come back in input order.
    pub fn query_batch(
        &self,
        queries: &[(RunId, ViewId, DataId)],
    ) -> Vec<Result<ProvenanceResult>> {
        self.warehouse().deep_provenance_many(queries)
    }

    /// Immediate provenance of `data` through `view`.
    pub fn immediate_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> Result<ImmediateAnswer> {
        self.warehouse().immediate_provenance(run, view, data)
    }

    /// Canned forward query: the data objects that have `data` in their
    /// provenance.
    pub fn dependents_of(&self, run: RunId, view: ViewId, data: DataId) -> Result<Vec<DataId>> {
        self.warehouse().dependents_of(run, view, data)
    }

    /// The data set passed between two executions (Section IV's edge-click
    /// interaction). `None` endpoints denote the run's input/output nodes.
    pub fn data_between(
        &self,
        run: RunId,
        view: ViewId,
        from: Option<zoom_model::StepId>,
        to: Option<zoom_model::StepId>,
    ) -> Result<Vec<DataId>> {
        self.warehouse().data_between(run, view, from, to)
    }

    /// The run's final outputs (data flowing to the output node) — the
    /// target of "the most expensive provenance query possible" used
    /// throughout Section V.
    pub fn final_outputs(&self, run: RunId) -> Result<Vec<DataId>> {
        Ok(self.warehouse().run(run)?.final_outputs())
    }

    /// Every data object visible at `view` over `run` (the rendered
    /// provenance graph's node set).
    pub fn visible_data(&self, run: RunId, view: ViewId) -> Result<Vec<DataId>> {
        Ok(self.warehouse().view_run(run, view)?.visible_data())
    }

    /// Deep provenance of the run's (first) final output through `view`.
    pub fn deep_provenance_of_final_output(
        &self,
        run: RunId,
        view: ViewId,
    ) -> Result<ProvenanceResult> {
        let outs = self.final_outputs(run)?;
        let &target = outs.first().ok_or(WarehouseError::NoFinalOutputs(run))?;
        self.deep_provenance(run, view, target)
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Saves the warehouse snapshot to `path`.
    pub fn save(&self, path: &Path) -> std::result::Result<(), PersistError> {
        zoom_warehouse::persist::save(self.warehouse(), path)
    }

    /// Loads a system (in-memory) from a warehouse snapshot.
    pub fn load(path: &Path) -> std::result::Result<Self, PersistError> {
        Ok(Zoom {
            backing: Backing::Memory(Box::new(zoom_warehouse::persist::load(path)?)),
            policies: PolicyTable::new(),
        })
    }
}

/// A borrow of a [`Zoom`] system scoped to one live streaming run.
///
/// Obtained from [`Zoom::begin_stream`] / [`Zoom::resume_stream`]. Events
/// pushed through the handle commit steps into the run's queryable prefix
/// as their provenance closes; [`StreamHandle::seal`] completes the run.
#[derive(Debug)]
pub struct StreamHandle<'a> {
    zoom: &'a mut Zoom,
    run: RunId,
}

impl StreamHandle<'_> {
    /// The streaming run's id (valid for queries right away).
    pub fn run_id(&self) -> RunId {
        self.run
    }

    /// Pushes one event. `Committed` lists the steps that entered the
    /// queryable prefix because of this event; `Buffered` means the event
    /// was accepted (and journaled, when durable) but its step still waits
    /// on upstream producers.
    pub fn push_event(&mut self, event: &LogEvent) -> Result<PushOutcome> {
        self.zoom.stream_push(self.run, event)
    }

    /// Seals the stream: every started step must have committed and at
    /// least one output been finalized. Consumes the handle and returns
    /// the (now complete) run's id.
    pub fn seal(self) -> Result<RunId> {
        self.zoom.stream_seal(self.run)?;
        Ok(self.run)
    }

    /// Read access to the system, for querying mid-stream.
    pub fn zoom(&self) -> &Zoom {
        self.zoom
    }
}

impl TraceTarget for Zoom {
    fn apply_trace_op(&mut self, op: &TraceOp) -> u64 {
        // Delegate to the backing store's own impl so mutations take the
        // journaled path on durable systems and digests stay canonical.
        match &mut self.backing {
            Backing::Memory(w) => w.apply_trace_op(op),
            Backing::Durable(dw) => dw.apply_trace_op(op),
        }
    }

    fn replay_metrics(&self) -> Option<&MetricsRegistry> {
        Some(self.warehouse().metrics_registry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, StepId};

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("sys");
        b.formatting("F");
        b.analysis("R");
        b.from_input("F").edge("F", "R").to_output("R");
        b.build().unwrap()
    }

    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(s.module("F").unwrap());
        let s2 = rb.step(s.module("R").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        rb.build().unwrap()
    }

    #[test]
    fn facade_flow() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let vid = z.build_view(sid, &["R"]).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();

        // The built view groups F into C(R): only d1 and d3 are visible.
        let res = z.deep_provenance_of_final_output(rid, vid).unwrap();
        assert_eq!(res.tuples(), 2);
        let admin = z.admin_view(sid).unwrap();
        let res = z.deep_provenance_of_final_output(rid, admin).unwrap();
        assert_eq!(res.tuples(), 3);
        let bb = z.black_box_view(sid).unwrap();
        let res = z.deep_provenance_of_final_output(rid, bb).unwrap();
        assert_eq!(res.tuples(), 2);

        // Idempotent view creation.
        assert_eq!(z.build_view(sid, &["R"]).unwrap(), vid);
        assert_eq!(z.admin_view(sid).unwrap(), admin);
        assert_eq!(z.black_box_view(sid).unwrap(), bb);
    }

    #[test]
    fn unknown_relevant_label_errors() {
        let mut z = Zoom::new();
        let sid = z.register_workflow(spec()).unwrap();
        assert!(z.build_view(sid, &["nope"]).is_err());
    }

    #[test]
    fn forward_query_through_facade() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();
        assert_eq!(
            z.dependents_of(rid, admin, DataId(1)).unwrap(),
            vec![DataId(2), DataId(3)]
        );
        match z.immediate_provenance(rid, admin, DataId(3)).unwrap() {
            ImmediateAnswer::Produced { exec, .. } => assert_eq!(exec, StepId(2)),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn durable_facade_survives_reopen() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("zoom-core-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let s = spec();
        let (sid, vid, rid) = {
            let mut z = Zoom::open_durable(&dir).unwrap();
            assert!(z.is_durable());
            assert!(z.warehouse_mut().is_none(), "durable denies raw mutation");
            let sid = z.register_workflow(s.clone()).unwrap();
            let vid = z.build_view(sid, &["R"]).unwrap();
            let rid = z.load_run(sid, run(&s)).unwrap();
            assert_eq!(z.stats().journal_records, 3);
            (sid, vid, rid)
        };
        // Reopen: same ids, same answers, journaled state intact.
        let mut z = Zoom::open_durable(&dir).unwrap();
        let st = z.stats();
        assert_eq!((st.specs, st.views, st.runs), (1, 1, 1));
        assert_eq!(st.journal_records, 3);
        assert_eq!(z.build_view(sid, &["R"]).unwrap(), vid);
        let res = z.deep_provenance_of_final_output(rid, vid).unwrap();
        assert_eq!(res.tuples(), 2);

        // Checkpoint compacts into a snapshot epoch.
        assert!(z.checkpoint().unwrap());
        let st = z.stats();
        assert_eq!(st.epoch, 1);
        assert_eq!(st.journal_records, 0);
        assert_eq!(st.compactions, 1);
        drop(z);
        let z = Zoom::open_durable(&dir).unwrap();
        assert_eq!(z.stats().epoch, 1);
        let res = z.deep_provenance_of_final_output(rid, vid).unwrap();
        assert_eq!(res.tuples(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_snapshot_through_facade() {
        use zoom_warehouse::{QueryKind, ViewClass};
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();
        z.set_slow_query_threshold_nanos(0); // capture every query

        z.deep_provenance(rid, admin, DataId(3)).unwrap();
        z.dependents_of(rid, admin, DataId(1)).unwrap();
        z.query_batch(&[(rid, admin, DataId(3)), (rid, admin, DataId(2))]);
        let _ = z.deep_provenance(rid, admin, DataId(99)); // missing → error

        let m = z.metrics();
        let deep_admin = m
            .queries
            .iter()
            .find(|q| q.kind == QueryKind::Deep && q.view_class == ViewClass::Admin)
            .unwrap();
        assert_eq!(deep_admin.latency.count, 3); // 1 direct + 2 batched
        let dep_admin = m
            .queries
            .iter()
            .find(|q| q.kind == QueryKind::Dependents && q.view_class == ViewClass::Admin)
            .unwrap();
        assert_eq!(dep_admin.latency.count, 1);
        assert_eq!(m.query_errors, 1);
        assert_eq!(m.batch.batches, 1);
        assert_eq!(m.batch.queries, 2);
        assert_eq!(m.batch.max_fanout, 2);
        assert_eq!(m.view_run_cache.misses, 1);
        assert_eq!(m.index_cache.misses, 1);
        assert_eq!(m.stats.view_run_misses, 1);
        assert!(m.view_run_cache.hits >= 3);
        // The slow log captured the successful queries with context.
        let slow = z.slow_queries();
        assert_eq!(slow.len(), 4);
        assert!(slow.iter().all(|q| q.run == rid && q.view_name == "UAdmin"));
        // And the JSON rendering carries the documented sections.
        let json = m.to_json();
        for key in [
            "\"stats\"",
            "\"queries\"",
            "\"slow_queries\"",
            "\"journal\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn streaming_through_facade() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let log = EventLog::from_run(&run(&s), &s);

        let mut h = z.begin_stream(sid).unwrap();
        let rid = h.run_id();
        let mut committed = 0usize;
        for ev in &log.events {
            if let PushOutcome::Committed(steps) = h.push_event(ev).unwrap() {
                committed += steps.len();
            }
        }
        assert_eq!(committed, 2);
        // Queryable before the seal: the committed prefix answers deep
        // provenance of d2. The final output d3 only joins the graph when
        // the seal attaches it to the output node.
        let res = h.zoom().deep_provenance(rid, admin, DataId(2)).unwrap();
        assert_eq!(res.tuples(), 2);
        assert!(h.zoom().deep_provenance(rid, admin, DataId(3)).is_err());
        assert_eq!(h.seal().unwrap(), rid);
        assert!(!z.is_streaming(rid));
        assert_eq!(z.active_streams(), 0);
        let res = z.deep_provenance_of_final_output(rid, admin).unwrap();
        assert_eq!(res.tuples(), 3);
        let m = z.metrics();
        assert_eq!(m.stream.streams_started, 1);
        assert_eq!(m.stream.streams_sealed, 1);
        assert_eq!(m.stream.steps_committed, 2);

        // Resume only works on live streams.
        assert!(z.resume_stream(rid).is_err());
        let h2 = z.begin_stream(sid).unwrap();
        let rid2 = h2.run_id();
        assert!(z.resume_stream(rid2).is_ok());
    }

    #[test]
    fn trace_roundtrip_through_facade() {
        use zoom_warehouse::{ReplayOptions, TraceRecorder, TraceReplayer};
        let s = spec();
        let log = EventLog::from_run(&run(&s), &s);

        let mut z = Zoom::new();
        let mut rec = TraceRecorder::default();
        rec.record(&mut z, TraceOp::RegisterSpec(s.clone()));
        rec.record(&mut z, TraceOp::RegisterView(sid0(), UserView::admin(&s)));
        rec.record(&mut z, TraceOp::BeginStream(sid0()));
        for ev in &log.events {
            rec.record(&mut z, TraceOp::PushEvent(RunId(0), ev.clone()));
        }
        rec.record(&mut z, TraceOp::SealStream(RunId(0)));
        rec.record(
            &mut z,
            TraceOp::DeepProvenance(RunId(0), ViewId(0), DataId(3)),
        );

        let replayer = TraceReplayer::from_bytes(&rec.to_bytes().unwrap()).unwrap();
        let mut fresh = Zoom::new();
        let report = replayer.replay(&mut fresh, &ReplayOptions::default());
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
        assert_eq!(fresh.metrics().replay.sessions, 1);
    }

    fn sid0() -> SpecId {
        SpecId(0)
    }

    #[test]
    fn memory_facade_checkpoint_is_a_no_op() {
        let mut z = Zoom::new();
        assert!(!z.is_durable());
        assert!(!z.checkpoint().unwrap());
        assert!(z.warehouse_mut().is_some());
        assert_eq!(z.stats().epoch, 0);
    }

    #[test]
    fn save_and_load_via_facade() {
        let mut z = Zoom::new();
        let s = spec();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let rid = z.load_run(sid, run(&s)).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("zoom-core-test-{}", std::process::id()));
        z.save(&path).unwrap();
        let z2 = Zoom::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let res = z2.deep_provenance_of_final_output(rid, admin).unwrap();
        assert_eq!(res.tuples(), 3);
    }
}
