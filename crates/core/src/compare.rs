//! View-aware run comparison.
//!
//! The paper's motivation is reproducibility ("to understand and reproduce
//! the results of an experiment"), and its related work notes that existing
//! comparative-visualization tools do not "provide provenance information
//! at various levels of user views". This module compares two runs of the
//! same workflow *through a user view*: executions are aligned per
//! composite module in execution order, and compared by their visible I/O
//! shape. The payoff of view-awareness: two runs that differ only inside a
//! composite (say, a different number of alignment-loop iterations) are
//! **identical** at that view level, while UAdmin still sees the difference.

use std::fmt;
use zoom_model::{CompositeId, StepId, UserView, ViewRun};

/// How one aligned pair of executions compares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecMatch {
    /// The composite module both executions instantiate.
    pub composite: CompositeId,
    /// Execution id in the first run.
    pub a: StepId,
    /// Execution id in the second run.
    pub b: StepId,
    /// Visible input cardinalities `(a, b)`.
    pub inputs: (usize, usize),
    /// Visible output cardinalities `(a, b)`.
    pub outputs: (usize, usize),
}

impl ExecMatch {
    /// Whether the two executions have the same visible I/O shape.
    pub fn same_shape(&self) -> bool {
        self.inputs.0 == self.inputs.1 && self.outputs.0 == self.outputs.1
    }
}

/// The result of comparing two runs through one view.
#[derive(Clone, Debug, Default)]
pub struct RunComparison {
    /// Aligned execution pairs, per composite, in execution order.
    pub matched: Vec<ExecMatch>,
    /// Executions present only in the first run.
    pub only_in_a: Vec<(CompositeId, StepId)>,
    /// Executions present only in the second run.
    pub only_in_b: Vec<(CompositeId, StepId)>,
}

impl RunComparison {
    /// `true` when the two runs are indistinguishable at this view level:
    /// the same executions per composite with the same visible I/O shapes.
    pub fn identical_shape(&self) -> bool {
        self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
            && self.matched.iter().all(ExecMatch::same_shape)
    }

    /// Number of aligned pairs with diverging shapes.
    pub fn divergences(&self) -> usize {
        self.matched.iter().filter(|m| !m.same_shape()).count()
            + self.only_in_a.len()
            + self.only_in_b.len()
    }
}

/// Compares two view-runs of the same `(spec, view)` pair.
///
/// # Panics
/// Panics if the view-runs belong to different specifications or views
/// (callers obtain both from the same warehouse `(run, view)` queries).
pub fn compare_view_runs(a: &ViewRun, b: &ViewRun) -> RunComparison {
    assert_eq!(a.spec_name(), b.spec_name(), "runs of different workflows");
    assert_eq!(a.view_name(), b.view_name(), "runs through different views");

    let mut out = RunComparison::default();
    // Group executions by composite, preserving each run's execution order
    // (ViewRun orders execs by smallest member step).
    let composites: std::collections::BTreeSet<CompositeId> = a
        .execs()
        .iter()
        .chain(b.execs())
        .map(|e| e.composite)
        .collect();
    for c in composites {
        let of = |vr: &ViewRun| -> Vec<(u32, StepId)> {
            vr.execs()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.composite == c)
                .map(|(i, e)| (i as u32, e.id))
                .collect()
        };
        let (ea, eb) = (of(a), of(b));
        let n = ea.len().min(eb.len());
        for k in 0..n {
            let (ia, sa) = ea[k];
            let (ib, sb) = eb[k];
            out.matched.push(ExecMatch {
                composite: c,
                a: sa,
                b: sb,
                inputs: (a.inputs_of(ia).len(), b.inputs_of(ib).len()),
                outputs: (a.outputs_of(ia).len(), b.outputs_of(ib).len()),
            });
        }
        for &(_, s) in &ea[n..] {
            out.only_in_a.push((c, s));
        }
        for &(_, s) in &eb[n..] {
            out.only_in_b.push((c, s));
        }
    }
    out
}

/// A displayable comparison report.
pub struct ComparisonReport<'a> {
    /// The comparison.
    pub comparison: &'a RunComparison,
    /// The view, for composite names.
    pub view: &'a UserView,
}

impl fmt::Display for ComparisonReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.comparison;
        if c.identical_shape() {
            return writeln!(
                f,
                "runs are indistinguishable at view level `{}` \
                 ({} execution(s) aligned)",
                self.view.name(),
                c.matched.len()
            );
        }
        writeln!(
            f,
            "runs diverge at view level `{}`: {} divergence(s)",
            self.view.name(),
            c.divergences()
        )?;
        for m in &c.matched {
            if !m.same_shape() {
                writeln!(
                    f,
                    "  {}: {} vs {} — inputs {}/{} outputs {}/{}",
                    self.view.composite_name(m.composite),
                    m.a,
                    m.b,
                    m.inputs.0,
                    m.inputs.1,
                    m.outputs.0,
                    m.outputs.1
                )?;
            }
        }
        for &(comp, s) in &c.only_in_a {
            writeln!(
                f,
                "  {}: execution {s} only in the first run",
                self.view.composite_name(comp)
            )?;
        }
        for &(comp, s) in &c.only_in_b {
            writeln!(
                f,
                "  {}: execution {s} only in the second run",
                self.view.composite_name(comp)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, WorkflowRun, WorkflowSpec};
    use zoom_views::relev_user_view_builder;

    /// input -> A -> B -> C -> output with loop C -> B.
    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("cmp");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("C", "B")
            .to_output("C");
        b.build().unwrap()
    }

    /// A run with `iters` traversals of the B/C loop.
    fn run(s: &WorkflowSpec, iters: usize) -> WorkflowRun {
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(a);
        rb.input_edge(s1, [1]);
        let mut d = 2u64;
        let mut prev = s1;
        for i in 0..iters {
            let sb = rb.step(b);
            let sc = rb.step(c);
            rb.data_edge(prev, sb, [d]);
            rb.data_edge(sb, sc, [d + 1]);
            d += 2;
            if i + 1 == iters {
                rb.output_edge(sc, [d]);
            }
            prev = sc;
        }
        rb.build().unwrap()
    }

    #[test]
    fn identical_runs_compare_identical() {
        let s = spec();
        let (r1, r2) = (run(&s, 2), run(&s, 2));
        let admin = zoom_model::UserView::admin(&s);
        let cmp = compare_view_runs(&ViewRun::new(&r1, &admin), &ViewRun::new(&r2, &admin));
        assert!(cmp.identical_shape());
        assert_eq!(cmp.divergences(), 0);
        assert_eq!(cmp.matched.len(), 5); // A + 2x(B, C)
    }

    #[test]
    fn view_abstracts_away_loop_differences() {
        let s = spec();
        // Three loop iterations vs two.
        let (r1, r2) = (run(&s, 3), run(&s, 2));

        // UAdmin sees the extra B and C executions.
        let admin = zoom_model::UserView::admin(&s);
        let cmp = compare_view_runs(&ViewRun::new(&r1, &admin), &ViewRun::new(&r2, &admin));
        assert!(!cmp.identical_shape());
        assert_eq!(cmp.only_in_a.len(), 2);

        // A view that folds the loop into one composite (relevant = {A})
        // cannot tell the runs apart: the loop is internal.
        let a = s.module("A").unwrap();
        let coarse = relev_user_view_builder(&s, &[a]).unwrap().view;
        let cmp = compare_view_runs(&ViewRun::new(&r1, &coarse), &ViewRun::new(&r2, &coarse));
        assert!(
            cmp.identical_shape(),
            "loop iterations are hidden inside the composite: {cmp:?}"
        );
    }

    #[test]
    fn report_rendering() {
        let s = spec();
        let (r1, r2) = (run(&s, 3), run(&s, 2));
        let admin = zoom_model::UserView::admin(&s);
        let cmp = compare_view_runs(&ViewRun::new(&r1, &admin), &ViewRun::new(&r2, &admin));
        let report = ComparisonReport {
            comparison: &cmp,
            view: &admin,
        }
        .to_string();
        assert!(report.contains("diverge"), "{report}");
        assert!(report.contains("only in the first run"), "{report}");

        let same = compare_view_runs(&ViewRun::new(&r1, &admin), &ViewRun::new(&r1, &admin));
        let report = ComparisonReport {
            comparison: &same,
            view: &admin,
        }
        .to_string();
        assert!(report.contains("indistinguishable"), "{report}");
    }

    #[test]
    #[should_panic(expected = "different views")]
    fn mismatched_views_panic() {
        let s = spec();
        let r = run(&s, 2);
        let admin = zoom_model::UserView::admin(&s);
        let bb = zoom_model::UserView::black_box(&s);
        compare_view_runs(&ViewRun::new(&r, &admin), &ViewRun::new(&r, &bb));
    }
}
