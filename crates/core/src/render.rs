//! Provenance-answer rendering — the stand-in for ZOOM's graphical display
//! (the paper's Figure 9 shows the deep provenance of `d447` as a graph).
//!
//! Renders a [`ProvenanceResult`] either as GraphViz DOT (the provenance
//! subgraph of the view-run) or as an indented text tree rooted at the
//! queried data object.

use std::fmt::Write as _;
use zoom_model::{DataId, UserView, ViewRun, ViewRunNode};
use zoom_warehouse::ProvenanceResult;

/// Renders the provenance subgraph (the visited executions, the input node
/// when involved, and the data edges among them) as DOT.
pub fn provenance_to_dot(vr: &ViewRun, view: &UserView, result: &ProvenanceResult) -> String {
    use zoom_model::run::format_data_range;
    let g = vr.graph();
    let involved = |n: zoom_graph::NodeId| -> bool {
        match g.node(n) {
            ViewRunNode::Input => true, // kept if it has edges into the set
            ViewRunNode::Output => false,
            ViewRunNode::Exec(i) => {
                let e = &vr.execs()[*i as usize];
                result.execs.binary_search(&e.id).is_ok()
            }
        }
    };
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"provenance of {}\" {{", result.target);
    let _ = writeln!(s, "  rankdir=LR;");
    let mut used_input = false;
    // Edges among involved nodes, restricted to provenance data.
    let in_result = |d: DataId| result.rows.binary_search_by_key(&d, |r| r.data).is_ok();
    for (_, src, tgt, data) in g.edges() {
        if !involved(src) || !involved(tgt) || matches!(g.node(tgt), ViewRunNode::Input) {
            continue;
        }
        let shown: Vec<DataId> = data.iter().copied().filter(|&d| in_result(d)).collect();
        if shown.is_empty() {
            continue;
        }
        if matches!(g.node(src), ViewRunNode::Input) {
            used_input = true;
        }
        let _ = writeln!(
            s,
            "  n{} -> n{} [label=\"{}\"];",
            src.index(),
            tgt.index(),
            format_data_range(&shown)
        );
    }
    // Node declarations.
    for (id, node) in g.nodes() {
        match node {
            ViewRunNode::Input if used_input => {
                let _ = writeln!(s, "  n{} [label=\"input\",shape=circle];", id.index());
            }
            ViewRunNode::Exec(i) if involved(id) => {
                let e = &vr.execs()[*i as usize];
                let _ = writeln!(
                    s,
                    "  n{} [label=\"{}:{}\",shape=box{}];",
                    id.index(),
                    e.id,
                    zoom_graph::dot::escape(view.composite_name(e.composite)),
                    if e.is_virtual { ",style=dotted" } else { "" }
                );
            }
            _ => {}
        }
    }
    s.push_str("}\n");
    s
}

/// Renders a specification with a user view overlaid as dotted composite
/// boxes — the paper's Figure 1, where `M9`, `M10`, `M11` appear as dotted
/// rectangles around their member modules. Relevant modules are shaded.
/// Composite boxes are drawn only for non-singleton composites (singleton
/// boxes add no information).
pub fn view_on_spec_to_dot(
    spec: &zoom_model::WorkflowSpec,
    view: &UserView,
    relevant: &[zoom_graph::NodeId],
) -> String {
    use std::fmt::Write as _;
    use zoom_graph::dot::escape;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(spec.name()));
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  n0 [label=\"input\",shape=circle];");
    let _ = writeln!(s, "  n1 [label=\"output\",shape=circle];");
    for c in view.composite_ids() {
        let members = view.members(c);
        let declare = |s: &mut String, m: zoom_graph::NodeId, indent: &str| {
            let attrs = if relevant.contains(&m) {
                "shape=box,style=filled,fillcolor=gray"
            } else {
                "shape=box"
            };
            let _ = writeln!(
                s,
                "{indent}n{} [label=\"{}\",{}];",
                m.index(),
                escape(spec.label(m)),
                attrs
            );
        };
        if members.len() == 1 {
            declare(&mut s, members[0], "  ");
        } else {
            let _ = writeln!(s, "  subgraph cluster_{} {{", c.index());
            let _ = writeln!(s, "    style=dotted;");
            let _ = writeln!(s, "    label=\"{}\";", escape(view.composite_name(c)));
            for &m in members {
                declare(&mut s, m, "    ");
            }
            let _ = writeln!(s, "  }}");
        }
    }
    for (_, src, tgt, _) in spec.graph().edges() {
        let _ = writeln!(s, "  n{} -> n{};", src.index(), tgt.index());
    }
    s.push_str("}\n");
    s
}

/// Renders the provenance as an indented text tree rooted at the target:
/// each level shows a data object, its producer, and (recursively) the
/// producer's inputs. Shared sub-provenance is expanded once and referenced
/// afterwards (`…see above`); data ranges are compacted.
pub fn provenance_to_text(vr: &ViewRun, view: &UserView, result: &ProvenanceResult) -> String {
    let mut out = String::new();
    let mut expanded: Vec<DataId> = Vec::new();
    render_datum(vr, view, result.target, 0, &mut expanded, &mut out);
    out
}

fn render_datum(
    vr: &ViewRun,
    view: &UserView,
    d: DataId,
    depth: usize,
    expanded: &mut Vec<DataId>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let Some(producer) = vr.producer_node(d) else {
        let _ = writeln!(out, "{pad}{d} (not visible at this level)");
        return;
    };
    if producer == vr.input() {
        let _ = writeln!(out, "{pad}{d} <- user input");
        return;
    }
    let exec = vr.exec_at(producer).expect("producer is input or exec");
    if expanded.contains(&d) {
        let _ = writeln!(
            out,
            "{pad}{d} <- {}:{} (see above)",
            exec.id,
            view.composite_name(exec.composite)
        );
        return;
    }
    expanded.push(d);
    let idx = match vr.graph().node(producer) {
        ViewRunNode::Exec(i) => *i,
        _ => unreachable!("checked"),
    };
    let inputs = vr.inputs_of(idx);
    let _ = writeln!(
        out,
        "{pad}{d} <- {}:{} ({} input{})",
        exec.id,
        view.composite_name(exec.composite),
        inputs.len(),
        if inputs.len() == 1 { "" } else { "s" }
    );
    // Compact: group inputs by producer; expand one representative per
    // producer and list the rest as a range.
    let mut by_producer: Vec<(Option<zoom_graph::NodeId>, Vec<DataId>)> = Vec::new();
    for x in inputs {
        let p = vr.producer_node(x);
        if let Some(entry) = by_producer.iter_mut().find(|(pp, _)| *pp == p) {
            entry.1.push(x);
        } else {
            by_producer.push((p, vec![x]));
        }
    }
    for (p, data) in by_producer {
        match p {
            Some(n) if n == vr.input() => {
                let pad2 = "  ".repeat(depth + 1);
                let _ = writeln!(
                    out,
                    "{pad2}{} <- user input",
                    zoom_model::run::format_data_range(&data)
                );
            }
            _ => {
                // Recurse on the first datum; siblings share the producer.
                render_datum(vr, view, data[0], depth + 1, expanded, out);
                if data.len() > 1 {
                    let pad2 = "  ".repeat(depth + 1);
                    let _ = writeln!(
                        out,
                        "{pad2}(+ {} more from the same execution: {})",
                        data.len() - 1,
                        zoom_model::run::format_data_range(&data[1..])
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, UserView};

    fn setup() -> (zoom_model::WorkflowRun, ViewRun, UserView, ProvenanceResult) {
        let mut b = SpecBuilder::new("render");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        let s = b.build().unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1, 2])
            .data_edge(s1, s2, [3])
            .output_edge(s2, [4]);
        let r = rb.build().unwrap();
        let v = UserView::admin(&s);
        let vr = ViewRun::new(&r, &v);
        let res = zoom_warehouse::deep_provenance(&r, &vr, zoom_model::DataId(4))
            .unwrap()
            .unwrap();
        (r, vr, v, res)
    }

    #[test]
    fn text_tree_shows_chain() {
        let (_r, vr, v, res) = setup();
        let text = provenance_to_text(&vr, &v, &res);
        assert!(text.contains("d4 <- S2:B"), "{text}");
        assert!(text.contains("d3 <- S1:A"), "{text}");
        assert!(text.contains("d1..d2 <- user input"), "{text}");
    }

    #[test]
    fn clustered_view_rendering() {
        let mut b = SpecBuilder::new("cluster");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .to_output("C");
        let s = b.build().unwrap();
        let (a, bb, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                zoom_model::CompositeModule::new("AB", vec![a, bb]),
                zoom_model::CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        let dot = view_on_spec_to_dot(&s, &v, &[a]);
        assert!(dot.contains("subgraph cluster_0"), "{dot}");
        assert!(dot.contains("label=\"AB\""));
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("fillcolor=gray")); // A is relevant
                                                 // Singleton composite C gets no cluster box.
        assert!(!dot.contains("subgraph cluster_1"));
        assert!(dot.contains("n0 ->"));
    }

    #[test]
    fn dot_contains_involved_nodes_and_data() {
        let (_r, vr, v, res) = setup();
        let dot = provenance_to_dot(&vr, &v, &res);
        assert!(dot.contains("S1:A"));
        assert!(dot.contains("S2:B"));
        assert!(dot.contains("d1..d2"));
        assert!(dot.contains("d3"));
        assert!(dot.contains("input"));
        // The output node never appears.
        assert!(!dot.contains("output"));
    }

    #[test]
    fn dot_of_partial_provenance_excludes_unrelated() {
        let (r, vr, v, _) = setup();
        // Provenance of d3 involves only S1.
        let res = zoom_warehouse::deep_provenance(&r, &vr, zoom_model::DataId(3))
            .unwrap()
            .unwrap();
        let dot = provenance_to_dot(&vr, &v, &res);
        assert!(dot.contains("S1:A"));
        assert!(!dot.contains("S2:B"));
    }
}
