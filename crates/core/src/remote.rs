//! [`RemoteZoom`]: the client half of the `zoomd` wire protocol — the
//! [`crate::Zoom`] facade surface over a TCP connection.
//!
//! A `RemoteZoom` is one socket carrying one logical session (opened at
//! connect time); every facade call is one request/response round trip.
//! Because the daemon allocates spec/view/run ids in exactly the sequence
//! a single in-process warehouse would, and renders errors with the same
//! `Display` strings, a recorded trace replays against a fresh daemon
//! digest-for-digest — `RemoteZoom` implements [`TraceTarget`], so
//! `zoomctl replay --connect` and the `daemon_throughput` bench drive the
//! daemon with the identical golden artifact the in-process path uses.

use crate::queries::{CannedQuery, QueryAnswer};
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use zoom_model::{DataId, EventLog, LogEvent, StepId, UserView, WorkflowSpec};
use zoom_warehouse::wire::{self, BatchItem, Request, Response, WireError};
use zoom_warehouse::{
    trace, HealthReport, ImmediateAnswer, MetricsSnapshot, ProvenanceResult, PushOutcome, RunId,
    ShardRouter, SlowQuery, SpecId, TraceOp, TraceTarget, ViewId, VisibilityPolicy, WarehouseStats,
};

/// A failure of a remote facade call.
#[derive(Debug)]
pub enum RemoteError {
    /// The transport or framing layer failed (connection lost, corrupt
    /// frame, codec mismatch).
    Wire(WireError),
    /// The daemon answered an error. The payload is the server-side
    /// error's `Display` rendering, shown verbatim — for warehouse
    /// rejections it is byte-identical to what the equivalent in-process
    /// call would render, which is what keeps replay digests aligned.
    Server(String),
    /// The daemon answered something the protocol does not allow here.
    Protocol(String),
    /// The addressed shard stayed quarantined past the client's bounded
    /// retry budget. Rendered byte-identically to the in-process
    /// `ShardUnavailable` error, for digest parity.
    Unavailable {
        /// The shard that kept refusing.
        shard: u32,
        /// The daemon's last backoff hint, milliseconds.
        retry_after_ms: u64,
    },
    /// The connection died while a non-idempotent request (a stream
    /// append, an id-allocating registration) was in flight: the daemon
    /// may or may not have applied it, so the client refuses to re-send
    /// and fails loudly instead. The connection itself has already been
    /// re-established when possible — subsequent calls proceed normally.
    ConnectionLost(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Wire(e) => write!(f, "transport: {e}"),
            RemoteError::Server(m) => write!(f, "{m}"),
            RemoteError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RemoteError::Unavailable {
                shard,
                retry_after_ms,
            } => write!(
                f,
                "shard {shard} unavailable (under repair); retry after {retry_after_ms} ms"
            ),
            RemoteError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Wire(WireError::Io(e))
    }
}

/// Shorthand for remote call results.
pub type RemoteResult<T> = std::result::Result<T, RemoteError>;

fn unexpected(resp: Response) -> RemoteError {
    match resp {
        Response::Error { message } => RemoteError::Server(message),
        other => RemoteError::Protocol(format!("unexpected response: {other:?}")),
    }
}

/// How hard a [`RemoteZoom`] fights to keep a conversation going across
/// daemon restarts and shard repairs.
#[derive(Clone, Copy, Debug)]
pub struct RemoteRetry {
    /// TCP re-establish attempts after a broken connection (each re-sends
    /// `Hello` with the original tenant and opens a fresh session).
    pub max_reconnects: u32,
    /// First reconnect backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Reconnect backoff ceiling.
    pub max_backoff: Duration,
    /// How many typed `Unavailable` refusals to absorb (sleeping the
    /// daemon's `retry_after_ms` hint each time, capped at
    /// [`RemoteRetry::max_retry_after`]) before surfacing
    /// [`RemoteError::Unavailable`]. Safe for every request: the daemon
    /// refuses *before* touching the shard, so a refused mutation was
    /// never applied.
    pub max_unavailable_retries: u32,
    /// Cap on a single `retry_after_ms` sleep, so a hostile or confused
    /// hint cannot park the client.
    pub max_retry_after: Duration,
}

impl Default for RemoteRetry {
    fn default() -> Self {
        RemoteRetry {
            max_reconnects: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            max_unavailable_retries: 50,
            max_retry_after: Duration::from_millis(250),
        }
    }
}

impl RemoteRetry {
    /// No reconnects, no unavailable-retries: every failure surfaces on
    /// the call that hit it.
    pub fn none() -> Self {
        RemoteRetry {
            max_reconnects: 0,
            base_backoff: Duration::from_millis(0),
            max_backoff: Duration::from_millis(0),
            max_unavailable_retries: 0,
            max_retry_after: Duration::from_millis(0),
        }
    }
}

/// One live socket (split for buffered reading and writing).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn establish(addr: SocketAddr, tenant: &str) -> RemoteResult<(Conn, u64)> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        match conn.roundtrip(&Request::Hello {
            tenant: tenant.to_string(),
        })? {
            Response::Ok => {}
            other => return Err(unexpected(other)),
        }
        let session = match conn.roundtrip(&Request::OpenSession)? {
            Response::Session { id } => id,
            other => return Err(unexpected(other)),
        };
        Ok((conn, session))
    }

    fn roundtrip(&mut self, req: &Request) -> RemoteResult<Response> {
        wire::write_message(&mut self.writer, req)?;
        self.writer.flush().map_err(WireError::Io)?;
        match wire::read_message::<Response>(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(RemoteError::Protocol(
                "server closed the connection".to_string(),
            )),
        }
    }
}

/// Whether a failed request may be transparently re-sent on a fresh
/// connection. Queries and other idempotent requests may; requests that
/// allocate ids or append to a stream may already have been applied
/// before the connection died, so re-sending could double-apply them —
/// those fail loudly with [`RemoteError::ConnectionLost`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OnTransportLoss {
    Resend,
    FailLoudly,
}

/// A transport-layer failure (as opposed to a server-side rejection): the
/// socket can no longer be trusted and must be re-established.
fn is_transport(e: &RemoteError) -> bool {
    matches!(e, RemoteError::Wire(_))
        || matches!(e, RemoteError::Protocol(m) if m == "server closed the connection")
}

/// The `Zoom` facade over a `zoomd` connection.
///
/// The client survives two kinds of trouble on its own:
///
/// * A typed [`Response::Unavailable`] refusal (the addressed shard is
///   quarantined or mid-repair) is retried after the daemon's hinted
///   backoff, a bounded number of times. This is safe for *every*
///   request, mutations included — the daemon refuses before touching the
///   shard, so a refused mutation was never applied.
/// * A broken connection (daemon restart, dropped socket) triggers
///   reconnection with exponential backoff, re-sending `Hello` with the
///   original tenant and opening a fresh logical session. Idempotent
///   requests are then transparently re-sent; non-idempotent ones
///   (stream appends, id-allocating registrations) fail loudly with
///   [`RemoteError::ConnectionLost`], because the daemon may have applied
///   them before the connection died.
pub struct RemoteZoom {
    addr: SocketAddr,
    tenant: String,
    retry: RemoteRetry,
    conn: Option<Conn>,
    session: u64,
    /// Connections re-established since `connect` (observability for
    /// tests and the chaos harness).
    reconnects: u64,
}

impl RemoteZoom {
    /// Connects, names the tenant, and opens this client's logical
    /// session, with the default retry policy.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> RemoteResult<RemoteZoom> {
        Self::connect_with(addr, tenant, RemoteRetry::default())
    }

    /// [`Self::connect`] with an explicit retry policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: &str,
        retry: RemoteRetry,
    ) -> RemoteResult<RemoteZoom> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| RemoteError::Protocol("address resolved to nothing".to_string()))?;
        let (conn, session) = Conn::establish(addr, tenant)?;
        Ok(RemoteZoom {
            addr,
            tenant: tenant.to_string(),
            retry,
            conn: Some(conn),
            session,
            reconnects: 0,
        })
    }

    /// Re-establishes the connection with exponential backoff, re-sending
    /// `Hello` (same tenant) and opening a fresh logical session.
    fn reconnect(&mut self) -> RemoteResult<()> {
        self.conn = None;
        let mut backoff = self.retry.base_backoff;
        let mut last = "no attempts allowed by the retry policy".to_string();
        for _ in 0..self.retry.max_reconnects {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.retry.max_backoff);
            match Conn::establish(self.addr, &self.tenant) {
                Ok((conn, session)) => {
                    self.conn = Some(conn);
                    self.session = session;
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(RemoteError::ConnectionLost(format!(
            "reconnect to {} failed after {} attempts: {last}",
            self.addr, self.retry.max_reconnects
        )))
    }

    /// The request loop: absorbs bounded `Unavailable` refusals for every
    /// request, and transport failures for idempotent ones.
    fn call_with(&mut self, req: &Request, loss: OnTransportLoss) -> RemoteResult<Response> {
        // A previous loud failure may have left us disconnected; nothing
        // is in flight, so re-establishing here is always safe.
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let mut unavailable_left = self.retry.max_unavailable_retries;
        let mut reconnects_left = self.retry.max_reconnects;
        loop {
            let outcome = match self.conn.as_mut() {
                Some(conn) => conn.roundtrip(req),
                None => Err(RemoteError::ConnectionLost("not connected".to_string())),
            };
            match outcome {
                Ok(Response::Unavailable {
                    shard,
                    retry_after_ms,
                }) => {
                    if unavailable_left == 0 {
                        return Err(RemoteError::Unavailable {
                            shard,
                            retry_after_ms,
                        });
                    }
                    unavailable_left -= 1;
                    std::thread::sleep(
                        Duration::from_millis(retry_after_ms).min(self.retry.max_retry_after),
                    );
                }
                Ok(resp) => return Ok(resp),
                Err(e) if is_transport(&e) => {
                    // The socket is dead either way; re-establish it so
                    // at least the *next* call works. Only idempotent
                    // requests are re-sent on the fresh connection.
                    if loss == OnTransportLoss::FailLoudly {
                        let _ = self.reconnect();
                        return Err(RemoteError::ConnectionLost(e.to_string()));
                    }
                    if reconnects_left == 0 {
                        return Err(RemoteError::ConnectionLost(e.to_string()));
                    }
                    reconnects_left -= 1;
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One idempotent request (transparently re-sent after reconnect).
    fn call(&mut self, req: &Request) -> RemoteResult<Response> {
        self.call_with(req, OnTransportLoss::Resend)
    }

    /// One non-idempotent request (fails loudly on a broken connection).
    fn call_mut(&mut self, req: &Request) -> RemoteResult<Response> {
        self.call_with(req, OnTransportLoss::FailLoudly)
    }

    fn call_ok(&mut self, req: &Request) -> RemoteResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call_data(&mut self, req: &Request) -> RemoteResult<Vec<DataId>> {
        match self.call(req)? {
            Response::Data { ids } => Ok(ids),
            other => Err(unexpected(other)),
        }
    }

    /// How many times this client re-established its connection.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects
    }

    /// This connection's primary logical session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> RemoteResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Opens an *additional* logical session on this connection (the
    /// multiplexing primitive the session-soak paths use).
    pub fn open_session(&mut self) -> RemoteResult<u64> {
        match self.call(&Request::OpenSession)? {
            Response::Session { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Closes a logical session opened with [`Self::open_session`].
    /// (Not re-sent across a reconnect: sessions are connection-scoped,
    /// so the server released them when the old connection died.)
    pub fn close_session(&mut self, session: u64) -> RemoteResult<()> {
        match self.call_mut(&Request::CloseSession { session })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Open logical sessions daemon-wide.
    pub fn session_count(&mut self) -> RemoteResult<u64> {
        match self.call(&Request::SessionCount)? {
            Response::Count { n } => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    /// `Zoom::register_workflow` against the daemon. Registration
    /// allocates an id, so it is not re-sent across a reconnect.
    pub fn register_workflow(&mut self, spec: WorkflowSpec) -> RemoteResult<SpecId> {
        match self.call_mut(&Request::RegisterSpec { spec })? {
            Response::Spec { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// `Zoom::register_view` against the daemon. Registration allocates
    /// an id, so it is not re-sent across a reconnect.
    pub fn register_view(&mut self, spec: SpecId, view: UserView) -> RemoteResult<ViewId> {
        match self.call_mut(&Request::RegisterView { spec, view })? {
            Response::View { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// `Zoom::build_view` (good view from relevant module labels),
    /// constructed server-side.
    pub fn build_view(&mut self, spec: SpecId, relevant: &[&str]) -> RemoteResult<ViewId> {
        let req = Request::BuildView {
            spec,
            relevant: relevant.iter().map(|s| s.to_string()).collect(),
        };
        match self.call(&req)? {
            Response::View { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Registers (or finds) the admin view of `spec` server-side.
    pub fn admin_view(&mut self, spec: SpecId) -> RemoteResult<ViewId> {
        match self.call(&Request::AdminView { spec })? {
            Response::View { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// `Zoom::load_log` against the daemon; the returned id is global.
    /// Loading allocates a run id, so it is not re-sent across a
    /// reconnect — a lost ack could otherwise double-load the run.
    pub fn load_log(&mut self, spec: SpecId, log: &EventLog) -> RemoteResult<RunId> {
        let req = Request::LoadLog {
            session: self.session,
            spec,
            log: log.clone(),
        };
        match self.call_mut(&req)? {
            Response::Run { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// `Zoom::begin_stream` against the daemon. Allocates a run id, so it
    /// is not re-sent across a reconnect.
    pub fn begin_stream(&mut self, spec: SpecId) -> RemoteResult<RunId> {
        let req = Request::BeginStream {
            session: self.session,
            spec,
        };
        match self.call_mut(&req)? {
            Response::Run { id } => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Pushes one event into an open stream. Stream appends are the
    /// canonical non-idempotent request: if the connection dies with one
    /// in flight the daemon may have committed it, so the client fails
    /// loudly ([`RemoteError::ConnectionLost`]) rather than re-send and
    /// risk appending the event twice.
    pub fn stream_push(&mut self, run: RunId, event: &LogEvent) -> RemoteResult<PushOutcome> {
        let req = Request::StreamPush {
            session: self.session,
            run,
            event: event.clone(),
        };
        match self.call_mut(&req)? {
            Response::Push { outcome } => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Seals an open stream. Not re-sent across a reconnect (see
    /// [`Self::stream_push`]).
    pub fn stream_seal(&mut self, run: RunId) -> RemoteResult<()> {
        match self.call_mut(&Request::StreamSeal {
            session: self.session,
            run,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Deep provenance of `data` at `view` over `run`.
    pub fn deep_provenance(
        &mut self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> RemoteResult<ProvenanceResult> {
        let req = Request::DeepProvenance {
            session: self.session,
            run,
            view,
            data,
        };
        match self.call(&req)? {
            Response::Provenance { result } => Ok(result),
            other => Err(unexpected(other)),
        }
    }

    /// Batched deep provenance; answers in input order.
    pub fn query_batch(
        &mut self,
        queries: &[(RunId, ViewId, DataId)],
    ) -> RemoteResult<Vec<RemoteResult<ProvenanceResult>>> {
        let req = Request::QueryBatch {
            session: self.session,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            Response::Batch { results } => Ok(results
                .into_iter()
                .map(|item| match item {
                    BatchItem::Ok(p) => Ok(p),
                    BatchItem::Err(m) => Err(RemoteError::Server(m)),
                })
                .collect()),
            other => Err(unexpected(other)),
        }
    }

    /// Immediate provenance of `data` at `view` over `run`.
    pub fn immediate_provenance(
        &mut self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> RemoteResult<ImmediateAnswer> {
        let req = Request::ImmediateProvenance {
            session: self.session,
            run,
            view,
            data,
        };
        match self.call(&req)? {
            Response::Immediate { answer } => Ok(answer),
            other => Err(unexpected(other)),
        }
    }

    /// Forward provenance (dependents) of `data`.
    pub fn dependents_of(
        &mut self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> RemoteResult<Vec<DataId>> {
        self.call_data(&Request::DependentsOf {
            session: self.session,
            run,
            view,
            data,
        })
    }

    /// Data passed between two executions (`None` = input/output node).
    pub fn data_between(
        &mut self,
        run: RunId,
        view: ViewId,
        from: Option<StepId>,
        to: Option<StepId>,
    ) -> RemoteResult<Vec<DataId>> {
        self.call_data(&Request::DataBetween {
            session: self.session,
            run,
            view,
            from,
            to,
        })
    }

    /// The run's final outputs.
    pub fn final_outputs(&mut self, run: RunId) -> RemoteResult<Vec<DataId>> {
        self.call_data(&Request::FinalOutputs {
            session: self.session,
            run,
        })
    }

    /// Every data object visible at `view` over `run`.
    pub fn visible_data(&mut self, run: RunId, view: ViewId) -> RemoteResult<Vec<DataId>> {
        self.call_data(&Request::VisibleData {
            session: self.session,
            run,
            view,
        })
    }

    /// Per-shard table counters, shard order.
    pub fn stats_per_shard(&mut self) -> RemoteResult<Vec<WarehouseStats>> {
        match self.call(&Request::Stats)? {
            Response::StatsAll { shards } => Ok(shards),
            other => Err(unexpected(other)),
        }
    }

    /// Daemon-wide aggregate stats (per-run counters summed across
    /// shards; broadcast tables carried over).
    pub fn stats(&mut self) -> RemoteResult<WarehouseStats> {
        Ok(ShardRouter::aggregate_stats(&self.stats_per_shard()?))
    }

    /// Per-shard observability snapshots, shard order. Non-admin callers
    /// (no matching `token`, non-loopback on a tokenless daemon) get the
    /// embedded slow-query ring filtered to their own tenant.
    pub fn metrics_per_shard(&mut self) -> RemoteResult<Vec<MetricsSnapshot>> {
        self.metrics_per_shard_admin(None)
    }

    /// [`Self::metrics_per_shard`] presenting an admin token for the
    /// unfiltered cross-tenant slow-query ring.
    pub fn metrics_per_shard_admin(
        &mut self,
        token: Option<&str>,
    ) -> RemoteResult<Vec<MetricsSnapshot>> {
        let req = Request::Metrics {
            token: token.map(str::to_string),
        };
        match self.call(&req)? {
            Response::MetricsAll { shards } => Ok(shards),
            other => Err(unexpected(other)),
        }
    }

    /// Per-shard health reports, shard order.
    pub fn health_per_shard(&mut self) -> RemoteResult<Vec<HealthReport>> {
        match self.call(&Request::Health)? {
            Response::HealthAll { shards } => Ok(shards),
            other => Err(unexpected(other)),
        }
    }

    /// The slow-query log across shards, optionally (re)setting the
    /// capture threshold first. Admin callers (matching `token`, or
    /// loopback on a tokenless daemon) see the full cross-tenant ring;
    /// everyone else gets their own tenant's entries and the threshold
    /// is left untouched.
    pub fn slow_queries(&mut self, threshold_nanos: Option<u64>) -> RemoteResult<Vec<SlowQuery>> {
        self.slow_queries_admin(threshold_nanos, None)
    }

    /// [`Self::slow_queries`] presenting an admin token.
    pub fn slow_queries_admin(
        &mut self,
        threshold_nanos: Option<u64>,
        token: Option<&str>,
    ) -> RemoteResult<Vec<SlowQuery>> {
        let req = Request::SlowLog {
            threshold_nanos,
            token: token.map(str::to_string),
        };
        match self.call(&req)? {
            Response::SlowLogAll { queries } => Ok(queries),
            other => Err(unexpected(other)),
        }
    }

    /// Checkpoints every durable shard.
    pub fn checkpoint(&mut self) -> RemoteResult<()> {
        self.call_ok(&Request::Checkpoint)
    }

    /// Resolves a workflow (and optionally one of its views) by name and
    /// lists the workflow's runs in load order.
    pub fn resolve(
        &mut self,
        workflow: &str,
        view: Option<&str>,
    ) -> RemoteResult<(SpecId, Option<ViewId>, Vec<RunId>)> {
        let req = Request::Resolve {
            workflow: workflow.to_string(),
            view: view.map(str::to_string),
        };
        match self.call(&req)? {
            Response::Resolved { spec, view, runs } => Ok((spec, view, runs)),
            other => Err(unexpected(other)),
        }
    }

    /// Installs (or with `None`, clears) `tenant`'s visibility policy.
    /// Admin-gated with the same rule as [`Self::shutdown`].
    pub fn set_policy(
        &mut self,
        tenant: &str,
        policy: Option<VisibilityPolicy>,
        token: Option<&str>,
    ) -> RemoteResult<()> {
        self.call_ok(&Request::PolicySet {
            tenant: tenant.to_string(),
            policy,
            token: token.map(str::to_string),
        })
    }

    /// Reads `tenant`'s installed visibility policy. Reading one's own
    /// policy needs no token; reading another tenant's requires admin.
    pub fn policy(
        &mut self,
        tenant: &str,
        token: Option<&str>,
    ) -> RemoteResult<Option<VisibilityPolicy>> {
        let req = Request::PolicyGet {
            tenant: tenant.to_string(),
            token: token.map(str::to_string),
        };
        match self.call(&req)? {
            Response::Policy { policy } => Ok(policy),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to exit. `token` must match the daemon's admin
    /// token when one is configured; a tokenless daemon honours shutdown
    /// only from loopback peers.
    pub fn shutdown(&mut self, token: Option<&str>) -> RemoteResult<()> {
        match self.call_mut(&Request::Shutdown {
            token: token.map(str::to_string),
        })? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Executes a canned query form against the daemon (the `--connect`
/// analog of [`crate::queries::execute`]).
pub fn execute_canned_remote(
    rz: &mut RemoteZoom,
    run: RunId,
    view: ViewId,
    q: &CannedQuery,
) -> RemoteResult<QueryAnswer> {
    Ok(match q {
        CannedQuery::Deep(d) => QueryAnswer::Provenance(rz.deep_provenance(run, view, *d)?),
        CannedQuery::Immediate(d) => {
            QueryAnswer::Immediate(rz.immediate_provenance(run, view, *d)?)
        }
        CannedQuery::Dependents(d) => QueryAnswer::Data(rz.dependents_of(run, view, *d)?),
        CannedQuery::Between(a, b) => QueryAnswer::Data(rz.data_between(run, view, *a, *b)?),
        CannedQuery::FinalOutputs => QueryAnswer::Data(rz.final_outputs(run)?),
        CannedQuery::VisibleData => QueryAnswer::Data(rz.visible_data(run, view)?),
    })
}

impl TraceTarget for RemoteZoom {
    /// Replays one trace op over the wire and digests the canonical
    /// rendering of whatever came back. Server-side warehouse errors
    /// arrive as their in-process `Display` strings, so digests agree
    /// with a local replay; transport failures render distinctly (and so
    /// correctly report as mismatches).
    fn apply_trace_op(&mut self, op: &TraceOp) -> u64 {
        use trace::{
            digest_str, render_deep, render_deps, render_err, render_id, render_immediate,
            render_push, render_sealed,
        };
        fn render<T>(r: RemoteResult<T>, ok: impl FnOnce(T) -> String) -> String {
            match r {
                Ok(v) => ok(v),
                Err(e) => render_err(&e.to_string()),
            }
        }
        let rendering = match op {
            TraceOp::RegisterSpec(spec) => render(self.register_workflow(spec.clone()), render_id),
            TraceOp::RegisterView(sid, view) => {
                render(self.register_view(*sid, view.clone()), render_id)
            }
            TraceOp::LoadLog(sid, log) => render(self.load_log(*sid, log), render_id),
            TraceOp::BeginStream(sid) => render(self.begin_stream(*sid), render_id),
            TraceOp::PushEvent(run, ev) => render(self.stream_push(*run, ev), render_push),
            TraceOp::SealStream(run) => render(self.stream_seal(*run), |()| render_sealed()),
            TraceOp::DeepProvenance(run, view, data) => {
                render(self.deep_provenance(*run, *view, *data), |p| {
                    render_deep(&p)
                })
            }
            TraceOp::ImmediateProvenance(run, view, data) => render(
                self.immediate_provenance(*run, *view, *data),
                render_immediate,
            ),
            TraceOp::DependentsOf(run, view, data) => {
                render(self.dependents_of(*run, *view, *data), render_deps)
            }
        };
        digest_str(&rendering)
    }
}
