//! Interactive query sessions (Section IV): "By selecting a run and
//! clicking on an edge between two steps, the user can see the data set
//! passed between them. … As the user's needs evolve, he may modify the set
//! of modules he considers to be relevant. The provenance graph is then
//! automatically modified for the new user view."
//!
//! A [`QuerySession`] pins one run, holds a current view, and re-answers
//! the focused provenance question whenever the view changes. View switches
//! ride the warehouse's materialization cache, reproducing the prototype's
//! cheap-switch behavior.

use crate::system::Zoom;
use std::time::Duration;
use zoom_model::DataId;
use zoom_warehouse::{ProvenanceResult, Result, RunId, ViewId};

/// One user's interactive provenance-exploration session over one run.
#[derive(Debug)]
pub struct QuerySession<'a> {
    zoom: &'a Zoom,
    run: RunId,
    view: ViewId,
    focus: Option<DataId>,
    /// The tenant the session's queries execute as, when opened with
    /// [`QuerySession::open_as`]: every query goes through the facade's
    /// tenant-scoped path, so the tenant's visibility policy (DESIGN.md
    /// §16) is enforced on each answer — including after view switches.
    tenant: Option<String>,
    /// Per-query time budget; `None` defers to the system default.
    deadline: Option<Duration>,
    /// Wall-clock cost of the queries issued so far (for the interactivity
    /// experiments).
    history: Vec<(ViewId, Duration)>,
}

impl<'a> QuerySession<'a> {
    /// Opens a session on `run` at the given initial view.
    pub fn new(zoom: &'a Zoom, run: RunId, view: ViewId) -> Self {
        QuerySession {
            zoom,
            run,
            view,
            focus: None,
            tenant: None,
            deadline: None,
            history: Vec::new(),
        }
    }

    /// Opens a session whose queries execute as `tenant`, with the
    /// tenant's visibility policy enforced on every answer.
    pub fn open_as(zoom: &'a Zoom, tenant: &str, run: RunId, view: ViewId) -> Self {
        QuerySession {
            tenant: Some(tenant.to_string()),
            ..QuerySession::new(zoom, run, view)
        }
    }

    /// The tenant this session executes as, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Sets (or clears) this session's per-query time budget. Queries that
    /// exceed it return [`zoom_warehouse::WarehouseError::DeadlineExceeded`]
    /// instead of running unboundedly — an interactive session would rather
    /// re-ask at a coarser view than hang.
    pub fn set_deadline(&mut self, budget: Option<Duration>) {
        self.deadline = budget;
    }

    /// The session's per-query time budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The session's run.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// The current view.
    pub fn view(&self) -> ViewId {
        self.view
    }

    /// The focused data object, if any.
    pub fn focus(&self) -> Option<DataId> {
        self.focus
    }

    /// Focuses a data object and answers its deep provenance at the current
    /// view level.
    pub fn focus_data(&mut self, data: DataId) -> Result<ProvenanceResult> {
        self.focus = Some(data);
        self.query()
    }

    /// Focuses the run's final output.
    pub fn focus_final_output(&mut self) -> Result<ProvenanceResult> {
        let outs = match &self.tenant {
            Some(t) => self.zoom.final_outputs_as(t, self.run)?,
            None => self.zoom.final_outputs(self.run)?,
        };
        let &d = outs
            .first()
            .ok_or(zoom_warehouse::WarehouseError::NoFinalOutputs(self.run))?;
        self.focus_data(d)
    }

    /// Switches the current view and re-answers the focused question
    /// (Section V's view-granularity interactivity experiment). Returns the
    /// new answer; data hidden by the new view surfaces as an error.
    pub fn switch_view(&mut self, view: ViewId) -> Result<ProvenanceResult> {
        let start = std::time::Instant::now();
        self.view = view;
        let res = self.query();
        // The ≈13 ms figure of Section V-B, measured live: switch cost is
        // the re-answer cost at the new view level.
        self.zoom
            .warehouse()
            .metrics_registry()
            .record_view_switch(start.elapsed().as_nanos() as u64);
        res
    }

    /// Re-runs the focused deep-provenance query, timing it.
    pub fn query(&mut self) -> Result<ProvenanceResult> {
        let data = self
            .focus
            .ok_or(zoom_warehouse::WarehouseError::DataNotFound(DataId(0)))?;
        let start = std::time::Instant::now();
        // Tenant-scoped sessions resolve the effective view first, so a
        // policy substitution applies to deadline-bounded queries too.
        let view = match &self.tenant {
            Some(t) => match self.zoom.effective_view(t, self.run, self.view) {
                Ok(v) => v,
                Err(e) => {
                    self.history.push((self.view, start.elapsed()));
                    return Err(e);
                }
            },
            None => self.view,
        };
        let res = match self.deadline {
            Some(budget) => self
                .zoom
                .deep_provenance_within(self.run, view, data, budget),
            None => self.zoom.deep_provenance(self.run, view, data),
        };
        self.history.push((self.view, start.elapsed()));
        res
    }

    /// `(view, duration)` per query issued, in order.
    pub fn history(&self) -> &[(ViewId, Duration)] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder};

    fn system() -> (Zoom, RunId, ViewId, ViewId) {
        let mut b = SpecBuilder::new("sess");
        b.formatting("F");
        b.analysis("R");
        b.from_input("F").edge("F", "R").to_output("R");
        let s = b.build().unwrap();
        let mut z = Zoom::new();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let bb = z.black_box_view(sid).unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("F").unwrap());
        let s2 = rb.step(s.module("R").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        let rid = z.load_run(sid, rb.build().unwrap()).unwrap();
        (z, rid, admin, bb)
    }

    #[test]
    fn focus_and_switch() {
        let (z, rid, admin, bb) = system();
        let mut sess = QuerySession::new(&z, rid, admin);
        assert!(sess.focus().is_none());
        let res = sess.focus_final_output().unwrap();
        assert_eq!(res.tuples(), 3);
        assert_eq!(sess.focus(), Some(DataId(3)));

        let res = sess.switch_view(bb).unwrap();
        assert_eq!(res.tuples(), 2);
        assert_eq!(sess.view(), bb);

        let res = sess.switch_view(admin).unwrap();
        assert_eq!(res.tuples(), 3);
        assert_eq!(sess.history().len(), 3);
    }

    #[test]
    fn view_switches_feed_the_metrics_histogram() {
        let (z, rid, admin, bb) = system();
        let mut sess = QuerySession::new(&z, rid, admin);
        sess.focus_final_output().unwrap();
        sess.switch_view(bb).unwrap();
        sess.switch_view(admin).unwrap();
        let m = z.metrics();
        assert_eq!(m.view_switch.count, 2);
        assert!(m.view_switch.sum_nanos > 0);
    }

    #[test]
    fn hidden_focus_surfaces_error_on_switch() {
        let (z, rid, admin, bb) = system();
        let mut sess = QuerySession::new(&z, rid, admin);
        sess.focus_data(DataId(2)).unwrap();
        assert!(sess.switch_view(bb).is_err());
    }

    #[test]
    fn query_without_focus_errors() {
        let (z, rid, admin, _) = system();
        let mut sess = QuerySession::new(&z, rid, admin);
        assert!(sess.query().is_err());
        assert_eq!(sess.run(), rid);
    }
}
