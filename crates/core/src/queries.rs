//! Canned provenance queries (Section IV, "Ongoing work on our prototype
//! includes providing users with forms to express various (canned)
//! provenance queries").
//!
//! A tiny textual query language over one `(run, view)` pair:
//!
//! | form | meaning |
//! |---|---|
//! | `deep d447` | deep provenance of `d447` |
//! | `immediate d413` | immediate provenance of `d413` |
//! | `dependents d2` | data objects with `d2` in their provenance |
//! | `between S1 S2` | data passed from execution `S1` to `S2` |
//! | `between input S1` | user input consumed by `S1` |
//! | `between S10 output` | final outputs produced by `S10` |
//! | `final` | the run's final outputs |
//! | `visible` | every data object visible at this view level |

use crate::system::Zoom;
use std::fmt;
use zoom_model::{DataId, StepId};
use zoom_warehouse::{ImmediateAnswer, ProvenanceResult, Result, RunId, ViewId};

/// A parsed canned query.
///
/// ```
/// use zoom_core::CannedQuery;
/// use zoom_model::{DataId, StepId};
/// assert_eq!(
///     CannedQuery::parse("deep d447").unwrap(),
///     CannedQuery::Deep(DataId(447))
/// );
/// assert_eq!(
///     CannedQuery::parse("between input S13").unwrap(),
///     CannedQuery::Between(None, Some(StepId(13)))
/// );
/// assert!(CannedQuery::parse("what produced this?").is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CannedQuery {
    /// Deep provenance of a data object.
    Deep(DataId),
    /// Immediate provenance of a data object.
    Immediate(DataId),
    /// Forward provenance of a data object.
    Dependents(DataId),
    /// Data passed between two executions (`None` = input/output node).
    Between(Option<StepId>, Option<StepId>),
    /// The run's final outputs.
    FinalOutputs,
    /// All data visible at the view level.
    VisibleData,
}

/// A query-form parse error with position context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse query: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_data(tok: &str) -> std::result::Result<DataId, ParseError> {
    let digits = tok.strip_prefix('d').unwrap_or(tok);
    digits
        .parse::<u64>()
        .map(DataId)
        .map_err(|_| ParseError(format!("`{tok}` is not a data id (expected e.g. d447)")))
}

fn parse_endpoint(tok: &str) -> std::result::Result<Option<StepId>, ParseError> {
    match tok {
        "input" | "output" => Ok(None),
        _ => {
            let digits = tok.strip_prefix('S').unwrap_or(tok);
            digits.parse::<u32>().map(|n| Some(StepId(n))).map_err(|_| {
                ParseError(format!(
                    "`{tok}` is not an execution id (expected e.g. S13, input, output)"
                ))
            })
        }
    }
}

impl CannedQuery {
    /// Parses a query form.
    pub fn parse(text: &str) -> std::result::Result<Self, ParseError> {
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["deep", d] => Ok(CannedQuery::Deep(parse_data(d)?)),
            ["immediate", d] => Ok(CannedQuery::Immediate(parse_data(d)?)),
            ["dependents", d] => Ok(CannedQuery::Dependents(parse_data(d)?)),
            ["between", a, b] => Ok(CannedQuery::Between(parse_endpoint(a)?, parse_endpoint(b)?)),
            ["final"] => Ok(CannedQuery::FinalOutputs),
            ["visible"] => Ok(CannedQuery::VisibleData),
            [] => Err(ParseError("empty query".to_string())),
            _ => Err(ParseError(format!(
                "unknown form `{text}` (try: deep dN | immediate dN | dependents dN | \
                 between X Y | final | visible)"
            ))),
        }
    }
}

/// The answer to a canned query.
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// A deep-provenance answer.
    Provenance(ProvenanceResult),
    /// An immediate-provenance answer.
    Immediate(ImmediateAnswer),
    /// A plain list of data objects.
    Data(Vec<DataId>),
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryAnswer::Provenance(p) => {
                writeln!(
                    f,
                    "deep provenance of {}: {} tuples, {} execution(s)",
                    p.target,
                    p.tuples(),
                    p.exec_count()
                )?;
                const SHOWN: usize = 24;
                for row in p.rows.iter().take(SHOWN) {
                    match row.producer {
                        Some(s) => writeln!(f, "  {} <- {}", row.data, s)?,
                        None => writeln!(f, "  {} <- user input", row.data)?,
                    }
                }
                if p.rows.len() > SHOWN {
                    writeln!(f, "  … and {} more rows", p.rows.len() - SHOWN)?;
                }
                Ok(())
            }
            QueryAnswer::Immediate(ImmediateAnswer::Produced {
                exec,
                inputs,
                params,
            }) => {
                write!(
                    f,
                    "produced by {exec} from {} input(s): {}",
                    inputs.len(),
                    zoom_model::run::format_data_range(inputs)
                )?;
                for (step, k, v) in params {
                    write!(f, "\n  param {step}.{k} = {v}")?;
                }
                Ok(())
            }
            QueryAnswer::Immediate(ImmediateAnswer::UserInput { meta }) => match meta {
                Some(m) => write!(f, "user input by `{}` at {}", m.user, m.time),
                None => write!(f, "user input (no metadata recorded)"),
            },
            QueryAnswer::Data(ds) => {
                write!(
                    f,
                    "{} data object(s): {}",
                    ds.len(),
                    zoom_model::run::format_data_range(ds)
                )
            }
        }
    }
}

/// Executes a canned query against one `(run, view)` pair.
pub fn execute(zoom: &Zoom, run: RunId, view: ViewId, q: &CannedQuery) -> Result<QueryAnswer> {
    Ok(match q {
        CannedQuery::Deep(d) => QueryAnswer::Provenance(zoom.deep_provenance(run, view, *d)?),
        CannedQuery::Immediate(d) => {
            QueryAnswer::Immediate(zoom.immediate_provenance(run, view, *d)?)
        }
        CannedQuery::Dependents(d) => QueryAnswer::Data(zoom.dependents_of(run, view, *d)?),
        CannedQuery::Between(a, b) => QueryAnswer::Data(zoom.data_between(run, view, *a, *b)?),
        CannedQuery::FinalOutputs => QueryAnswer::Data(zoom.final_outputs(run)?),
        CannedQuery::VisibleData => {
            QueryAnswer::Data(zoom.warehouse().view_run(run, view)?.visible_data())
        }
    })
}

/// Executes a batch of canned queries against one `(run, view)` pair.
///
/// `Deep` queries are fanned out together through [`Zoom::query_batch`]
/// (one warehouse index build serves them all, and they run across
/// threads); every other form executes serially. Answers come back in
/// input order.
pub fn execute_many(
    zoom: &Zoom,
    run: RunId,
    view: ViewId,
    qs: &[CannedQuery],
) -> Vec<Result<QueryAnswer>> {
    let deep_triples: Vec<(RunId, ViewId, DataId)> = qs
        .iter()
        .filter_map(|q| match q {
            CannedQuery::Deep(d) => Some((run, view, *d)),
            _ => None,
        })
        .collect();
    let mut deep_answers = zoom.query_batch(&deep_triples).into_iter();
    qs.iter()
        .map(|q| match q {
            CannedQuery::Deep(_) => deep_answers
                .next()
                .expect("one batched answer per deep query")
                .map(QueryAnswer::Provenance),
            other => execute(zoom, run, view, other),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder};

    #[test]
    fn parser_accepts_all_forms() {
        assert_eq!(
            CannedQuery::parse("deep d447").unwrap(),
            CannedQuery::Deep(DataId(447))
        );
        assert_eq!(
            CannedQuery::parse("immediate 413").unwrap(),
            CannedQuery::Immediate(DataId(413))
        );
        assert_eq!(
            CannedQuery::parse("dependents d2").unwrap(),
            CannedQuery::Dependents(DataId(2))
        );
        assert_eq!(
            CannedQuery::parse("between S1 S2").unwrap(),
            CannedQuery::Between(Some(StepId(1)), Some(StepId(2)))
        );
        assert_eq!(
            CannedQuery::parse("between input S1").unwrap(),
            CannedQuery::Between(None, Some(StepId(1)))
        );
        assert_eq!(
            CannedQuery::parse("between S3 output").unwrap(),
            CannedQuery::Between(Some(StepId(3)), None)
        );
        assert_eq!(
            CannedQuery::parse("final").unwrap(),
            CannedQuery::FinalOutputs
        );
        assert_eq!(
            CannedQuery::parse("  visible  ").unwrap(),
            CannedQuery::VisibleData
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(CannedQuery::parse("").is_err());
        assert!(CannedQuery::parse("deep").is_err());
        assert!(CannedQuery::parse("deep xyz").is_err());
        assert!(CannedQuery::parse("between S1").is_err());
        assert!(CannedQuery::parse("between S1 Sx").is_err());
        assert!(CannedQuery::parse("frobnicate d1").is_err());
    }

    #[test]
    fn execute_and_render_answers() {
        let mut b = SpecBuilder::new("q");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        let s = b.build().unwrap();
        let mut z = Zoom::new();
        let sid = z.register_workflow(s.clone()).unwrap();
        let admin = z.admin_view(sid).unwrap();
        let mut rb = RunBuilder::new(&s);
        rb.user("alice");
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1, 2])
            .data_edge(s1, s2, [3])
            .output_edge(s2, [4]);
        let rid = z.load_run(sid, rb.build().unwrap()).unwrap();

        let run = |text: &str| {
            execute(&z, rid, admin, &CannedQuery::parse(text).unwrap())
                .unwrap()
                .to_string()
        };
        assert!(run("deep d4").contains("4 tuples"));
        assert!(run("deep d4").contains("d3 <- S1"));
        assert!(run("immediate d3").contains("produced by S1 from 2 input(s): d1..d2"));
        assert!(run("immediate d1").contains("user input by `alice`"));
        assert!(run("dependents d1").contains("d3..d4"));
        assert!(run("between S1 S2").contains("d3"));
        assert!(run("between input S1").contains("d1..d2"));
        assert!(run("final").contains("d4"));
        assert!(run("visible").contains("4 data object(s)"));

        // Batch execution: deep queries batch through the index, other
        // forms run serially, order and answers match one-by-one execution.
        let qs: Vec<CannedQuery> = ["deep d4", "final", "deep d3", "immediate d1", "deep d99"]
            .iter()
            .map(|t| CannedQuery::parse(t).unwrap())
            .collect();
        let batch = execute_many(&z, rid, admin, &qs);
        assert_eq!(batch.len(), qs.len());
        for (res, q) in batch.iter().zip(&qs) {
            match (res, execute(&z, rid, admin, q)) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_string(), b.to_string()),
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => panic!("batch {a:?} vs serial {b:?}"),
            }
        }
    }
}
