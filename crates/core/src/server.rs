//! The `zoomd` daemon: a multi-tenant provenance server over the wire
//! protocol of [`zoom_warehouse::wire`].
//!
//! One [`Daemon`] owns a [`ShardRouter`] (runs hash-partitioned across N
//! independent warehouse shards) and a TCP accept loop. Each connection
//! gets its own handler thread, but connections are *multiplexed*: a
//! client opens any number of logical sessions (`OpenSession`) and tags
//! every request with a session id, so tens of thousands of concurrent
//! sessions ride on a handful of sockets without an async runtime.
//!
//! Isolation guarantees, in order of the blast radius they contain:
//!
//! * **Framing**: a connection that sends garbage (bad magic, bad CRC, a
//!   hostile length prefix, a mid-frame hangup) gets one error reply at
//!   most and is dropped. Its tenant's sessions are released; nobody
//!   else notices.
//! * **Decoding**: a well-framed payload that fails to decode as a
//!   [`Request`] answers an error on that frame only — the connection
//!   survives, because frame boundaries are still trustworthy.
//! * **Execution**: every shard-touching request runs under
//!   `catch_unwind`. A panic answers an error on that request, aborts the
//!   panicking session's in-flight stream (rolling its committed prefix
//!   back out of memory shards), and leaves the shard lock poisoned —
//!   which the router's poison-tolerant locks then ignore, because shard
//!   mutations validate before they mutate.
//! * **Tenancy**: sessions and in-flight requests are capped per tenant
//!   ([`TenantQuotaTable`]) *before* per-shard admission control runs, so
//!   a flooding tenant sheds its own traffic first. Sessions can only be
//!   closed by the connection that opened them (ids are guessable), the
//!   quota table itself is bounded against tenant-name churn, and
//!   `Shutdown` is honoured only with the configured admin token (or,
//!   tokenless, from loopback peers).
//! * **Storage**: with supervision enabled
//!   ([`DaemonConfig::supervise_interval`]), a shard whose breaker trips
//!   is quarantined — out of the write path, still serving reads from
//!   memory — and repaired online (fsck + journal replay into a fresh
//!   warehouse, atomically swapped in) while the other shards keep
//!   serving. Writes routed to it meanwhile answer the typed
//!   [`Response::Unavailable`] refusal instead of a connection-fatal
//!   error, and [`Daemon::drain`] gives operators a bounded-deadline
//!   graceful shutdown that checkpoints every shard still healthy.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zoom_model::UserView;
use zoom_warehouse::wire::{self, BatchItem, Request, Response, ShardRouter};
use zoom_warehouse::{codec, fxhash::FxHashMap};
use zoom_warehouse::{
    DurableOptions, Result as WhResult, ShardState, StorageIo, TenantQuotaTable, TenantQuotas,
    ViewId, WarehouseError,
};

/// How a [`Daemon`] is stood up.
#[derive(Clone, Debug, Default)]
pub struct DaemonConfig {
    /// Number of warehouse shards; `0` means one per available core.
    pub shards: usize,
    /// Durable root directory (shards live in `dir/shard-<i>`), or `None`
    /// for in-memory shards.
    pub dir: Option<PathBuf>,
    /// Per-tenant limits.
    pub quotas: TenantQuotas,
    /// Admin token gating [`Request::Shutdown`]. With `Some`, only
    /// clients presenting the token may stop the daemon; with `None`,
    /// shutdown is honoured only from loopback peers — never from a
    /// remote data connection.
    pub admin_token: Option<String>,
    /// Durability tuning for durable shards (`None` = defaults). Ignored
    /// for in-memory daemons.
    pub durable_options: Option<DurableOptions>,
    /// Per-shard storage backends, shard order; shards beyond the vec's
    /// length get [`zoom_warehouse::RealFs`]. This is how the chaos
    /// harness arms a [`zoom_warehouse::FaultFs`] under one shard of a
    /// live daemon. Ignored for in-memory daemons.
    pub shard_ios: Vec<Arc<dyn StorageIo>>,
    /// When `Some`, a supervisor thread wakes at this interval, refreshes
    /// every shard's health state from its breaker, quarantines shards
    /// whose breaker has opened, and repairs quarantined shards online
    /// (fsck + journal replay into a fresh warehouse, atomically swapped
    /// in). `None` (the default) leaves shard lifecycle entirely to the
    /// operator — breaker-open shards keep rendering their usual
    /// durability errors.
    pub supervise_interval: Option<Duration>,
}

impl DaemonConfig {
    /// The effective shard count (resolves `0` to the core count).
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// See [`wire::lock`]-style rationale: a handler thread that panicked
/// while holding the session table must not take the table down for every
/// other connection. Insert/remove on a `FxHashMap` can't leave it
/// half-mutated in a way later readers would misread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct ServerState {
    router: ShardRouter,
    quotas: TenantQuotaTable,
    /// Logical session id → owning tenant.
    sessions: Mutex<FxHashMap<u64, String>>,
    next_session: AtomicU64,
    /// Live connection id → socket handle. Handler threads register on
    /// entry and deregister on exit; drain polls this to know when the
    /// daemon is idle, and force-closes the stragglers' sockets when the
    /// deadline expires.
    conns: Mutex<FxHashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    stopping: AtomicBool,
    addr: SocketAddr,
    admin_token: Option<String>,
}

impl ServerState {
    fn open_session(&self, tenant: &str) -> Option<u64> {
        if !self.quotas.open_session(tenant) {
            return None;
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        lock(&self.sessions).insert(id, tenant.to_string());
        Some(id)
    }

    fn drop_session(&self, id: u64) {
        if let Some(tenant) = lock(&self.sessions).remove(&id) {
            self.quotas.close_session(&tenant);
        }
    }

    fn session_count(&self) -> u64 {
        lock(&self.sessions).len() as u64
    }

    fn begin_shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the no-op connection is dropped there.
        let _ = TcpStream::connect(self.addr);
    }
}

/// What [`Daemon::drain`] accomplished before returning.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Every connection closed on its own before the deadline.
    pub drained: bool,
    /// Connections force-closed at the deadline (0 when `drained`).
    pub conns_aborted: u64,
    /// Logical sessions still registered when the drain finished —
    /// their clients never said goodbye.
    pub sessions_remaining: u64,
    /// Whether the final checkpoint of the healthy shards succeeded.
    pub checkpointed: bool,
    /// Wall-clock duration of the whole drain.
    pub nanos: u64,
}

/// A running daemon: the accept loop plus its shared state. Usable both
/// from the `zoomd` binary and in-process from tests and benches.
pub struct Daemon {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    supervise: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), builds
    /// the shard router per `config`, and starts accepting connections.
    pub fn spawn(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let shards = config.effective_shards();
        let router = match &config.dir {
            None => ShardRouter::in_memory(shards),
            Some(dir) => ShardRouter::open_durable_with(
                dir,
                shards,
                config.durable_options.unwrap_or_default(),
                &config.shard_ios,
            )
            .map_err(|e| std::io::Error::other(format!("cannot open shards: {e}")))?,
        };
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            router,
            quotas: TenantQuotaTable::new(config.quotas),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(1),
            conns: Mutex::new(FxHashMap::default()),
            next_conn: AtomicU64::new(1),
            stopping: AtomicBool::new(false),
            addr: listener.local_addr()?,
            admin_token: config.admin_token,
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("zoomd-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_state.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(sock) = conn else { continue };
                    let conn_state = Arc::clone(&accept_state);
                    let _ = std::thread::Builder::new()
                        .name("zoomd-conn".to_string())
                        .spawn(move || handle_conn(&conn_state, sock));
                }
            })?;
        let supervise = match config.supervise_interval {
            None => None,
            Some(interval) => {
                let sup_state = Arc::clone(&state);
                Some(
                    std::thread::Builder::new()
                        .name("zoomd-supervise".to_string())
                        .spawn(move || supervise_loop(&sup_state, interval))?,
                )
            }
        };
        Ok(Daemon {
            state,
            accept: Some(accept),
            supervise,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shard count the daemon is serving with.
    pub fn shard_count(&self) -> usize {
        self.state.router.shard_count()
    }

    /// Open logical sessions across every tenant, right now.
    pub fn session_count(&self) -> u64 {
        self.state.session_count()
    }

    /// Whether the accept loop is still running (false once someone sent
    /// `Shutdown` or called [`Daemon::shutdown`]/[`Daemon::drain`]).
    pub fn is_running(&self) -> bool {
        self.accept.as_ref().is_some_and(|h| !h.is_finished())
    }

    /// Every shard's supervisor lifecycle state, shard order.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.state.router.shard_states()
    }

    /// Takes one shard out of the write path (see
    /// [`ShardRouter::quarantine_shard`]).
    pub fn quarantine_shard(&self, sh: usize) -> bool {
        self.state.router.quarantine_shard(sh)
    }

    /// Repairs one shard online (see [`ShardRouter::repair_shard`]).
    pub fn repair_shard(
        &self,
        sh: usize,
    ) -> Result<zoom_warehouse::RepairOutcome, zoom_warehouse::DurableError> {
        self.state.router.repair_shard(sh)
    }

    /// Blocks until the daemon stops (a client sent `Shutdown`).
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervise.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting and returns once the accept loop has exited.
    /// Connections already open finish their current request streams on
    /// their own threads.
    pub fn shutdown(&mut self) {
        self.state.begin_shutdown();
        self.join();
    }

    /// Graceful drain: stop accepting, let in-flight connections finish
    /// on their own, and checkpoint every shard still in the write path.
    ///
    /// Connections that outlive `deadline` have their sockets
    /// force-closed (their handler threads notice the broken stream and
    /// release their sessions on the way out); the report says how many
    /// needed that, and whether logical sessions were still open when the
    /// drain finished — a caller that wants "clean shutdown or a nonzero
    /// exit" checks `drained && sessions_remaining == 0`.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        let started = Instant::now();
        self.state.begin_shutdown();
        self.join();
        let mut drained = true;
        loop {
            if lock(&self.state.conns).is_empty() {
                break;
            }
            if started.elapsed() >= deadline {
                drained = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut conns_aborted = 0;
        if !drained {
            for sock in lock(&self.state.conns).values() {
                let _ = sock.shutdown(Shutdown::Both);
                conns_aborted += 1;
            }
            // Give the evicted handler threads a beat to unwind and
            // deregister, so the session count below reflects clients
            // that genuinely never closed their sessions rather than
            // threads we outran.
            let grace = Instant::now();
            while !lock(&self.state.conns).is_empty()
                && grace.elapsed() < Duration::from_millis(250)
            {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let checkpointed = self.state.router.checkpoint().is_ok();
        DrainReport {
            drained,
            conns_aborted,
            sessions_remaining: self.state.session_count(),
            checkpointed,
            nanos: started.elapsed().as_nanos() as u64,
        }
    }
}

/// The supervisor tick: refresh every shard's state from its breaker,
/// quarantine shards whose breaker has opened, and try to repair whatever
/// is quarantined. A failed repair (the disk is still sick) leaves the
/// shard quarantined and backs off exponentially — re-running fsck every
/// tick at a dead disk would only add noise — while a successful one
/// re-admits the shard immediately.
fn supervise_loop(state: &Arc<ServerState>, interval: Duration) {
    let shard_count = state.router.shard_count();
    // Per-shard ticks to skip before the next repair attempt.
    let mut backoff: Vec<u32> = vec![0; shard_count];
    let mut skip: Vec<u32> = vec![0; shard_count];
    while !state.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let states = state.router.supervise_once();
        for (sh, st) in states.into_iter().enumerate() {
            match st {
                ShardState::Healthy => {
                    backoff[sh] = 0;
                    skip[sh] = 0;
                }
                ShardState::Degraded => {
                    // The breaker tripped: pull the shard out of the
                    // write path and repair it rather than letting every
                    // write burn a probe against a sick disk.
                    state.router.quarantine_shard(sh);
                    try_repair(state, sh, &mut backoff, &mut skip);
                }
                ShardState::Quarantined => {
                    if skip[sh] > 0 {
                        skip[sh] -= 1;
                    } else {
                        try_repair(state, sh, &mut backoff, &mut skip);
                    }
                }
                ShardState::Rebuilding => {}
            }
        }
    }
}

fn try_repair(state: &Arc<ServerState>, sh: usize, backoff: &mut [u32], skip: &mut [u32]) {
    match state.router.repair_shard(sh) {
        Ok(_) => {
            backoff[sh] = 0;
            skip[sh] = 0;
        }
        Err(_) => {
            backoff[sh] = (backoff[sh].max(1) * 2).min(64);
            skip[sh] = backoff[sh];
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connection-scoped state: the tenant it bills to, the sessions it
/// opened (released on disconnect, however rude), and whether the peer
/// is loopback (what tokenless `Shutdown` is gated on).
struct ConnState {
    tenant: String,
    sessions: Vec<u64>,
    is_local: bool,
}

fn handle_conn(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let is_local = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Register with the drain registry; the handle lets drain force-close
    // this socket if the connection outlives the drain deadline.
    let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(handle) = stream.try_clone() {
        lock(&state.conns).insert(conn_id, handle);
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut conn = ConnState {
        tenant: "anon".to_string(),
        sessions: Vec::new(),
        is_local,
    };
    loop {
        // Read the frame and decode the payload in two steps: a framing
        // error means the byte stream can no longer be trusted (drop the
        // connection), while a decode error inside a valid frame leaves
        // frame boundaries intact (answer it and keep serving).
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(e) => {
                let _ = wire::write_message(
                    &mut writer,
                    &Response::Error {
                        message: format!("malformed frame: {e}"),
                    },
                );
                let _ = writer.flush();
                break;
            }
        };
        let req: Request = match codec::from_bytes(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    message: format!("malformed request: {e}"),
                };
                if wire::write_message(&mut writer, &resp).is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
        };
        let resp = dispatch(state, &mut conn, &req);
        let bye = matches!(resp, Response::Bye);
        if wire::write_message(&mut writer, &resp).is_err() || writer.flush().is_err() {
            break;
        }
        if bye {
            state.begin_shutdown();
            break;
        }
    }
    for sid in conn.sessions.drain(..) {
        state.drop_session(sid);
    }
    lock(&state.conns).remove(&conn_id);
}

fn dispatch(state: &Arc<ServerState>, conn: &mut ConnState, req: &Request) -> Response {
    // Control-plane requests: no shard access, no admission needed.
    match req {
        Request::Ping => return Response::Pong,
        Request::Hello { tenant } => {
            // Tenant names key the quota table; an unbounded name is an
            // unbounded allocation per hostile Hello.
            if tenant.len() > wire::MAX_TENANT_NAME_BYTES {
                return Response::Error {
                    message: format!(
                        "tenant name of {} bytes exceeds the {}-byte cap",
                        tenant.len(),
                        wire::MAX_TENANT_NAME_BYTES
                    ),
                };
            }
            conn.tenant = tenant.clone();
            return Response::Ok;
        }
        Request::OpenSession => {
            return match state.open_session(&conn.tenant) {
                Some(id) => {
                    conn.sessions.push(id);
                    Response::Session { id }
                }
                None => Response::Error {
                    message: format!("tenant `{}` is at its session cap", conn.tenant),
                },
            };
        }
        Request::CloseSession { session } => {
            // Session ids are sequential and guessable: only sessions
            // this connection opened may be closed, or any client could
            // close other tenants' sessions and corrupt their quota
            // accounting.
            let Some(pos) = conn.sessions.iter().position(|s| s == session) else {
                return Response::Error {
                    message: format!("session {session} was not opened on this connection"),
                };
            };
            conn.sessions.swap_remove(pos);
            state.drop_session(*session);
            return Response::Ok;
        }
        Request::SessionCount => {
            return Response::Count {
                n: state.session_count(),
            };
        }
        Request::Shutdown { token } => {
            // Stopping the daemon stops every tenant: honour it only for
            // the configured admin token, or — when none is configured —
            // for loopback peers (the operator's own machine).
            return if is_admin(state, conn, token) {
                Response::Bye
            } else {
                Response::Error {
                    message: "shutdown refused: admin token required".to_string(),
                }
            };
        }
        _ => {}
    }

    // Everything past here touches shards: per-tenant admission first
    // (the flooding tenant sheds before it can queue on a shard), then
    // per-shard admission inside the warehouse itself.
    let _permit = match state.quotas.admit(&conn.tenant) {
        Some(p) => p,
        None => {
            return Response::Error {
                message: format!("tenant `{}` overloaded: request shed by quota", conn.tenant),
            }
        }
    };

    // A panic inside one request must answer *that* request with an
    // error, not take the connection thread (and with it every other
    // logical session multiplexed on it) down.
    //
    // Tag the handler thread with the requesting tenant for the duration
    // of the request, so shard-side observability (the slow-query ring)
    // records which tenant each entry belongs to and the ring can be
    // filtered per tenant on the way out.
    let _tag = zoom_warehouse::metrics::tag_tenant(Some(&conn.tenant));
    match catch_unwind(AssertUnwindSafe(|| execute(state, conn, req))) {
        Ok(resp) => resp,
        Err(_) => {
            if let Request::StreamPush { run, .. } | Request::StreamSeal { run, .. } = req {
                state.router.abort_stream(*run);
            }
            Response::Error {
                message: "internal error: request aborted".to_string(),
            }
        }
    }
}

/// The shared admin rule: the configured token when one exists, else
/// loopback peers only. Gates `Shutdown`, the cross-tenant slow-query
/// ring, and policy administration.
fn is_admin(state: &ServerState, conn: &ConnState, token: &Option<String>) -> bool {
    match &state.admin_token {
        Some(required) => token.as_deref() == Some(required.as_str()),
        None => conn.is_local,
    }
}

fn err(e: WarehouseError) -> Response {
    // A supervised shard that is quarantined or mid-rebuild answers a
    // *typed* refusal, not an error string: the client can back off and
    // retry without parsing text, and the connection stays healthy.
    if let WarehouseError::ShardUnavailable {
        shard,
        retry_after_ms,
    } = e
    {
        return Response::Unavailable {
            shard,
            retry_after_ms,
        };
    }
    Response::Error {
        message: e.to_string(),
    }
}

/// What visibility enforcement decided for one `(run, view)` query.
enum Enforced {
    /// Execute, against this (possibly substituted) view.
    Allow(ViewId),
    /// Refuse; the payload is byte-identical to the error the same
    /// request would render if the run did not exist at all.
    Deny(String),
}

/// Enforcement for a view-addressed query: resolves the run's spec, then
/// asks the policy table for a decision. A run the router cannot resolve
/// passes through so the natural `RunNotFound` path renders downstream;
/// internal policy errors fail *closed* (deny as absence) — an error
/// reply here would itself confirm the run exists.
fn enforce_view(
    state: &ServerState,
    tenant: &str,
    run: zoom_warehouse::RunId,
    view: ViewId,
) -> Enforced {
    let router = &state.router;
    let policies = router.policies();
    if policies.is_empty() {
        return Enforced::Allow(view);
    }
    let Ok(spec) = router.spec_of_run(run) else {
        return Enforced::Allow(view);
    };
    let sink = router.policy_sink();
    let absent = || WarehouseError::RunNotFound(run).to_string();
    match policies.spec_denied(tenant, spec, router, &sink) {
        Ok(true) | Err(_) => return Enforced::Deny(absent()),
        Ok(false) => {}
    }
    match policies.view_decision(tenant, spec, view, router, &sink) {
        Ok(zoom_warehouse::Decision::Pass) => Enforced::Allow(view),
        Ok(zoom_warehouse::Decision::Substitute(v)) => Enforced::Allow(v),
        Ok(zoom_warehouse::Decision::Deny) | Err(_) => Enforced::Deny(absent()),
    }
}

/// Enforcement for a run-addressed (viewless) request: denied specs
/// render as the run being absent.
fn enforce_run(state: &ServerState, tenant: &str, run: zoom_warehouse::RunId) -> Option<String> {
    let router = &state.router;
    let policies = router.policies();
    if policies.is_empty() {
        return None;
    }
    let Ok(spec) = router.spec_of_run(run) else {
        return None;
    };
    match policies.spec_denied(tenant, spec, router, &router.policy_sink()) {
        Ok(false) => None,
        Ok(true) | Err(_) => Some(WarehouseError::RunNotFound(run).to_string()),
    }
}

/// Enforcement for a spec-addressed request (ingest, view building):
/// denied specs render as the spec being absent.
fn enforce_spec(state: &ServerState, tenant: &str, spec: zoom_warehouse::SpecId) -> Option<String> {
    let router = &state.router;
    let policies = router.policies();
    if policies.is_empty() {
        return None;
    }
    match policies.spec_denied(tenant, spec, router, &router.policy_sink()) {
        Ok(false) => None,
        Ok(true) | Err(_) => Some(WarehouseError::SpecNotFound(spec).to_string()),
    }
}

/// Post-registration enforcement for requests that *return* a view id:
/// a restricted tenant gets the effective (meet) id back, so the id it
/// holds is already safe to query with, and never finer than its policy
/// allows.
fn effective_view_id(
    state: &ServerState,
    tenant: &str,
    spec: zoom_warehouse::SpecId,
    id: ViewId,
) -> ViewId {
    let router = &state.router;
    let policies = router.policies();
    if policies.is_empty() {
        return id;
    }
    match policies.view_decision(tenant, spec, id, router, &router.policy_sink()) {
        Ok(zoom_warehouse::Decision::Substitute(v)) => v,
        _ => id,
    }
}

/// Renders hidden-data answers as absence for restricted tenants
/// (mirror of `Zoom::conceal_data_errors`): a `DataNotVisible` from a
/// query run under a policy concealing modules in this workflow becomes
/// `DataNotFound`, so a datum internal to a concealed composite is
/// indistinguishable from one that never existed. Internal policy errors
/// keep the laundered rendering (fail closed).
fn conceal_data_errors<T>(
    state: &ServerState,
    tenant: &str,
    run: zoom_warehouse::RunId,
    res: WhResult<T>,
) -> WhResult<T> {
    let Err(WarehouseError::DataNotVisible { data, view }) = res else {
        return res;
    };
    let router = &state.router;
    let policies = router.policies();
    if !policies.is_empty() {
        if let Ok(spec) = router.spec_of_run(run) {
            match policies.spec_restricted(tenant, spec, router, &router.policy_sink()) {
                Ok(true) | Err(_) => return Err(WarehouseError::DataNotFound(data)),
                Ok(false) => {}
            }
        }
    }
    Err(WarehouseError::DataNotVisible { data, view })
}

fn ok_or<T>(r: WhResult<T>, ok: impl FnOnce(T) -> Response) -> Response {
    match r {
        Ok(v) => ok(v),
        Err(e) => err(e),
    }
}

/// Registers `view` under `spec` unless a view of the same name already
/// exists (mirrors `Zoom::build_view`'s idempotence). The find and the
/// register happen atomically under the router's registration lock.
fn register_named_view(
    router: &ShardRouter,
    spec: zoom_warehouse::SpecId,
    view: UserView,
) -> WhResult<ViewId> {
    router.register_view_if_absent(spec, &view)
}

fn execute(state: &Arc<ServerState>, conn: &ConnState, req: &Request) -> Response {
    let router = &state.router;
    let tenant = conn.tenant.as_str();
    match req {
        Request::RegisterSpec { spec } => {
            ok_or(router.register_spec(spec), |id| Response::Spec { id })
        }
        Request::RegisterView { spec, view } => {
            if let Some(msg) = enforce_spec(state, tenant, *spec) {
                return Response::Error { message: msg };
            }
            ok_or(router.register_view(*spec, view), |id| Response::View {
                id: effective_view_id(state, tenant, *spec, id),
            })
        }
        Request::BuildView { spec, relevant } => {
            if let Some(msg) = enforce_spec(state, tenant, *spec) {
                return Response::Error { message: msg };
            }
            let built = (|| {
                let ws = router.spec(*spec)?;
                let nodes: Vec<_> = relevant
                    .iter()
                    .map(|l| ws.module(l))
                    .collect::<zoom_model::Result<_>>()?;
                let built = zoom_views::relev_user_view_builder(&ws, &nodes)?;
                register_named_view(router, *spec, built.view)
            })();
            ok_or(built, |id| Response::View {
                id: effective_view_id(state, tenant, *spec, id),
            })
        }
        Request::AdminView { spec } => {
            if let Some(msg) = enforce_spec(state, tenant, *spec) {
                return Response::Error { message: msg };
            }
            let built = router
                .spec(*spec)
                .and_then(|ws| register_named_view(router, *spec, UserView::admin(&ws)));
            ok_or(built, |id| Response::View {
                id: effective_view_id(state, tenant, *spec, id),
            })
        }
        Request::LoadLog { spec, log, .. } => {
            if let Some(msg) = enforce_spec(state, tenant, *spec) {
                return Response::Error { message: msg };
            }
            ok_or(router.load_log(*spec, log), |id| Response::Run { id })
        }
        Request::BeginStream { spec, .. } => {
            if let Some(msg) = enforce_spec(state, tenant, *spec) {
                return Response::Error { message: msg };
            }
            ok_or(router.begin_stream(*spec), |id| Response::Run { id })
        }
        Request::StreamPush { run, event, .. } => {
            if let Some(msg) = enforce_run(state, tenant, *run) {
                return Response::Error { message: msg };
            }
            ok_or(router.stream_push(*run, event), |o| Response::Push {
                outcome: o,
            })
        }
        Request::StreamSeal { run, .. } => {
            if let Some(msg) = enforce_run(state, tenant, *run) {
                return Response::Error { message: msg };
            }
            ok_or(router.stream_seal(*run), |()| Response::Ok)
        }
        Request::DeepProvenance {
            run, view, data, ..
        } => match enforce_view(state, tenant, *run, *view) {
            Enforced::Deny(message) => Response::Error { message },
            Enforced::Allow(view) => ok_or(
                conceal_data_errors(
                    state,
                    tenant,
                    *run,
                    router.deep_provenance(*run, view, *data),
                ),
                |result| Response::Provenance { result },
            ),
        },
        Request::QueryBatch { queries, .. } => {
            // Per-triple enforcement: allowed queries keep their input
            // slot and run through the batch path with their (possibly
            // substituted) views; denied ones answer in place with the
            // same bytes an absent run would.
            let mut slots: Vec<Option<BatchItem>> = (0..queries.len()).map(|_| None).collect();
            let mut routed: Vec<(usize, (zoom_warehouse::RunId, ViewId, zoom_model::DataId))> =
                Vec::new();
            for (i, &(run, view, data)) in queries.iter().enumerate() {
                match enforce_view(state, tenant, run, view) {
                    Enforced::Allow(v) => routed.push((i, (run, v, data))),
                    Enforced::Deny(msg) => slots[i] = Some(BatchItem::Err(msg)),
                }
            }
            let triples: Vec<_> = routed.iter().map(|&(_, t)| t).collect();
            for ((i, (run, _, _)), ans) in routed.iter().zip(router.query_batch(&triples)) {
                slots[*i] = Some(match conceal_data_errors(state, tenant, *run, ans) {
                    Ok(p) => BatchItem::Ok(p),
                    Err(e) => BatchItem::Err(e.to_string()),
                });
            }
            Response::Batch {
                results: slots
                    .into_iter()
                    .map(|s| s.expect("every batch slot answered"))
                    .collect(),
            }
        }
        Request::ImmediateProvenance {
            run, view, data, ..
        } => match enforce_view(state, tenant, *run, *view) {
            Enforced::Deny(message) => Response::Error { message },
            Enforced::Allow(view) => ok_or(
                conceal_data_errors(
                    state,
                    tenant,
                    *run,
                    router.immediate_provenance(*run, view, *data),
                ),
                |answer| Response::Immediate { answer },
            ),
        },
        Request::DependentsOf {
            run, view, data, ..
        } => match enforce_view(state, tenant, *run, *view) {
            Enforced::Deny(message) => Response::Error { message },
            Enforced::Allow(view) => ok_or(
                conceal_data_errors(state, tenant, *run, router.dependents_of(*run, view, *data)),
                |ids| Response::Data { ids },
            ),
        },
        Request::DataBetween {
            run,
            view,
            from,
            to,
            ..
        } => match enforce_view(state, tenant, *run, *view) {
            Enforced::Deny(message) => Response::Error { message },
            Enforced::Allow(view) => ok_or(
                conceal_data_errors(
                    state,
                    tenant,
                    *run,
                    router.data_between(*run, view, *from, *to),
                ),
                |ids| Response::Data { ids },
            ),
        },
        Request::FinalOutputs { run, .. } => {
            if let Some(msg) = enforce_run(state, tenant, *run) {
                return Response::Error { message: msg };
            }
            ok_or(router.final_outputs(*run), |ids| Response::Data { ids })
        }
        Request::VisibleData { run, view, .. } => match enforce_view(state, tenant, *run, *view) {
            Enforced::Deny(message) => Response::Error { message },
            Enforced::Allow(view) => ok_or(router.visible_data(*run, view), |ids| Response::Data {
                ids,
            }),
        },
        Request::Stats => Response::StatsAll {
            shards: router.stats(),
        },
        Request::Metrics { token } => {
            let mut shards = router.metrics();
            if !is_admin(state, conn, token) {
                // Snapshots embed the slow-query ring, which names other
                // tenants' query targets: non-admin callers get their own
                // entries only.
                for snap in &mut shards {
                    snap.slow_queries
                        .retain(|q| q.tenant.as_deref() == Some(tenant));
                }
            }
            Response::MetricsAll { shards }
        }
        Request::Health => Response::HealthAll {
            shards: router.health(),
        },
        Request::SlowLog {
            threshold_nanos,
            token,
        } => {
            if is_admin(state, conn, token) {
                if let Some(n) = threshold_nanos {
                    router.set_slow_query_threshold_nanos(*n);
                }
                Response::SlowLogAll {
                    queries: router.slow_queries(),
                }
            } else {
                // Non-admin: own entries only, and no retuning the
                // daemon-wide capture threshold.
                Response::SlowLogAll {
                    queries: router.slow_queries_of_tenant(tenant),
                }
            }
        }
        Request::Checkpoint => ok_or(router.checkpoint(), |()| Response::Ok),
        Request::Resolve { workflow, view } => {
            // A workflow this tenant's policy hides must resolve with
            // the *same bytes* as one that does not exist — otherwise
            // `Resolve` is an existence oracle over hidden names.
            let spec = match router.spec_by_name(workflow) {
                Some(s) if enforce_spec(state, tenant, s).is_none() => s,
                _ => {
                    return Response::Error {
                        message: format!("no workflow named `{workflow}`"),
                    }
                }
            };
            let view_id = match view {
                None => None,
                Some(name) => match router.find_view(spec, name) {
                    Some(v) => Some(effective_view_id(state, tenant, spec, v)),
                    None => {
                        return Response::Error {
                            message: format!("no view named `{name}` for this workflow"),
                        }
                    }
                },
            };
            Response::Resolved {
                spec,
                view: view_id,
                runs: router.runs_of_spec(spec),
            }
        }
        Request::PolicySet {
            tenant: subject,
            policy,
            token,
        } => {
            // Installing a policy rewrites what `subject` can see;
            // clearing one widens it. Both are administration.
            if !is_admin(state, conn, token) {
                return Response::Error {
                    message: "policy set refused: admin token required".to_string(),
                };
            }
            ok_or(
                router
                    .policies()
                    .install(subject, policy.clone(), router, &router.policy_sink()),
                |()| Response::Ok,
            )
        }
        Request::PolicyGet {
            tenant: subject,
            token,
        } => {
            // A tenant may always read its own policy; anyone else's
            // requires admin (the policy lists hidden names).
            if subject != tenant && !is_admin(state, conn, token) {
                return Response::Error {
                    message: "policy get refused: admin token required".to_string(),
                };
            }
            Response::Policy {
                policy: router.policies().get(subject).map(|p| (*p).clone()),
            }
        }
        // Control-plane requests are answered in `dispatch` before
        // admission; reaching here would be a routing bug, not a client
        // error — answer it as one anyway rather than panicking.
        Request::Ping
        | Request::Hello { .. }
        | Request::OpenSession
        | Request::CloseSession { .. }
        | Request::SessionCount
        | Request::Shutdown { .. } => Response::Error {
            message: "control request routed to the data plane".to_string(),
        },
    }
}
