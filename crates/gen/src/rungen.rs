//! Synthetic workflow-run generator (Table II).
//!
//! Simulates an execution of a specification: loops are unrolled into a
//! chosen number of iterations, each step produces a configurable number of
//! fresh data objects, and user-input sizes follow the class parameters:
//!
//! | Kind   | user input | data/step | loop iterations | max nodes+edges |
//! |--------|-----------|-----------|-----------------|-----------------|
//! | Small  | 1–100     | 1–3       | 1–10            | 100             |
//! | Medium | 1–100     | 1–10      | 10–20           | 1,000           |
//! | Large  | 1–100     | 1–30      | 10–40           | 10,000          |
//!
//! ## Unrolling
//!
//! Back edges (w.r.t. a DFS of the specification) are the loop edges; the
//! remaining *forward graph* is a DAG. Each back edge's body is the set of
//! nodes on forward paths from its target back to its source; overlapping
//! bodies are merged into one loop group that iterates together. Iteration
//! `i` of a group is wired to iteration `i+1` through the group's back
//! edges; edges entering a group feed its first iteration and edges leaving
//! it exit from the last — matching the paper's Figure 2, where the
//! alignment loop's result flows onward only after the final iteration.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zoom_graph::algo::cycles::back_edges;
use zoom_graph::algo::paths::nodes_on_paths;
use zoom_graph::{Digraph, EdgeId, NodeId};
use zoom_model::{Result, RunBuilder, SpecNode, StepId, WorkflowRun, WorkflowSpec};

/// The three run-size classes of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunKind {
    /// run1: up to 100 nodes and edges.
    Small,
    /// run2: up to 1,000 nodes and edges.
    Medium,
    /// run3: up to 10,000 nodes and edges.
    Large,
}

impl RunKind {
    /// All kinds, Table II order.
    pub const ALL: [RunKind; 3] = [RunKind::Small, RunKind::Medium, RunKind::Large];

    /// Table II row label.
    pub fn label(self) -> &'static str {
        match self {
            RunKind::Small => "Small (run1)",
            RunKind::Medium => "Medium (run2)",
            RunKind::Large => "Large (run3)",
        }
    }
}

impl std::fmt::Display for RunKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Parameters for [`generate_run`]; presets per [`RunKind`] follow Table II.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunGenConfig {
    /// Number of user-input data objects (inclusive range).
    pub user_input: (u32, u32),
    /// Data objects produced by each step (inclusive range).
    pub data_per_step: (u32, u32),
    /// Loop iterations per loop group (inclusive range).
    pub loop_iterations: (u32, u32),
    /// Cap on run-graph nodes (steps + input/output).
    pub max_nodes: usize,
    /// Cap on run-graph edges.
    pub max_edges: usize,
}

impl RunGenConfig {
    /// The Table II preset for a run kind.
    pub fn for_kind(kind: RunKind) -> Self {
        match kind {
            RunKind::Small => RunGenConfig {
                user_input: (1, 100),
                data_per_step: (1, 3),
                loop_iterations: (1, 10),
                max_nodes: 100,
                max_edges: 100,
            },
            RunKind::Medium => RunGenConfig {
                user_input: (1, 100),
                data_per_step: (1, 10),
                loop_iterations: (10, 20),
                max_nodes: 1_000,
                max_edges: 1_000,
            },
            RunKind::Large => RunGenConfig {
                user_input: (1, 100),
                data_per_step: (1, 30),
                loop_iterations: (10, 40),
                max_nodes: 10_000,
                max_edges: 10_000,
            },
        }
    }
}

/// Draws an integer log-uniformly from `lo..=hi` (both ≥ 1): small values
/// are common, the upper end rare.
fn log_uniform<R: Rng>(lo: u32, hi: u32, rng: &mut R) -> u32 {
    if lo >= hi {
        return lo;
    }
    let (llo, lhi) = (f64::from(lo.max(1)).ln(), f64::from(hi).ln());
    let x = llo + (lhi - llo) * rng.random_range(0.0..1.0);
    (x.exp().round() as u32).clamp(lo, hi)
}

/// Generates a simulated run of `spec`.
pub fn generate_run<R: Rng>(
    spec: &WorkflowSpec,
    cfg: &RunGenConfig,
    rng: &mut R,
) -> Result<WorkflowRun> {
    let g = spec.graph();
    let backs: Vec<EdgeId> = back_edges(g);
    let back_set: std::collections::HashSet<EdgeId> = backs.iter().copied().collect();

    // Forward graph: same nodes, non-back edges only.
    let mut fwd: Digraph<(), ()> = Digraph::with_capacity(g.node_count(), g.edge_count());
    for _ in 0..g.node_count() {
        fwd.add_node(());
    }
    for e in g.edge_ids() {
        if !back_set.contains(&e) {
            let (s, t) = g.endpoints(e);
            fwd.add_edge(s, t, ());
        }
    }
    debug_assert!(zoom_graph::algo::topo::is_acyclic(&fwd));

    // Loop groups: union of overlapping back-edge bodies.
    let mut group_of: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut n_groups = 0usize;
    for &e in &backs {
        let (u, v) = g.endpoints(e);
        let body = nodes_on_paths(&fwd, v, u);
        // Collect existing groups touched by this body.
        let mut target: Option<usize> = None;
        for i in body.iter() {
            if let Some(gid) = group_of[i] {
                target = Some(match target {
                    None => gid,
                    Some(t) if t != gid => {
                        // Merge gid into t.
                        for slot in group_of.iter_mut() {
                            if *slot == Some(gid) {
                                *slot = Some(t);
                            }
                        }
                        t
                    }
                    Some(t) => t,
                });
            }
        }
        let gid = target.unwrap_or_else(|| {
            n_groups += 1;
            n_groups - 1
        });
        for i in body.iter() {
            group_of[i] = Some(gid);
        }
        // A self-loop's body is just the node itself.
        if u == v {
            group_of[u.index()] = Some(gid);
        }
    }

    // Iterations per group, capped so the expanded run fits max_nodes.
    let mut iters: HashMap<usize, u32> = HashMap::new();
    let group_ids: Vec<usize> = {
        let mut ids: Vec<usize> = group_of.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    for &gid in &group_ids {
        iters.insert(
            gid,
            rng.random_range(cfg.loop_iterations.0..=cfg.loop_iterations.1),
        );
    }
    // Size estimate and proportional clamping.
    let group_size = |gid: usize| group_of.iter().filter(|&&x| x == Some(gid)).count();
    let fixed: usize = group_of
        .iter()
        .enumerate()
        .filter(|&(i, x)| {
            x.is_none() && i >= 2 // skip input/output nodes 0 and 1
        })
        .count();
    loop {
        let total: usize = fixed
            + group_ids
                .iter()
                .map(|&gid| group_size(gid) * iters[&gid] as usize)
                .sum::<usize>();
        if total + 2 <= cfg.max_nodes || group_ids.iter().all(|gid| iters[gid] <= 1) {
            break;
        }
        for gid in &group_ids {
            let k = iters.get_mut(gid).expect("group registered");
            *k = (*k / 2).max(1);
        }
    }

    // In the final iteration of a loop, only the body nodes that can still
    // reach a loop *exit* (a cross edge leaving the group) execute — exactly
    // as in the paper's Figure 2, where the rectifier M5 runs once while M3
    // runs twice. Compute, per group, the backward closure of the exit
    // nodes over intra-group forward edges.
    let mut can_exit: Vec<bool> = vec![true; g.node_count()];
    for &gid in &group_ids {
        let members: Vec<NodeId> = g
            .node_ids()
            .filter(|n| group_of[n.index()] == Some(gid))
            .collect();
        let mut marked = vec![false; g.node_count()];
        let mut stack: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&m| g.successors(m).any(|t| group_of[t.index()] != Some(gid)))
            .collect();
        for &m in &stack {
            marked[m.index()] = true;
        }
        while let Some(x) = stack.pop() {
            for p in fwd.predecessors(x) {
                if group_of[p.index()] == Some(gid) && !marked[p.index()] {
                    marked[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        for &m in &members {
            can_exit[m.index()] = marked[m.index()];
        }
    }

    // Expand: create steps per (module, iteration).
    let mut rb = RunBuilder::new(spec);
    rb.user("simulated");
    let mut steps: HashMap<(NodeId, u32), StepId> = HashMap::new();
    let module_iters = |m: NodeId| -> u32 {
        match group_of[m.index()] {
            None => 1,
            Some(gid) => {
                let k = iters[&gid];
                if can_exit[m.index()] {
                    k
                } else {
                    k - 1 // skipped in the final iteration
                }
            }
        }
    };
    for m in spec.module_ids() {
        for i in 0..module_iters(m) {
            let sid = rb.step(m);
            steps.insert((m, i), sid);
        }
    }

    // Data production: each step produces `data_per_step` fresh objects,
    // carried by every outgoing edge of that step.
    let mut next_data: u64 = 1;
    let mut produced: HashMap<StepId, Vec<u64>> = HashMap::new();
    let mut produce = |sid: StepId, rng: &mut R, next_data: &mut u64| -> Vec<u64> {
        produced
            .entry(sid)
            .or_insert_with(|| {
                let p = rng.random_range(cfg.data_per_step.0..=cfg.data_per_step.1) as u64;
                let ids: Vec<u64> = (*next_data..*next_data + p).collect();
                *next_data += p;
                ids
            })
            .clone()
    };

    // User inputs: split across the spec's input edges (skipping any target
    // that ended up with zero iterations). Sizes are drawn *log-uniformly*
    // within the configured range: the paper's observed result sizes (an
    // average of 24 provenance tuples for small runs, and UBio ≈ 22×
    // UBlackBox) imply that most collected runs had small user inputs even
    // though the range extends to 100; a uniform draw would make user
    // inputs dominate every black-box provenance answer.
    let input_targets: Vec<NodeId> = g
        .successors(spec.input())
        .filter(|&m| module_iters(m) >= 1)
        .collect();
    let total_user = log_uniform(cfg.user_input.0, cfg.user_input.1, rng) as usize;
    let share = (total_user / input_targets.len().max(1)).max(1);
    for &m in &input_targets {
        let sid = steps[&(m, 0)];
        let ids: Vec<u64> = (next_data..next_data + share as u64).collect();
        next_data += share as u64;
        rb.input_edge(sid, ids);
    }

    // Wire the expanded edges.
    for e in g.edge_ids() {
        let (a, b) = g.endpoints(e);
        if a == spec.input() || b == spec.output() {
            continue; // handled separately
        }
        let (ga, gb) = (group_of[a.index()], group_of[b.index()]);
        let is_back = back_set.contains(&e);
        if is_back {
            // u@i -> v@{i+1} within the group.
            let gid = ga.expect("back edge source is in a loop group");
            debug_assert_eq!(gb, Some(gid), "back edge stays within its group");
            let k = iters[&gid];
            for i in 0..k.saturating_sub(1) {
                let (Some(&sa), Some(&sb)) = (steps.get(&(a, i)), steps.get(&(b, i + 1))) else {
                    continue;
                };
                let data = produce(sa, rng, &mut next_data);
                rb.data_edge(sa, sb, data);
            }
        } else if ga.is_some() && ga == gb {
            // Intra-group forward edge: a@i -> b@i.
            let k = iters[&ga.expect("checked")];
            for i in 0..k {
                let (Some(&sa), Some(&sb)) = (steps.get(&(a, i)), steps.get(&(b, i))) else {
                    continue;
                };
                let data = produce(sa, rng, &mut next_data);
                rb.data_edge(sa, sb, data);
            }
        } else {
            // Cross edge: last iteration of a feeds first iteration of b.
            // A cross edge's source always has an exit (this edge), so its
            // last iteration exists.
            if module_iters(a) == 0 || module_iters(b) == 0 {
                continue;
            }
            let sa = steps[&(a, module_iters(a) - 1)];
            let sb = steps[&(b, 0)];
            let data = produce(sa, rng, &mut next_data);
            rb.data_edge(sa, sb, data);
        }
    }

    // Output edges: last iteration flows to output.
    for m in g.predecessors(spec.output()) {
        if matches!(g.node(m), SpecNode::Input) {
            continue;
        }
        let sid = steps[&(m, module_iters(m) - 1)];
        let data = produce(sid, rng, &mut next_data);
        rb.output_edge(sid, data);
    }

    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::WorkflowClass;
    use crate::specgen::{generate_spec, SpecGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zoom_model::SpecBuilder;

    fn loopy_spec() -> WorkflowSpec {
        // I -> A -> B -> C -> O with C -> B back edge.
        let mut b = SpecBuilder::new("loopy");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("C", "B")
            .to_output("C");
        b.build().unwrap()
    }

    #[test]
    fn unrolls_loops_to_iteration_count() {
        let s = loopy_spec();
        let cfg = RunGenConfig {
            user_input: (5, 5),
            data_per_step: (1, 1),
            loop_iterations: (3, 3),
            max_nodes: 1000,
            max_edges: 1000,
        };
        let run = generate_run(&s, &cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        // A once, B and C three times each.
        assert_eq!(run.step_count(), 1 + 3 + 3);
        let b = s.module("B").unwrap();
        let b_steps = run.steps().filter(|&(_, m)| m == b).count();
        assert_eq!(b_steps, 3);
    }

    #[test]
    fn respects_node_cap() {
        let s = loopy_spec();
        let cfg = RunGenConfig {
            user_input: (1, 1),
            data_per_step: (1, 1),
            loop_iterations: (40, 40),
            max_nodes: 20,
            max_edges: 10_000,
        };
        let run = generate_run(&s, &cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        assert!(run.graph().node_count() <= 20);
    }

    #[test]
    fn self_loop_unrolls() {
        let mut b = SpecBuilder::new("self");
        b.analysis("A");
        b.from_input("A").edge("A", "A").to_output("A");
        let s = b.build().unwrap();
        let cfg = RunGenConfig {
            user_input: (2, 2),
            data_per_step: (1, 1),
            loop_iterations: (4, 4),
            max_nodes: 100,
            max_edges: 100,
        };
        let run = generate_run(&s, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(run.step_count(), 4);
    }

    #[test]
    fn all_classes_and_kinds_generate_valid_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        for class in [
            WorkflowClass::Linear,
            WorkflowClass::Parallel,
            WorkflowClass::Loop,
        ] {
            let spec = generate_spec("t", &SpecGenConfig::new(class, 20), &mut rng);
            for kind in RunKind::ALL {
                let cfg = RunGenConfig::for_kind(kind);
                let run = generate_run(&spec, &cfg, &mut rng)
                    .unwrap_or_else(|e| panic!("{class} {kind}: {e}"));
                assert!(run.graph().node_count() <= cfg.max_nodes + 2);
                assert!(run.step_count() >= spec.module_count());
            }
        }
    }

    #[test]
    fn library_specs_generate_valid_runs() {
        let mut rng = StdRng::seed_from_u64(5);
        for spec in crate::library::real_workflows() {
            for kind in RunKind::ALL {
                let cfg = RunGenConfig::for_kind(kind);
                generate_run(&spec, &cfg, &mut rng)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let s = loopy_spec();
        let cfg = RunGenConfig::for_kind(RunKind::Medium);
        let a = generate_run(&s, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = generate_run(&s, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.step_count(), b.step_count());
        assert_eq!(a.all_data(), b.all_data());
    }

    #[test]
    fn larger_kinds_give_larger_runs() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = generate_spec("t", &SpecGenConfig::new(WorkflowClass::Loop, 20), &mut rng);
        let small = generate_run(
            &spec,
            &RunGenConfig::for_kind(RunKind::Small),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let large = generate_run(
            &spec,
            &RunGenConfig::for_kind(RunKind::Large),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        assert!(large.step_count() > small.step_count());
        assert!(large.data_count() > small.data_count());
    }
}
