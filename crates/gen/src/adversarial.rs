//! Adversarial run shapes for the reachability-index scaling sweep.
//!
//! The interval-label index (`zoom-warehouse::labels`) has sharply
//! shape-dependent costs: a deep chain is its best case (every closure is
//! one interval), a diamond lattice its worst practical case (non-tree
//! edges force exception intervals), and a wide fan-out stresses the
//! spanning-forest construction with maximal branching. These generators
//! build such runs at controlled sizes — up to a million steps — so the
//! `index_speedup` experiment and the `label_scaling` smoke test can
//! compare BFS, bitset, and label backends on the shapes that separate
//! them.
//!
//! All three are deterministic (no RNG): the shapes, not sampled noise,
//! are the point. Each returns the `(spec, run)` pair; the specs are the
//! minimal ones that make the run spec-conformant (chains and lattices
//! reuse one self-looping module, the legal "Loop pattern" encoding).

use zoom_model::{ModuleKind, SpecBuilder, StepId, WorkflowRun, WorkflowSpec};

/// Minimal spec for chain/lattice runs: `input -> A`, `A -> A`,
/// `A -> output`. The self-edge is the Loop-pattern encoding that lets a
/// single module appear at every depth.
fn self_loop_spec(name: &str) -> WorkflowSpec {
    let mut b = SpecBuilder::new(name);
    b.module("A", ModuleKind::Analysis);
    b.from_input("A").edge("A", "A").to_output("A");
    b.build().expect("self-loop spec is valid")
}

/// A run that is a single chain of `steps` steps:
/// `input -> s1 -> s2 -> ... -> s_n -> output`.
///
/// Best case for interval labels — the spanning forest is the chain
/// itself, every label is exactly one interval, and both closure queries
/// degenerate to a single interval-containment test.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn deep_chain(steps: usize) -> (WorkflowSpec, WorkflowRun) {
    assert!(steps >= 1, "deep_chain needs at least one step");
    let spec = self_loop_spec("adversarial-deep-chain");
    let module = spec.module("A").expect("module A exists");
    let mut rb = zoom_model::RunBuilder::new(&spec);
    let ids: Vec<StepId> = (0..steps).map(|_| rb.step(module)).collect();
    rb.input_edge(ids[0], [1]);
    for i in 1..steps {
        rb.data_edge(ids[i - 1], ids[i], [1 + i as u64]);
    }
    rb.output_edge(ids[steps - 1], [1 + steps as u64]);
    let run = rb.build().expect("deep chain is a valid run");
    (spec, run)
}

/// A run with one root step fanning out to `width` leaf steps, each of
/// which feeds the output:
/// `input -> root -> {leaf_1 .. leaf_w} -> output`.
///
/// Maximal branching: the root's forward closure is every leaf, and the
/// spanning forest degenerates to a star. Exercises wide frontier handling
/// in the BFS oracle and bulk interval unioning in the label builder.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn wide_fanout(width: usize) -> (WorkflowSpec, WorkflowRun) {
    assert!(width >= 1, "wide_fanout needs at least one leaf");
    let mut b = SpecBuilder::new("adversarial-wide-fanout");
    b.module("A", ModuleKind::Analysis);
    b.module("B", ModuleKind::Analysis);
    b.from_input("A").edge("A", "B").to_output("B");
    let spec = b.build().expect("fan-out spec is valid");
    let root_m = spec.module("A").expect("module A exists");
    let leaf_m = spec.module("B").expect("module B exists");

    let mut rb = zoom_model::RunBuilder::new(&spec);
    let root = rb.step(root_m);
    rb.input_edge(root, [1]);
    let d = 2u64; // the one object the root hands every leaf
    for j in 0..width as u64 {
        let leaf = rb.step(leaf_m);
        rb.data_edge(root, leaf, [d]);
        rb.output_edge(leaf, [d + 1 + j]);
    }
    let run = rb.build().expect("wide fan-out is a valid run");
    (spec, run)
}

/// A diamond lattice of `layers × width` steps. Step `(i, j)` feeds both
/// `(i+1, j)` and `(i+1, (j+1) % width)`, so closures interleave columns
/// and any spanning forest leaves `layers × width` non-tree edges —
/// the worst practical shape for interval labels (per-node label counts
/// grow with `width`) while staying a valid acyclic run.
///
/// # Panics
///
/// Panics if `layers == 0` or `width == 0`.
pub fn diamond_lattice(layers: usize, width: usize) -> (WorkflowSpec, WorkflowRun) {
    assert!(layers >= 1 && width >= 1, "lattice needs positive extent");
    let spec = self_loop_spec("adversarial-diamond-lattice");
    let module = spec.module("A").expect("module A exists");
    let mut rb = zoom_model::RunBuilder::new(&spec);
    let w = width as u64;
    let ids: Vec<StepId> = (0..layers * width).map(|_| rb.step(module)).collect();
    let at = |i: usize, j: usize| ids[i * width + j];
    // Step (i, j) produces exactly one object, carried on all its out-edges.
    let out = |i: usize, j: usize| 1 + w + (i * width + j) as u64;
    for j in 0..width {
        rb.input_edge(at(0, j), [1 + j as u64]);
    }
    for i in 0..layers - 1 {
        for j in 0..width {
            rb.data_edge(at(i, j), at(i + 1, j), [out(i, j)]);
            if width > 1 {
                rb.data_edge(at(i, j), at(i + 1, (j + 1) % width), [out(i, j)]);
            }
        }
    }
    for j in 0..width {
        rb.output_edge(at(layers - 1, j), [out(layers - 1, j)]);
    }
    let run = rb.build().expect("diamond lattice is a valid run");
    (spec, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_chain_shape() {
        let (_, run) = deep_chain(100);
        let g = run.graph();
        assert_eq!(g.node_count(), 102); // input + output + 100 steps
        assert_eq!(g.edge_count(), 101); // a single path
    }

    #[test]
    fn single_step_chain() {
        let (_, run) = deep_chain(1);
        assert_eq!(run.graph().node_count(), 3);
    }

    #[test]
    fn wide_fanout_shape() {
        let (_, run) = wide_fanout(50);
        let g = run.graph();
        assert_eq!(g.node_count(), 53); // input + output + root + 50 leaves
        assert_eq!(g.edge_count(), 101); // in-edge + 50 fan-out + 50 out-edges
    }

    #[test]
    fn diamond_lattice_shape() {
        let (_, run) = diamond_lattice(10, 8);
        let g = run.graph();
        assert_eq!(g.node_count(), 82); // input + output + 80 steps
                                        // 8 input edges + 9*8*2 internal + 8 output edges
        assert_eq!(g.edge_count(), 8 + 144 + 8);
    }

    #[test]
    fn degenerate_lattice_is_a_chain() {
        let (_, run) = diamond_lattice(5, 1);
        let g = run.graph();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn shapes_scale_without_blowup() {
        // A quick sanity run at 10k steps; the million-step sizes are
        // exercised by the release-mode bench and label_scaling test.
        let (_, run) = deep_chain(10_000);
        assert_eq!(run.graph().node_count(), 10_002);
        let (_, run) = diamond_lattice(1_000, 10);
        assert_eq!(run.graph().node_count(), 10_002);
    }
}
