//! The "Class 1" library: realistic scientific workflows.
//!
//! The paper's Class 1 is a private corpus of 30 collected workflows
//! (average ≈ 12 modules, mostly linear, occasional loops and parallel
//! sections). That corpus is not public, so this module provides a curated
//! library with the same published statistics — headlined by a faithful
//! reconstruction of the paper's **Figure 1** phylogenomic workflow and its
//! **Figure 2** run (steps `S1..S10`, data `d1..d447`), which the worked
//! examples of Section II are stated against.

use zoom_model::{RunBuilder, SpecBuilder, StepId, WorkflowRun, WorkflowSpec};

// `provenance_challenge` is not part of `real_workflows()` — the Class-1
// statistics are calibrated to the ten curated specs — but it is exported
// for the challenge example and tests.

/// The Figure 1 phylogenomic workflow:
///
/// * `M1` — format DB entries (→ sequences for `M3`, annotations for `M2`)
/// * `M2` — annotation checking (needs user input)
/// * `M3` — run alignment
/// * `M4` — format alignment
/// * `M5` — rectify alignment (loops back to `M3`)
/// * `M6` — format lab annotations
/// * `M7` — build phylogenetic tree
/// * `M8` — format curated annotations
///
/// Edges: `I→M1, I→M2, I→M6; M1→M2, M1→M3; M3→M4; M4→M5, M4→M7;
/// M5→M3; M2→M8; M8→M7; M6→M7; M7→O`.
///
/// With relevant modules `{M2, M3, M7}` the `RelevUserViewBuilder` yields
/// Joe's view (`{M2}, {M3,M4,M5}, {M6,M7,M8}, {M1}`, size 4); with
/// `{M2, M3, M5, M7}` it yields Mary's (size 5) — exactly the views of the
/// paper's introduction.
pub fn phylogenomic() -> WorkflowSpec {
    let mut b = SpecBuilder::new("phylogenomic");
    b.formatting("M1");
    b.analysis("M2");
    b.analysis("M3");
    b.formatting("M4");
    b.analysis("M5");
    b.formatting("M6");
    b.analysis("M7");
    b.formatting("M8");
    b.from_input("M1")
        .from_input("M2")
        .from_input("M6")
        .edge("M1", "M2")
        .edge("M1", "M3")
        .edge("M3", "M4")
        .edge("M4", "M5")
        .edge("M4", "M7")
        .edge("M5", "M3")
        .edge("M2", "M8")
        .edge("M8", "M7")
        .edge("M6", "M7")
        .to_output("M7");
    b.build().expect("phylogenomic workflow is a valid spec")
}

/// The Figure 2 run of the phylogenomic workflow: 100 input sequences
/// (`d1..d100`), the alignment loop executed twice, 5 user-modified
/// annotations (`d202..d206`), 31 lab annotations (`d415..d445`), final
/// tree `d447`. Steps and data flows:
///
/// ```text
/// S1:M1  in d1..d100          out d101..d201 → S7:M2,  d308..d408 → S2:M3
/// S2:M3  in d308..d408        out d409 → S3:M4
/// S3:M4  in d409              out d410 → S4:M5
/// S4:M5  in d410              out d411 → S5:M3
/// S5:M3  in d411              out d412 → S6:M4
/// S6:M4  in d412              out d413 → S10:M7
/// S7:M2  in d101..d201 + d202..d206 (user)   out d207..d307 → S8:M8
/// S8:M8  in d207..d307        out d414 → S10:M7
/// S9:M6  in d415..d445 (user) out d446 → S10:M7
/// S10:M7 in d413,d414,d446    out d447 → output
/// ```
///
/// Every stated fact of Section II holds on this run: the immediate
/// provenance of `d413` is `S6:M4` with inputs `{d412}`; its deep provenance
/// contains `S2:M3` with inputs `{d308..d408}`; under Joe's view the
/// immediate provenance of `d413` is the virtual `S13` with inputs
/// `{d308..d408}`; under Mary's it is `S12` with inputs `{d411}`; and the
/// deep provenance of `d447` under UAdmin contains all of `d1..d447` and
/// `S1..S10`.
pub fn figure2_run(spec: &WorkflowSpec) -> WorkflowRun {
    let m = |l: &str| spec.module(l).expect("phylogenomic module");
    let mut rb = RunBuilder::new(spec);
    rb.user("biologist");
    let s1 = rb.step_with_id(StepId(1), m("M1"));
    let s2 = rb.step_with_id(StepId(2), m("M3"));
    let s3 = rb.step_with_id(StepId(3), m("M4"));
    let s4 = rb.step_with_id(StepId(4), m("M5"));
    let s5 = rb.step_with_id(StepId(5), m("M3"));
    let s6 = rb.step_with_id(StepId(6), m("M4"));
    let s7 = rb.step_with_id(StepId(7), m("M2"));
    let s8 = rb.step_with_id(StepId(8), m("M8"));
    let s9 = rb.step_with_id(StepId(9), m("M6"));
    let s10 = rb.step_with_id(StepId(10), m("M7"));
    rb.param(s2, "tool", "clustalw")
        .param(s2, "gap-penalty", "10")
        .param(s5, "tool", "clustalw")
        .param(s5, "gap-penalty", "8")
        .param(s10, "method", "neighbor-joining")
        .input_edge(s1, 1..=100)
        .data_edge(s1, s7, 101..=201)
        .data_edge(s1, s2, 308..=408)
        .data_edge(s2, s3, [409])
        .data_edge(s3, s4, [410])
        .data_edge(s4, s5, [411])
        .data_edge(s5, s6, [412])
        .data_edge(s6, s10, [413])
        .input_edge(s7, 202..=206)
        .data_edge(s7, s8, 207..=307)
        .data_edge(s8, s10, [414])
        .input_edge(s9, 415..=445)
        .data_edge(s9, s10, [446])
        .output_edge(s10, [447]);
    rb.build().expect("figure 2 run is valid")
}

/// A linear BLAST-and-annotate pipeline (9 modules, mostly formatting).
pub fn blast_pipeline() -> WorkflowSpec {
    let mut b = SpecBuilder::new("blast-pipeline");
    b.formatting("FetchSeq");
    b.formatting("ToFasta");
    b.analysis("Blast");
    b.formatting("ParseHits");
    b.analysis("FilterHits");
    b.formatting("FetchHitSeqs");
    b.analysis("Annotate");
    b.formatting("FormatReport");
    b.analysis("Report");
    b.from_input("FetchSeq")
        .edge("FetchSeq", "ToFasta")
        .edge("ToFasta", "Blast")
        .edge("Blast", "ParseHits")
        .edge("ParseHits", "FilterHits")
        .edge("FilterHits", "FetchHitSeqs")
        .edge("FetchHitSeqs", "Annotate")
        .edge("Annotate", "FormatReport")
        .edge("FormatReport", "Report")
        .to_output("Report");
    b.build().expect("valid spec")
}

/// A microarray differential-expression workflow with a normalization loop
/// and parallel statistical tests (12 modules).
pub fn microarray() -> WorkflowSpec {
    let mut b = SpecBuilder::new("microarray");
    b.formatting("LoadCEL");
    b.formatting("QC");
    b.analysis("Normalize");
    b.analysis("InspectNorm"); // loops back to Normalize
    b.formatting("ToMatrix");
    b.analysis("TTest");
    b.analysis("Permutation");
    b.formatting("MergeStats");
    b.analysis("FDR");
    b.formatting("AnnotateGenes");
    b.analysis("Cluster");
    b.formatting("RenderHeatmap");
    b.from_input("LoadCEL")
        .edge("LoadCEL", "QC")
        .edge("QC", "Normalize")
        .edge("Normalize", "InspectNorm")
        .edge("InspectNorm", "Normalize")
        .edge("InspectNorm", "ToMatrix")
        .edge("ToMatrix", "TTest")
        .edge("ToMatrix", "Permutation")
        .edge("TTest", "MergeStats")
        .edge("Permutation", "MergeStats")
        .edge("MergeStats", "FDR")
        .edge("FDR", "AnnotateGenes")
        .edge("AnnotateGenes", "Cluster")
        .edge("Cluster", "RenderHeatmap")
        .to_output("RenderHeatmap");
    b.build().expect("valid spec")
}

/// A proteomics identification workflow with parallel search engines
/// (11 modules).
pub fn proteomics() -> WorkflowSpec {
    let mut b = SpecBuilder::new("proteomics");
    b.formatting("ConvertRaw");
    b.formatting("PeakPick");
    b.analysis("SearchMascot");
    b.analysis("SearchSequest");
    b.formatting("MergeIds");
    b.analysis("ScorePSMs");
    b.analysis("FilterFDR");
    b.formatting("MapProteins");
    b.analysis("Quantify");
    b.formatting("FormatTable");
    b.analysis("Summarize");
    b.from_input("ConvertRaw")
        .edge("ConvertRaw", "PeakPick")
        .edge("PeakPick", "SearchMascot")
        .edge("PeakPick", "SearchSequest")
        .edge("SearchMascot", "MergeIds")
        .edge("SearchSequest", "MergeIds")
        .edge("MergeIds", "ScorePSMs")
        .edge("ScorePSMs", "FilterFDR")
        .edge("FilterFDR", "MapProteins")
        .edge("MapProteins", "Quantify")
        .edge("Quantify", "FormatTable")
        .edge("FormatTable", "Summarize")
        .to_output("Summarize");
    b.build().expect("valid spec")
}

/// A variant-calling workflow with a realignment loop and two callers
/// (14 modules).
pub fn variant_calling() -> WorkflowSpec {
    let mut b = SpecBuilder::new("variant-calling");
    b.formatting("Demultiplex");
    b.formatting("TrimAdapters");
    b.analysis("AlignBWA");
    b.analysis("CheckAlign"); // loop back to AlignBWA
    b.formatting("SortBam");
    b.formatting("MarkDups");
    b.analysis("CallGATK");
    b.analysis("CallFreebayes");
    b.formatting("MergeVCF");
    b.analysis("FilterVariants");
    b.formatting("NormalizeVCF");
    b.analysis("AnnotateVEP");
    b.formatting("FormatVCF");
    b.analysis("Prioritize");
    b.from_input("Demultiplex")
        .edge("Demultiplex", "TrimAdapters")
        .edge("TrimAdapters", "AlignBWA")
        .edge("AlignBWA", "CheckAlign")
        .edge("CheckAlign", "AlignBWA")
        .edge("CheckAlign", "SortBam")
        .edge("SortBam", "MarkDups")
        .edge("MarkDups", "CallGATK")
        .edge("MarkDups", "CallFreebayes")
        .edge("CallGATK", "MergeVCF")
        .edge("CallFreebayes", "MergeVCF")
        .edge("MergeVCF", "FilterVariants")
        .edge("FilterVariants", "NormalizeVCF")
        .edge("NormalizeVCF", "AnnotateVEP")
        .edge("AnnotateVEP", "FormatVCF")
        .edge("FormatVCF", "Prioritize")
        .to_output("Prioritize");
    b.build().expect("valid spec")
}

/// A small linear QC pipeline (6 modules).
pub fn sequence_qc() -> WorkflowSpec {
    let mut b = SpecBuilder::new("sequence-qc");
    b.formatting("Ingest");
    b.analysis("FastQC");
    b.formatting("Trim");
    b.analysis("ReQC");
    b.formatting("Compress");
    b.analysis("Publish");
    b.from_input("Ingest")
        .edge("Ingest", "FastQC")
        .edge("FastQC", "Trim")
        .edge("Trim", "ReQC")
        .edge("ReQC", "Compress")
        .edge("Compress", "Publish")
        .to_output("Publish");
    b.build().expect("valid spec")
}

/// A pathway-enrichment workflow merging two user-supplied inputs
/// (10 modules).
pub fn pathway_enrichment() -> WorkflowSpec {
    let mut b = SpecBuilder::new("pathway-enrichment");
    b.formatting("LoadGeneList");
    b.formatting("LoadBackground");
    b.formatting("MapIds");
    b.analysis("Enrich");
    b.analysis("CorrectPvals");
    b.formatting("FetchPathways");
    b.analysis("ScorePathways");
    b.formatting("MergeResults");
    b.formatting("RenderPlot");
    b.analysis("Interpret");
    b.from_input("LoadGeneList")
        .from_input("LoadBackground")
        .edge("LoadGeneList", "MapIds")
        .edge("LoadBackground", "MapIds")
        .edge("MapIds", "Enrich")
        .edge("Enrich", "CorrectPvals")
        .edge("CorrectPvals", "ScorePathways")
        .edge("FetchPathways", "ScorePathways")
        .from_input("FetchPathways")
        .edge("ScorePathways", "MergeResults")
        .edge("MergeResults", "RenderPlot")
        .edge("RenderPlot", "Interpret")
        .to_output("Interpret");
    b.build().expect("valid spec")
}

/// A docking-screen workflow with a refinement loop (13 modules).
pub fn docking_screen() -> WorkflowSpec {
    let mut b = SpecBuilder::new("docking-screen");
    b.formatting("PrepLigands");
    b.formatting("PrepReceptor");
    b.analysis("Dock");
    b.analysis("ScorePoses");
    b.analysis("RefinePoses"); // loop back to Dock
    b.formatting("ExtractTop");
    b.analysis("MDsimulate");
    b.formatting("ParseTrajectory");
    b.analysis("BindingEnergy");
    b.formatting("RankTable");
    b.analysis("SelectHits");
    b.formatting("ExportSDF");
    b.analysis("ReportHits");
    b.from_input("PrepLigands")
        .from_input("PrepReceptor")
        .edge("PrepLigands", "Dock")
        .edge("PrepReceptor", "Dock")
        .edge("Dock", "ScorePoses")
        .edge("ScorePoses", "RefinePoses")
        .edge("RefinePoses", "Dock")
        .edge("ScorePoses", "ExtractTop")
        .edge("ExtractTop", "MDsimulate")
        .edge("MDsimulate", "ParseTrajectory")
        .edge("ParseTrajectory", "BindingEnergy")
        .edge("BindingEnergy", "RankTable")
        .edge("RankTable", "SelectHits")
        .edge("SelectHits", "ExportSDF")
        .edge("ExportSDF", "ReportHits")
        .to_output("ReportHits");
    b.build().expect("valid spec")
}

/// A metagenomics profiling workflow (12 modules, parallel classifiers).
pub fn metagenomics() -> WorkflowSpec {
    let mut b = SpecBuilder::new("metagenomics");
    b.formatting("SplitReads");
    b.formatting("HostFilter");
    b.analysis("Kraken");
    b.analysis("MetaPhlAn");
    b.formatting("MergeProfiles");
    b.analysis("Diversity");
    b.analysis("Assemble");
    b.formatting("BinContigs");
    b.analysis("AnnotateBins");
    b.formatting("BuildTables");
    b.analysis("Compare");
    b.formatting("RenderReport");
    b.from_input("SplitReads")
        .edge("SplitReads", "HostFilter")
        .edge("HostFilter", "Kraken")
        .edge("HostFilter", "MetaPhlAn")
        .edge("HostFilter", "Assemble")
        .edge("Kraken", "MergeProfiles")
        .edge("MetaPhlAn", "MergeProfiles")
        .edge("MergeProfiles", "Diversity")
        .edge("Assemble", "BinContigs")
        .edge("BinContigs", "AnnotateBins")
        .edge("Diversity", "BuildTables")
        .edge("AnnotateBins", "BuildTables")
        .edge("BuildTables", "Compare")
        .edge("Compare", "RenderReport")
        .to_output("RenderReport");
    b.build().expect("valid spec")
}

/// A structure-prediction-and-compare workflow (8 modules).
pub fn structure_prediction() -> WorkflowSpec {
    let mut b = SpecBuilder::new("structure-prediction");
    b.formatting("CleanSeq");
    b.analysis("PredictSS");
    b.analysis("Fold");
    b.analysis("AssessModel"); // loop back to Fold
    b.formatting("SuperposePrep");
    b.analysis("CompareKnown");
    b.formatting("RenderPyMOL");
    b.analysis("Conclude");
    b.from_input("CleanSeq")
        .edge("CleanSeq", "PredictSS")
        .edge("PredictSS", "Fold")
        .edge("Fold", "AssessModel")
        .edge("AssessModel", "Fold")
        .edge("AssessModel", "SuperposePrep")
        .edge("SuperposePrep", "CompareKnown")
        .edge("CompareKnown", "RenderPyMOL")
        .edge("RenderPyMOL", "Conclude")
        .to_output("Conclude");
    b.build().expect("valid spec")
}

/// The First Provenance Challenge fMRI workflow (the paper's references
/// \[5\]/\[6\]: the authors' provenance model "was used in the First Provenance
/// Challenge"). Five procedures — align_warp, reslice, softmean, slicer,
/// convert — run over four anatomy-image/header pairs, producing three
/// atlas graphics:
///
/// ```text
/// I → AlignWarp → Reslice → Softmean → Slicer → Convert → O
/// ```
pub fn provenance_challenge() -> WorkflowSpec {
    let mut b = SpecBuilder::new("provenance-challenge");
    b.analysis("AlignWarp");
    b.analysis("Reslice");
    b.analysis("Softmean");
    b.analysis("Slicer");
    b.formatting("Convert");
    b.from_input("AlignWarp")
        .edge("AlignWarp", "Reslice")
        .edge("Reslice", "Softmean")
        .edge("Softmean", "Slicer")
        .edge("Slicer", "Convert")
        .to_output("Convert");
    b.build().expect("valid spec")
}

/// The canonical run of the Provenance Challenge workflow: four parallel
/// `align_warp`/`reslice` instances (one per anatomy-image/header pair),
/// one `softmean`, and three `slicer`/`convert` instances (x/y/z slices),
/// producing three atlas graphics. Data numbering:
///
/// * `d1..d8` — four (anatomy image, header) input pairs
/// * `d9..d12` — warp parameters; `d13..d16` — resliced images
/// * `d17` — atlas mean; `d18..d20` — atlas slices; `d21..d23` — graphics
pub fn provenance_challenge_run(spec: &WorkflowSpec) -> WorkflowRun {
    let m = |l: &str| spec.module(l).expect("module exists");
    let mut rb = RunBuilder::new(spec);
    rb.user("challenge");
    // Four parallel align_warp steps: S1..S4 (steps of one module may run
    // in parallel over different inputs — module labels repeat without a
    // loop, which the run model permits).
    let aligns: Vec<StepId> = (0..4).map(|_| rb.step(m("AlignWarp"))).collect();
    let reslices: Vec<StepId> = (0..4).map(|_| rb.step(m("Reslice"))).collect();
    let softmean = rb.step(m("Softmean"));
    let slicers: Vec<StepId> = (0..3).map(|_| rb.step(m("Slicer"))).collect();
    let converts: Vec<StepId> = (0..3).map(|_| rb.step(m("Convert"))).collect();
    for (i, &a) in aligns.iter().enumerate() {
        let img = 1 + 2 * i as u64; // d1,d3,d5,d7 images; d2,d4,d6,d8 headers
        rb.input_edge(a, [img, img + 1]);
        rb.data_edge(a, reslices[i], [9 + i as u64]);
        rb.data_edge(reslices[i], softmean, [13 + i as u64]);
    }
    for (i, &s) in slicers.iter().enumerate() {
        rb.data_edge(softmean, s, [17]);
        rb.data_edge(s, converts[i], [18 + i as u64]);
        rb.output_edge(converts[i], [21 + i as u64]);
    }
    rb.build().expect("valid run")
}

/// An RNA-seq differential-expression pipeline (13 modules, linear with one
/// parallel quantification fork).
pub fn rnaseq() -> WorkflowSpec {
    let mut b = SpecBuilder::new("rnaseq");
    b.formatting("Demux");
    b.analysis("TrimQC");
    b.analysis("AlignSTAR");
    b.formatting("SortIndex");
    b.analysis("CountFeature");
    b.analysis("Salmon");
    b.formatting("MergeCounts");
    b.analysis("NormalizeDESeq");
    b.analysis("TestDE");
    b.formatting("AnnotateHits");
    b.analysis("GSEA");
    b.formatting("MakeFigures");
    b.analysis("WriteReport");
    b.from_input("Demux")
        .edge("Demux", "TrimQC")
        .edge("TrimQC", "AlignSTAR")
        .edge("TrimQC", "Salmon")
        .edge("AlignSTAR", "SortIndex")
        .edge("SortIndex", "CountFeature")
        .edge("CountFeature", "MergeCounts")
        .edge("Salmon", "MergeCounts")
        .edge("MergeCounts", "NormalizeDESeq")
        .edge("NormalizeDESeq", "TestDE")
        .edge("TestDE", "AnnotateHits")
        .edge("AnnotateHits", "GSEA")
        .edge("GSEA", "MakeFigures")
        .edge("MakeFigures", "WriteReport")
        .to_output("WriteReport");
    b.build().expect("valid spec")
}

/// A ChIP-seq peak-calling workflow with a filtering loop (11 modules).
pub fn chipseq() -> WorkflowSpec {
    let mut b = SpecBuilder::new("chipseq");
    b.formatting("SplitLanes");
    b.analysis("MapBowtie");
    b.formatting("Dedup");
    b.analysis("CallPeaks");
    b.analysis("InspectPeaks"); // loops back to CallPeaks with new params
    b.formatting("MergeReplicates");
    b.analysis("MotifSearch");
    b.analysis("AnnotatePeaks");
    b.formatting("BedToBigBed");
    b.formatting("TrackHub");
    b.analysis("Interpret");
    b.from_input("SplitLanes")
        .edge("SplitLanes", "MapBowtie")
        .edge("MapBowtie", "Dedup")
        .edge("Dedup", "CallPeaks")
        .edge("CallPeaks", "InspectPeaks")
        .edge("InspectPeaks", "CallPeaks")
        .edge("InspectPeaks", "MergeReplicates")
        .edge("MergeReplicates", "MotifSearch")
        .edge("MergeReplicates", "AnnotatePeaks")
        .edge("MotifSearch", "Interpret")
        .edge("AnnotatePeaks", "BedToBigBed")
        .edge("BedToBigBed", "TrackHub")
        .edge("TrackHub", "Interpret")
        .to_output("Interpret");
    b.build().expect("valid spec")
}

/// A comparative-genomics ortholog workflow with two independent inputs
/// (9 modules).
pub fn ortholog_detection() -> WorkflowSpec {
    let mut b = SpecBuilder::new("ortholog-detection");
    b.formatting("LoadGenomeA");
    b.formatting("LoadGenomeB");
    b.analysis("AllVsAllBlast");
    b.analysis("ReciprocalBest");
    b.formatting("ClusterFormat");
    b.analysis("BuildFamilies");
    b.analysis("AlignFamilies");
    b.formatting("ConcatAlignments");
    b.analysis("SpeciesTree");
    b.from_input("LoadGenomeA")
        .from_input("LoadGenomeB")
        .edge("LoadGenomeA", "AllVsAllBlast")
        .edge("LoadGenomeB", "AllVsAllBlast")
        .edge("AllVsAllBlast", "ReciprocalBest")
        .edge("ReciprocalBest", "ClusterFormat")
        .edge("ClusterFormat", "BuildFamilies")
        .edge("BuildFamilies", "AlignFamilies")
        .edge("AlignFamilies", "ConcatAlignments")
        .edge("ConcatAlignments", "SpeciesTree")
        .to_output("SpeciesTree");
    b.build().expect("valid spec")
}

/// A mass-spec metabolomics workflow (12 modules, two-stage loop).
pub fn metabolomics() -> WorkflowSpec {
    let mut b = SpecBuilder::new("metabolomics");
    b.formatting("ConvertVendor");
    b.analysis("PickFeatures");
    b.analysis("AlignRT"); // loops with PickFeatures for parameter tuning
    b.formatting("FillGaps");
    b.analysis("IdentifyMS2");
    b.formatting("MapHMDB");
    b.analysis("QuantifyPeaks");
    b.formatting("NormalizeBatch");
    b.analysis("Statistics");
    b.analysis("PathwayMap");
    b.formatting("ExportTables");
    b.analysis("WriteSummary");
    b.from_input("ConvertVendor")
        .edge("ConvertVendor", "PickFeatures")
        .edge("PickFeatures", "AlignRT")
        .edge("AlignRT", "PickFeatures")
        .edge("AlignRT", "FillGaps")
        .edge("FillGaps", "IdentifyMS2")
        .edge("IdentifyMS2", "MapHMDB")
        .edge("FillGaps", "QuantifyPeaks")
        .edge("QuantifyPeaks", "NormalizeBatch")
        .edge("MapHMDB", "Statistics")
        .edge("NormalizeBatch", "Statistics")
        .edge("Statistics", "PathwayMap")
        .edge("PathwayMap", "ExportTables")
        .edge("ExportTables", "WriteSummary")
        .to_output("WriteSummary");
    b.build().expect("valid spec")
}

/// A single-cell clustering workflow (10 modules, linear).
pub fn single_cell() -> WorkflowSpec {
    let mut b = SpecBuilder::new("single-cell");
    b.formatting("CellRangerOut");
    b.analysis("FilterCells");
    b.analysis("NormalizeSC");
    b.formatting("SelectGenes");
    b.analysis("PCA");
    b.analysis("Neighbors");
    b.analysis("ClusterLeiden");
    b.analysis("UMAP");
    b.formatting("ExportLoom");
    b.analysis("AnnotateTypes");
    b.from_input("CellRangerOut")
        .edge("CellRangerOut", "FilterCells")
        .edge("FilterCells", "NormalizeSC")
        .edge("NormalizeSC", "SelectGenes")
        .edge("SelectGenes", "PCA")
        .edge("PCA", "Neighbors")
        .edge("Neighbors", "ClusterLeiden")
        .edge("Neighbors", "UMAP")
        .edge("ClusterLeiden", "AnnotateTypes")
        .edge("UMAP", "AnnotateTypes")
        .edge("AnnotateTypes", "ExportLoom")
        .to_output("ExportLoom");
    b.build().expect("valid spec")
}

/// An epidemiological phylodynamics workflow (11 modules, reflexive MCMC
/// loop).
pub fn phylodynamics() -> WorkflowSpec {
    let mut b = SpecBuilder::new("phylodynamics");
    b.formatting("HarvestGenbank");
    b.formatting("CurateMetadata");
    b.analysis("AlignMAFFT");
    b.analysis("MaskSites");
    b.analysis("RunBEAST"); // reflexive: chains resumed until converged
    b.analysis("CheckESS");
    b.formatting("ThinTrees");
    b.analysis("MCCTree");
    b.analysis("Skyline");
    b.formatting("PlotFigures");
    b.analysis("Conclusions");
    b.from_input("HarvestGenbank")
        .from_input("CurateMetadata")
        .edge("HarvestGenbank", "AlignMAFFT")
        .edge("CurateMetadata", "AlignMAFFT")
        .edge("AlignMAFFT", "MaskSites")
        .edge("MaskSites", "RunBEAST")
        .edge("RunBEAST", "RunBEAST")
        .edge("RunBEAST", "CheckESS")
        .edge("CheckESS", "ThinTrees")
        .edge("ThinTrees", "MCCTree")
        .edge("ThinTrees", "Skyline")
        .edge("MCCTree", "PlotFigures")
        .edge("Skyline", "PlotFigures")
        .edge("PlotFigures", "Conclusions")
        .to_output("Conclusions");
    b.build().expect("valid spec")
}

/// A genome-annotation workflow with three parallel evidence tracks
/// (13 modules).
pub fn genome_annotation() -> WorkflowSpec {
    let mut b = SpecBuilder::new("genome-annotation");
    b.formatting("SoftMask");
    b.analysis("AbInitio");
    b.analysis("ProteinEvidence");
    b.analysis("RnaEvidence");
    b.formatting("FormatHints");
    b.analysis("CombineEVM");
    b.analysis("FilterModels");
    b.formatting("AssignIds");
    b.analysis("FunctionalBlast");
    b.formatting("GffCleanup");
    b.analysis("QualityBusco");
    b.formatting("Package");
    b.analysis("Submit");
    b.from_input("SoftMask")
        .edge("SoftMask", "AbInitio")
        .edge("SoftMask", "ProteinEvidence")
        .edge("SoftMask", "RnaEvidence")
        .edge("ProteinEvidence", "FormatHints")
        .edge("RnaEvidence", "FormatHints")
        .edge("AbInitio", "CombineEVM")
        .edge("FormatHints", "CombineEVM")
        .edge("CombineEVM", "FilterModels")
        .edge("FilterModels", "AssignIds")
        .edge("AssignIds", "FunctionalBlast")
        .edge("FunctionalBlast", "GffCleanup")
        .edge("GffCleanup", "QualityBusco")
        .edge("QualityBusco", "Package")
        .edge("Package", "Submit")
        .to_output("Submit");
    b.build().expect("valid spec")
}

/// A small imaging-segmentation workflow (7 modules, linear with one loop).
pub fn image_segmentation() -> WorkflowSpec {
    let mut b = SpecBuilder::new("image-segmentation");
    b.formatting("IngestTiff");
    b.analysis("Denoise");
    b.analysis("Segment");
    b.analysis("ReviewMasks"); // loops back to Segment
    b.analysis("MeasureObjects");
    b.formatting("ExportCSV");
    b.analysis("Classify");
    b.from_input("IngestTiff")
        .edge("IngestTiff", "Denoise")
        .edge("Denoise", "Segment")
        .edge("Segment", "ReviewMasks")
        .edge("ReviewMasks", "Segment")
        .edge("ReviewMasks", "MeasureObjects")
        .edge("MeasureObjects", "ExportCSV")
        .edge("ExportCSV", "Classify")
        .to_output("Classify");
    b.build().expect("valid spec")
}

/// A GWAS association workflow (12 modules).
pub fn gwas() -> WorkflowSpec {
    let mut b = SpecBuilder::new("gwas");
    b.formatting("MergePlates");
    b.analysis("CallGenotypes");
    b.analysis("QCSamples");
    b.analysis("QCVariants");
    b.formatting("PhasePrep");
    b.analysis("Impute");
    b.analysis("Associate");
    b.formatting("ClumpResults");
    b.analysis("FineMap");
    b.formatting("MakeManhattan");
    b.analysis("Replicate");
    b.analysis("ReportLoci");
    b.from_input("MergePlates")
        .edge("MergePlates", "CallGenotypes")
        .edge("CallGenotypes", "QCSamples")
        .edge("QCSamples", "QCVariants")
        .edge("QCVariants", "PhasePrep")
        .edge("PhasePrep", "Impute")
        .edge("Impute", "Associate")
        .edge("Associate", "ClumpResults")
        .edge("ClumpResults", "FineMap")
        .edge("ClumpResults", "MakeManhattan")
        .edge("FineMap", "Replicate")
        .edge("MakeManhattan", "ReportLoci")
        .edge("Replicate", "ReportLoci")
        .to_output("ReportLoci");
    b.build().expect("valid spec")
}

/// A tiny format-convert-and-check workflow (4 modules) — the collected
/// corpus also contained very small pipelines.
pub fn format_check() -> WorkflowSpec {
    let mut b = SpecBuilder::new("format-check");
    b.formatting("Convert");
    b.analysis("Validate");
    b.formatting("Compress");
    b.analysis("Archive");
    b.from_input("Convert")
        .edge("Convert", "Validate")
        .edge("Validate", "Compress")
        .edge("Compress", "Archive")
        .to_output("Archive");
    b.build().expect("valid spec")
}

/// The full Class-1 library (20 curated workflows, ≈ 11 modules average,
/// mostly linear, occasional loops and parallel sections — matching the
/// statistics the paper reports for its collected corpus of 30).
pub fn real_workflows() -> Vec<WorkflowSpec> {
    vec![
        phylogenomic(),
        blast_pipeline(),
        microarray(),
        proteomics(),
        variant_calling(),
        sequence_qc(),
        pathway_enrichment(),
        docking_screen(),
        metagenomics(),
        structure_prediction(),
        rnaseq(),
        chipseq(),
        ortholog_detection(),
        metabolomics(),
        single_cell(),
        phylodynamics(),
        genome_annotation(),
        image_segmentation(),
        gwas(),
        format_check(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{DataId, Producer, StepId};

    #[test]
    fn all_library_specs_are_valid_and_sized_right() {
        let lib = real_workflows();
        assert_eq!(lib.len(), 20);
        let total: usize = lib.iter().map(WorkflowSpec::module_count).sum();
        let avg = total as f64 / lib.len() as f64;
        assert!(
            (9.0..=14.0).contains(&avg),
            "average module count {avg} should be near the paper's 12"
        );
        // Unique names.
        let mut names: Vec<&str> = lib.iter().map(WorkflowSpec::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn figure2_run_matches_paper_facts() {
        let spec = phylogenomic();
        let run = figure2_run(&spec);
        assert_eq!(run.step_count(), 10);
        assert_eq!(run.data_count(), 447);
        // d1..d447 all present.
        assert_eq!(run.all_data().first(), Some(&DataId(1)));
        assert_eq!(run.all_data().last(), Some(&DataId(447)));
        assert_eq!(run.final_outputs(), vec![DataId(447)]);
        // Immediate provenance of d413 is S6 (an M4 instance) with {d412}.
        assert_eq!(
            run.producer_of(DataId(413)),
            Some(Producer::Step(StepId(6)))
        );
        assert_eq!(
            run.module_of(StepId(6)).unwrap(),
            spec.module("M4").unwrap()
        );
        assert_eq!(run.inputs_of(StepId(6)).unwrap(), vec![DataId(412)]);
        // S2 is an M3 instance with inputs {d308..d408}.
        assert_eq!(
            run.module_of(StepId(2)).unwrap(),
            spec.module("M3").unwrap()
        );
        let ins = run.inputs_of(StepId(2)).unwrap();
        assert_eq!(ins.len(), 101);
        assert_eq!(ins[0], DataId(308));
        assert_eq!(ins[100], DataId(408));
        // User inputs: d1..d100, d202..d206, d415..d445.
        let ui = run.user_inputs();
        assert_eq!(ui.len(), 100 + 5 + 31);
        assert!(run.user_input_meta(DataId(202)).is_some());
    }

    #[test]
    fn provenance_challenge_run_shape() {
        let spec = provenance_challenge();
        let run = provenance_challenge_run(&spec);
        assert_eq!(run.step_count(), 15); // 4 + 4 + 1 + 3 + 3
        assert_eq!(run.data_count(), 23);
        assert_eq!(run.user_inputs().len(), 8);
        assert_eq!(
            run.final_outputs(),
            vec![DataId(21), DataId(22), DataId(23)]
        );
        // Parallel instances of one module, no loop in the spec.
        let aligns = run
            .steps()
            .filter(|&(_, m)| m == spec.module("AlignWarp").unwrap())
            .count();
        assert_eq!(aligns, 4);
        assert!(zoom_graph::algo::topo::is_acyclic(spec.graph()));
        // The atlas mean d17 fans out to all three slicers.
        assert_eq!(run.producer_of(DataId(17)), Some(Producer::Step(StepId(9))));
    }

    #[test]
    fn every_library_spec_roundtrips_through_a_log() {
        // Sanity: the Figure 2 run survives run -> log -> run.
        let spec = phylogenomic();
        let run = figure2_run(&spec);
        let log = zoom_model::EventLog::from_run(&run, &spec);
        let back = log.to_run(&spec).unwrap();
        assert_eq!(back.step_count(), run.step_count());
        assert_eq!(back.all_data(), run.all_data());
        assert_eq!(back.final_outputs(), run.final_outputs());
    }
}
