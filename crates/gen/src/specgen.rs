//! Synthetic workflow-specification generator.
//!
//! Generates specifications by stitching patterns together according to a
//! class's frequency table (Table I), "combining patterns according to usage
//! statistics" as in Section V. The generator maintains a set of open branch
//! *tips*; each pattern extends, splits, seeds, or joins tips, and at the
//! end all open tips are wired to the output node, which guarantees the
//! well-formedness invariant (every node on an input→output path).

use crate::classes::{Pattern, WorkflowClass};
use rand::{Rng, RngExt};
use zoom_graph::NodeId;
use zoom_model::{ModuleKind, SpecBuilder, WorkflowSpec};

/// Configuration for [`generate_spec`].
#[derive(Clone, Debug)]
pub struct SpecGenConfig {
    /// Which class's pattern frequencies to use. [`WorkflowClass::Real`] is
    /// served from the curated library instead (see [`crate::workflows_of_class`]).
    pub class: WorkflowClass,
    /// Approximate number of modules to generate (the generator stops adding
    /// patterns once reached; patterns add 1–4 modules each).
    pub target_modules: usize,
    /// Probability that a generated module is a formatting module (the
    /// paper's motivation: scientific workflows are dominated by formatting
    /// tasks). UBio-style views flag the non-formatting modules.
    pub formatting_ratio: f64,
    /// Probability that a `Loop` pattern is reflexive (a self-loop) rather
    /// than a two-module cycle. The paper observed the sequence pattern "four
    /// times more than the reflexive loop".
    pub reflexive_loop_ratio: f64,
}

impl SpecGenConfig {
    /// The defaults used throughout the evaluation: ≈20 modules ("slightly
    /// larger than the 12 node average of the real workflows collected"),
    /// 60% formatting modules.
    pub fn new(class: WorkflowClass, target_modules: usize) -> Self {
        SpecGenConfig {
            class,
            target_modules,
            formatting_ratio: 0.6,
            reflexive_loop_ratio: 0.25,
        }
    }

    /// A uniform-pattern configuration for the scalability experiment's
    /// "randomized workflow specifications".
    pub fn random_mix(target_modules: usize) -> Self {
        // Implemented by sampling a synthetic class per pattern draw; see
        // `generate_spec`. We tag it Linear (the tag only matters for
        // pattern weights, which `uniform` bypasses).
        SpecGenConfig {
            class: WorkflowClass::Linear,
            target_modules,
            formatting_ratio: 0.6,
            reflexive_loop_ratio: 0.25,
        }
    }
}

/// Incremental generator state.
struct Gen<'a, R: Rng> {
    b: SpecBuilder,
    tips: Vec<NodeId>,
    count: usize,
    cfg: &'a SpecGenConfig,
    rng: &'a mut R,
}

impl<R: Rng> Gen<'_, R> {
    fn fresh_module(&mut self) -> NodeId {
        self.count += 1;
        let kind = if self.rng.random_bool(self.cfg.formatting_ratio) {
            ModuleKind::Formatting
        } else {
            ModuleKind::Analysis
        };
        self.b.module(format!("M{}", self.count), kind)
    }

    /// A random open tip index.
    fn tip_index(&mut self) -> usize {
        self.rng.random_range(0..self.tips.len())
    }

    fn apply(&mut self, p: Pattern) {
        match p {
            Pattern::Sequence => {
                let len = self.rng.random_range(1..=3usize);
                let ti = self.tip_index();
                let mut cur = self.tips[ti];
                for _ in 0..len {
                    let m = self.fresh_module();
                    self.b.connect(cur, m);
                    cur = m;
                }
                self.tips[ti] = cur;
            }
            Pattern::Loop => {
                let ti = self.tip_index();
                let cur = self.tips[ti];
                if self.rng.random_bool(self.cfg.reflexive_loop_ratio) {
                    // Reflexive loop: one module with a self edge.
                    let m = self.fresh_module();
                    self.b.connect(cur, m);
                    self.b.connect(m, m);
                    self.tips[ti] = m;
                } else {
                    // Two-module cycle a -> b -> a, continuing from b.
                    let a = self.fresh_module();
                    let bb = self.fresh_module();
                    self.b.connect(cur, a);
                    self.b.connect(a, bb);
                    self.b.connect(bb, a);
                    self.tips[ti] = bb;
                }
            }
            Pattern::ParallelProcess => {
                // AND-split one tip into 2-3 branches of 1-2 modules; leave
                // the branches open (a later Synchronization, or the final
                // output wiring, joins them).
                let ti = self.tip_index();
                let cur = self.tips.swap_remove(ti);
                let branches = self.rng.random_range(2..=3usize);
                for _ in 0..branches {
                    let len = self.rng.random_range(1..=2usize);
                    let mut head = cur;
                    for _ in 0..len {
                        let m = self.fresh_module();
                        self.b.connect(head, m);
                        head = m;
                    }
                    self.tips.push(head);
                }
            }
            Pattern::ParallelInput => {
                // A fresh source branch fed directly from the input node.
                let m = self.fresh_module();
                self.b.connect(NodeId::from_index(0), m);
                self.tips.push(m);
            }
            Pattern::Synchronization => {
                // AND-join 2-3 open tips into a new module.
                if self.tips.len() < 2 {
                    // Degenerate: fall back to a sequence step.
                    self.apply(Pattern::Sequence);
                    return;
                }
                let join = self.fresh_module();
                let take = self.rng.random_range(2..=self.tips.len().min(3));
                for _ in 0..take {
                    let ti = self.rng.random_range(0..self.tips.len());
                    let t = self.tips.swap_remove(ti);
                    self.b.connect(t, join);
                }
                self.tips.push(join);
            }
        }
    }
}

/// Draws a pattern according to the class's weights; `uniform` draws all
/// five patterns with equal probability instead.
fn draw_pattern<R: Rng>(class: WorkflowClass, uniform: bool, rng: &mut R) -> Pattern {
    if uniform {
        const ALL: [Pattern; 5] = [
            Pattern::Sequence,
            Pattern::Loop,
            Pattern::ParallelProcess,
            Pattern::ParallelInput,
            Pattern::Synchronization,
        ];
        return ALL[rng.random_range(0..ALL.len())];
    }
    let weights = class.pattern_weights();
    debug_assert!(!weights.is_empty(), "Real class is not generated");
    let total: u32 = weights.iter().map(|&(_, w)| w).sum();
    let mut x = rng.random_range(0..total);
    for &(p, w) in weights {
        if x < w {
            return p;
        }
        x -= w;
    }
    unreachable!("weights exhausted")
}

/// Generates a synthetic workflow specification named `name`.
///
/// ```
/// use zoom_gen::{generate_spec, SpecGenConfig, WorkflowClass};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let spec = generate_spec(
///     "doc",
///     &SpecGenConfig::new(WorkflowClass::Loop, 20),
///     &mut rng,
/// );
/// assert!(spec.module_count() >= 20);
/// ```
///
/// # Panics
/// Panics if `cfg.class` is [`WorkflowClass::Real`] (real workflows come
/// from [`crate::library`]) or `cfg.target_modules == 0`.
pub fn generate_spec<R: Rng>(name: &str, cfg: &SpecGenConfig, rng: &mut R) -> WorkflowSpec {
    generate_spec_inner(name, cfg, false, rng)
}

/// Generates a specification drawing all five patterns uniformly — the
/// "randomized workflow specifications" of the scalability experiment.
pub fn generate_random_spec<R: Rng>(
    name: &str,
    target_modules: usize,
    rng: &mut R,
) -> WorkflowSpec {
    let cfg = SpecGenConfig::random_mix(target_modules);
    generate_spec_inner(name, &cfg, true, rng)
}

fn generate_spec_inner<R: Rng>(
    name: &str,
    cfg: &SpecGenConfig,
    uniform: bool,
    rng: &mut R,
) -> WorkflowSpec {
    assert!(cfg.target_modules > 0, "target_modules must be positive");
    assert_ne!(
        cfg.class,
        WorkflowClass::Real,
        "Class 1 workflows come from the curated library"
    );
    let mut g = Gen {
        b: SpecBuilder::new(name),
        tips: Vec::new(),
        count: 0,
        cfg,
        rng,
    };
    // Seed: one module from input.
    let first = g.fresh_module();
    g.b.connect(NodeId::from_index(0), first);
    g.tips.push(first);

    while g.count < cfg.target_modules {
        let p = draw_pattern(cfg.class, uniform, g.rng);
        g.apply(p);
    }

    // Close every open tip onto the output node.
    let tips = std::mem::take(&mut g.tips);
    for t in tips {
        g.b.connect(t, NodeId::from_index(1));
    }
    g.b.build().expect("generator maintains well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zoom_graph::algo::cycles::back_edges;

    #[test]
    fn generated_specs_are_valid_for_all_classes_and_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for class in [
            WorkflowClass::Linear,
            WorkflowClass::Parallel,
            WorkflowClass::Loop,
        ] {
            for target in [1usize, 5, 20, 100] {
                let cfg = SpecGenConfig::new(class, target);
                let s = generate_spec("t", &cfg, &mut rng);
                assert!(s.module_count() >= target);
                assert!(s.module_count() <= target + 6); // patterns add ≤ ~6
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SpecGenConfig::new(WorkflowClass::Parallel, 25);
        let a = generate_spec("x", &cfg, &mut StdRng::seed_from_u64(42));
        let b = generate_spec("x", &cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.module_count(), b.module_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let ea: Vec<_> = a.graph().edges().map(|(_, s, t, _)| (s, t)).collect();
        let eb: Vec<_> = b.graph().edges().map(|(_, s, t, _)| (s, t)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn loop_class_has_more_loops_than_linear_class() {
        let mut rng = StdRng::seed_from_u64(11);
        let count_loops = |class: WorkflowClass, rng: &mut StdRng| -> usize {
            (0..20)
                .map(|_| {
                    let s = generate_spec("t", &SpecGenConfig::new(class, 20), rng);
                    back_edges(s.graph()).len()
                })
                .sum()
        };
        let loops_linear = count_loops(WorkflowClass::Linear, &mut rng);
        let loops_loopy = count_loops(WorkflowClass::Loop, &mut rng);
        assert!(
            loops_loopy > loops_linear * 2,
            "loop class should be loop-heavy: {loops_loopy} vs {loops_linear}"
        );
    }

    #[test]
    fn parallel_class_has_splits() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = generate_spec(
            "p",
            &SpecGenConfig::new(WorkflowClass::Parallel, 40),
            &mut rng,
        );
        let splits = s
            .module_ids()
            .filter(|&m| s.graph().out_degree(m) > 1)
            .count();
        assert!(splits > 0);
    }

    #[test]
    fn random_mix_generates_valid_specs() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [3usize, 10, 50, 200] {
            let s = generate_random_spec("r", n, &mut rng);
            assert!(s.module_count() >= n);
        }
    }

    #[test]
    fn formatting_ratio_respected_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cfg = SpecGenConfig::new(WorkflowClass::Linear, 200);
        cfg.formatting_ratio = 0.8;
        let s = generate_spec("f", &cfg, &mut rng);
        let fmt = s
            .module_ids()
            .filter(|&m| s.kind(m) == ModuleKind::Formatting)
            .count();
        let ratio = fmt as f64 / s.module_count() as f64;
        assert!((0.65..=0.95).contains(&ratio), "ratio {ratio}");
    }
}
