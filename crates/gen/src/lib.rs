#![warn(missing_docs)]

//! # zoom-gen
//!
//! Workload generation for the ZOOM*UserViews evaluation (Section V):
//!
//! * [`classes`] — the five workflow patterns and the four workflow classes
//!   of Table I with their pattern frequencies;
//! * [`specgen`] — the synthetic workflow-specification generator ("we
//!   generated simulated workflows by combining patterns according to usage
//!   statistics");
//! * [`rungen`] — the run generator with Table II's small/medium/large
//!   parameter presets (user input, data per step, loop iterations, size
//!   caps), including faithful loop unrolling;
//! * [`library`] — the curated "Class 1" library of realistic workflows,
//!   headlined by the paper's Figure 1 phylogenomic workflow and its exact
//!   Figure 2 run (`S1..S10`, `d1..d447`);
//! * [`stats`] — pattern/size statistics extraction over specs and runs;
//! * [`adversarial`] — deterministic extreme shapes (deep chains, wide
//!   fan-outs, diamond lattices) for the reachability-index scaling sweep;
//! * [`streamlog`] — causally valid random interleavings of a run's event
//!   log, the arrival orders the streaming-ingestion tests replay.

pub mod adversarial;
pub mod classes;
pub mod library;
pub mod rungen;
pub mod specgen;
pub mod stats;
pub mod streamlog;

pub use adversarial::{deep_chain, diamond_lattice, wide_fanout};
pub use classes::{Pattern, ViewScenario, WorkflowClass};
pub use rungen::{generate_run, RunGenConfig, RunKind};
pub use specgen::{generate_random_spec, generate_spec, SpecGenConfig};
pub use stats::{
    infer_loop_iterations, infer_patterns, run_stats, spec_stats, PatternCounts, RunStats,
    SpecStats, Summary,
};
pub use streamlog::interleaved_log;

use rand::Rng;
use zoom_model::WorkflowSpec;

/// Returns `count` workflows of the given class: Class 1 cycles through the
/// curated library; synthetic classes are generated at `target_modules`.
pub fn workflows_of_class<R: Rng>(
    class: WorkflowClass,
    count: usize,
    target_modules: usize,
    rng: &mut R,
) -> Vec<WorkflowSpec> {
    match class {
        WorkflowClass::Real => {
            let lib = library::real_workflows();
            (0..count).map(|i| lib[i % lib.len()].clone()).collect()
        }
        _ => (0..count)
            .map(|i| {
                generate_spec(
                    &format!("{}-{}", class.label(), i + 1),
                    &SpecGenConfig::new(class, target_modules),
                    rng,
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workflows_of_class_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in WorkflowClass::ALL {
            let ws = workflows_of_class(class, 12, 20, &mut rng);
            assert_eq!(ws.len(), 12);
        }
    }
}
