//! Workflow patterns and classes (Table I).
//!
//! The paper extracts patterns (sequence, loop, parallel process, parallel
//! input, synchronization — from the Workflow Patterns initiative) and their
//! usage frequencies from 30 collected workflows, then generates synthetic
//! workflows per class:
//!
//! | Class | Pattern frequencies |
//! |---|---|
//! | 1 (Real)     | the collected corpus (our curated library) |
//! | 2 (Linear)   | sequence 80%, loop 10%, parallel process 10% |
//! | 3 (Parallel) | parallel process 20%, parallel input 10%, synchronization 20%, sequence 50% |
//! | 4 (Loop)     | loop 50%, sequence 50% |

use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural workflow pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// A chain of modules.
    Sequence,
    /// A loop (back edge), occasionally reflexive (self-loop).
    Loop,
    /// An AND-split into parallel branches.
    ParallelProcess,
    /// An additional independent input branch.
    ParallelInput,
    /// An AND-join of open branches.
    Synchronization,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pattern::Sequence => "sequence",
            Pattern::Loop => "loop",
            Pattern::ParallelProcess => "parallel-process",
            Pattern::ParallelInput => "parallel-input",
            Pattern::Synchronization => "synchronization",
        };
        write!(f, "{s}")
    }
}

/// The four workflow classes of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkflowClass {
    /// Class 1: real collected workflows (the curated library).
    Real,
    /// Class 2: predominantly linear synthetic workflows.
    Linear,
    /// Class 3: parallel-heavy synthetic workflows.
    Parallel,
    /// Class 4: loop-heavy synthetic workflows.
    Loop,
}

impl WorkflowClass {
    /// All four classes, in Table I order.
    pub const ALL: [WorkflowClass; 4] = [
        WorkflowClass::Real,
        WorkflowClass::Linear,
        WorkflowClass::Parallel,
        WorkflowClass::Loop,
    ];

    /// The class's pattern frequencies in percent (Table I). `Real` has no
    /// generator weights — its workflows come from the library.
    pub fn pattern_weights(self) -> &'static [(Pattern, u32)] {
        match self {
            WorkflowClass::Real => &[],
            WorkflowClass::Linear => &[
                (Pattern::Sequence, 80),
                (Pattern::Loop, 10),
                (Pattern::ParallelProcess, 10),
            ],
            WorkflowClass::Parallel => &[
                (Pattern::ParallelProcess, 20),
                (Pattern::ParallelInput, 10),
                (Pattern::Synchronization, 20),
                (Pattern::Sequence, 50),
            ],
            WorkflowClass::Loop => &[(Pattern::Loop, 50), (Pattern::Sequence, 50)],
        }
    }

    /// Table I row label.
    pub fn label(self) -> &'static str {
        match self {
            WorkflowClass::Real => "Class1 (Real)",
            WorkflowClass::Linear => "Class2 (Linear)",
            WorkflowClass::Parallel => "Class3 (Parallel)",
            WorkflowClass::Loop => "Class4 (Loop)",
        }
    }
}

impl fmt::Display for WorkflowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The view families the evaluation exercises per workflow (Section V-A),
/// plus the privacy scenario of DESIGN.md §16.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewScenario {
    /// Every module relevant — the finest view (full provenance).
    UAdmin,
    /// The analysis (non-formatting) modules relevant, composed by the
    /// view-building algorithm.
    UBio,
    /// Nothing relevant — the whole workflow as one composite.
    UBlackBox,
    /// The coarsest view concealing a protected module: inverted-relevance
    /// construction, so no query at this view can single the module out.
    UPrivate,
}

impl ViewScenario {
    /// All four scenarios, evaluation order.
    pub const ALL: [ViewScenario; 4] = [
        ViewScenario::UAdmin,
        ViewScenario::UBio,
        ViewScenario::UBlackBox,
        ViewScenario::UPrivate,
    ];

    /// Row label used by the experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ViewScenario::UAdmin => "UAdmin",
            ViewScenario::UBio => "UBio",
            ViewScenario::UBlackBox => "UBlackBox",
            ViewScenario::UPrivate => "UPrivate",
        }
    }

    /// How the scenario's relevant set is chosen.
    pub fn relevance(self) -> &'static str {
        match self {
            ViewScenario::UAdmin => "all modules",
            ViewScenario::UBio => "analysis modules",
            ViewScenario::UBlackBox => "no modules",
            ViewScenario::UPrivate => "all but the concealed module (inverted)",
        }
    }
}

impl fmt::Display for ViewScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_100_for_synthetic_classes() {
        for c in [
            WorkflowClass::Linear,
            WorkflowClass::Parallel,
            WorkflowClass::Loop,
        ] {
            let sum: u32 = c.pattern_weights().iter().map(|&(_, w)| w).sum();
            assert_eq!(sum, 100, "{c}");
        }
        assert!(WorkflowClass::Real.pattern_weights().is_empty());
    }

    #[test]
    fn labels_match_table_one() {
        assert_eq!(WorkflowClass::Loop.label(), "Class4 (Loop)");
        assert_eq!(WorkflowClass::ALL.len(), 4);
    }

    #[test]
    fn view_scenarios_cover_the_privacy_family() {
        assert_eq!(ViewScenario::ALL.len(), 4);
        assert_eq!(ViewScenario::UPrivate.label(), "UPrivate");
        assert!(ViewScenario::UPrivate.relevance().contains("inverted"));
    }
}
