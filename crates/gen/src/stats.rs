//! Statistics extraction over specifications and runs — the analysis side
//! of Section V's methodology ("we extracted patterns of workflows … and
//! inferred statistics on their usage").

use serde::{Deserialize, Serialize};
use zoom_graph::algo::cycles::back_edges;
use zoom_model::{ModuleKind, WorkflowRun, WorkflowSpec};

/// Structural statistics of a workflow specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Number of modules.
    pub modules: usize,
    /// Number of edges (including input/output edges).
    pub edges: usize,
    /// Number of loop (back) edges.
    pub loops: usize,
    /// Number of AND-split modules (out-degree > 1, ignoring edges to output).
    pub splits: usize,
    /// Number of join modules (in-degree > 1, ignoring edges from input).
    pub joins: usize,
    /// Number of modules fed directly by the input node.
    pub sources: usize,
    /// Number of formatting modules.
    pub formatting: usize,
    /// `true` if the workflow is a pure chain (no splits, joins, or loops).
    pub is_linear: bool,
}

/// Computes [`SpecStats`] for a specification.
pub fn spec_stats(spec: &WorkflowSpec) -> SpecStats {
    let g = spec.graph();
    let loops = back_edges(g).len();
    let mut splits = 0;
    let mut joins = 0;
    let mut formatting = 0;
    for m in spec.module_ids() {
        let out = g.successors(m).filter(|&t| t != spec.output()).count();
        let inn = g.predecessors(m).filter(|&p| p != spec.input()).count();
        if out > 1 {
            splits += 1;
        }
        if inn > 1 {
            joins += 1;
        }
        if spec.kind(m) == ModuleKind::Formatting {
            formatting += 1;
        }
    }
    let sources = g.successors(spec.input()).count();
    SpecStats {
        modules: spec.module_count(),
        edges: g.edge_count(),
        loops,
        splits,
        joins,
        sources,
        formatting,
        is_linear: loops == 0 && splits == 0 && joins == 0 && sources == 1,
    }
}

/// Detected pattern instances in a specification — the inference direction
/// of the paper's methodology: "we extracted patterns of workflows (e.g.,
/// sequence, loop) and inferred statistics on their usage (e.g. the
/// sequence pattern is used four times more than the reflexive loop)".
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternCounts {
    /// Maximal chains of pass-through modules (in-degree = out-degree = 1),
    /// weighted by length — the "sequence" instances.
    pub sequences: usize,
    /// Two-or-more-module cycles (non-reflexive loops).
    pub loops: usize,
    /// Reflexive loops (self-edges).
    pub reflexive_loops: usize,
    /// AND-splits (modules with ≥ 2 module successors).
    pub parallel_splits: usize,
    /// Additional independent input branches beyond the first (modules fed
    /// directly by the input node).
    pub parallel_inputs: usize,
    /// Synchronization joins (modules with ≥ 2 module predecessors).
    pub synchronizations: usize,
}

impl PatternCounts {
    /// Total detected pattern instances.
    pub fn total(&self) -> usize {
        self.sequences
            + self.loops
            + self.reflexive_loops
            + self.parallel_splits
            + self.parallel_inputs
            + self.synchronizations
    }

    /// The frequency (0..=1) of each pattern family, in the order
    /// `[sequence, loop (incl. reflexive), parallel-split, parallel-input,
    /// synchronization]`. Zero total yields zeros.
    pub fn frequencies(&self) -> [f64; 5] {
        let t = self.total() as f64;
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.sequences as f64 / t,
            (self.loops + self.reflexive_loops) as f64 / t,
            self.parallel_splits as f64 / t,
            self.parallel_inputs as f64 / t,
            self.synchronizations as f64 / t,
        ]
    }
}

/// Detects pattern instances in a specification by structure.
pub fn infer_patterns(spec: &WorkflowSpec) -> PatternCounts {
    let g = spec.graph();
    let mut c = PatternCounts::default();

    // Loops: classify back edges by self vs non-self.
    for e in zoom_graph::algo::cycles::back_edges(g) {
        let (s, t) = g.endpoints(e);
        if s == t {
            c.reflexive_loops += 1;
        } else {
            c.loops += 1;
        }
    }

    let module_degree = |m, outgoing: bool| -> usize {
        if outgoing {
            g.successors(m)
                .filter(|&t| t != spec.output() && t != m)
                .count()
        } else {
            g.predecessors(m)
                .filter(|&p| p != spec.input() && p != m)
                .count()
        }
    };
    for m in spec.module_ids() {
        let (ind, outd) = (module_degree(m, false), module_degree(m, true));
        if outd >= 2 {
            c.parallel_splits += 1;
        }
        if ind >= 2 {
            c.synchronizations += 1;
        }
        // Pass-through modules form sequence segments; count the modules
        // (pattern instances roughly track chain length, as the generator's
        // Sequence pattern adds 1-3 modules per draw).
        if ind <= 1 && outd <= 1 {
            c.sequences += 1;
        }
    }
    // Independent input branches beyond the first.
    c.parallel_inputs = g.successors(spec.input()).count().saturating_sub(1);
    c
}

/// Size statistics of a workflow run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of steps.
    pub steps: usize,
    /// Number of run-graph edges.
    pub edges: usize,
    /// Number of distinct data objects.
    pub data_objects: usize,
    /// Number of user-input objects.
    pub user_inputs: usize,
    /// Number of final outputs.
    pub final_outputs: usize,
}

/// Computes [`RunStats`] for a run.
pub fn run_stats(run: &WorkflowRun) -> RunStats {
    RunStats {
        steps: run.step_count(),
        edges: run.graph().edge_count(),
        data_objects: run.data_count(),
        user_inputs: run.user_inputs().len(),
        final_outputs: run.final_outputs().len(),
    }
}

/// Infers the loop-iteration counts of a run: for each module executed more
/// than once, its execution count ("statistics on runs, such as the average
/// number of loop iterations, were also inferred"). Returns `(module,
/// executions)` pairs sorted by module, only for modules with ≥ 2 steps.
pub fn infer_loop_iterations(run: &WorkflowRun) -> Vec<(zoom_graph::NodeId, usize)> {
    let mut counts: std::collections::BTreeMap<zoom_graph::NodeId, usize> =
        std::collections::BTreeMap::new();
    for (_, m) in run.steps() {
        *counts.entry(m).or_insert(0) += 1;
    }
    counts.into_iter().filter(|&(_, n)| n >= 2).collect()
}

/// Aggregates a sequence of f64 samples (for the experiment harness).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples` (empty input yields zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{figure2_run, phylogenomic};

    #[test]
    fn phylogenomic_stats() {
        let s = phylogenomic();
        let st = spec_stats(&s);
        assert_eq!(st.modules, 8);
        assert_eq!(st.loops, 1); // the M3/M5 alignment loop
        assert!(st.splits >= 2); // M1 and M4 fan out
        assert!(st.joins >= 1); // M7 joins three inputs
        assert_eq!(st.sources, 3); // M1, M2, M6
        assert_eq!(st.formatting, 4); // M1, M4, M6, M8
        assert!(!st.is_linear);
    }

    #[test]
    fn linear_detection() {
        let s = crate::library::sequence_qc();
        let st = spec_stats(&s);
        assert!(st.is_linear);
        assert_eq!(st.loops, 0);
    }

    #[test]
    fn figure2_run_stats() {
        let s = phylogenomic();
        let r = figure2_run(&s);
        let st = run_stats(&r);
        assert_eq!(st.steps, 10);
        assert_eq!(st.data_objects, 447);
        assert_eq!(st.user_inputs, 136);
        assert_eq!(st.final_outputs, 1);
    }

    #[test]
    fn pattern_inference_on_phylogenomic() {
        let s = phylogenomic();
        let p = infer_patterns(&s);
        assert_eq!(p.loops, 1, "the M3/M5 alignment loop");
        assert_eq!(p.reflexive_loops, 0);
        assert!(p.parallel_splits >= 2, "M1 and M4 fan out");
        assert!(p.synchronizations >= 1, "M7 joins");
        assert_eq!(p.parallel_inputs, 2, "M2 and M6 beyond M1");
        assert!(p.sequences >= 1);
        let f = p.frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inferred_frequencies_reflect_generator_class() {
        use crate::specgen::{generate_spec, SpecGenConfig};
        use crate::WorkflowClass;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let mut agg = |class: WorkflowClass| {
            let mut freq = [0.0f64; 5];
            for _ in 0..20 {
                let s = generate_spec("t", &SpecGenConfig::new(class, 30), &mut rng);
                let f = infer_patterns(&s).frequencies();
                for (a, b) in freq.iter_mut().zip(f) {
                    *a += b / 20.0;
                }
            }
            freq
        };
        let linear = agg(WorkflowClass::Linear);
        let loopy = agg(WorkflowClass::Loop);
        // Loop-class specs show markedly more loop instances.
        assert!(loopy[1] > linear[1] * 2.0, "{loopy:?} vs {linear:?}");
        // Linear-class specs are sequence-dominated.
        assert!(linear[0] > 0.5, "{linear:?}");
    }

    #[test]
    fn loop_iteration_inference() {
        let s = phylogenomic();
        let r = figure2_run(&s);
        let iters = infer_loop_iterations(&r);
        // M3 and M4 each executed twice; everything else once.
        assert_eq!(iters.len(), 2);
        assert!(iters.iter().all(|&(_, n)| n == 2));
        let labels: Vec<&str> = iters.iter().map(|&(m, _)| s.label(m)).collect();
        assert_eq!(labels, vec!["M3", "M4"]);
    }

    #[test]
    fn summary_math() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(Summary::of(&[]).n, 0);
    }
}
