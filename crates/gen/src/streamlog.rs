//! Interleaved event-log generation for the streaming-ingestion tests.
//!
//! [`zoom_model::EventLog::from_run`] emits each step's events as one
//! contiguous block in a fixed topological order — the friendliest possible
//! arrival order for an ingestor. Real workflow engines run steps
//! concurrently, so their logs interleave: a step can start long before its
//! inputs exist, reads trickle in as upstream writes land, and independent
//! branches race. [`interleaved_log`] synthesizes such a log from a run:
//! every causally valid shuffle of the per-step event sequences, chosen
//! uniformly-ish by the supplied rng, with monotonically increasing
//! re-stamped timestamps. The result reconstructs the *same* run, which is
//! exactly what the differential streaming tests need: stream the shuffle,
//! batch-load the original, demand identical answers.

use rand::{RngCore, RngExt};
use zoom_model::{DataId, EventLog, LogEvent, Timestamp, WorkflowRun, WorkflowSpec};

use std::collections::HashSet;

/// Synthesizes a causally valid but randomly interleaved event log for
/// `run`.
///
/// Ordering guarantees (and nothing more):
///
/// * `UserInput` events come first — the engine's operator staged the
///   inputs before launching the run;
/// * within one step, events keep their natural order (`StepStarted`,
///   `Param`s, `Read`s, `Wrote`s, `StepFinished`);
/// * a `Read` is emitted only after its datum exists (a user input, or its
///   `Wrote` already emitted);
/// * `Finalized` events come last, after every step finished;
/// * timestamps strictly increase across the whole log.
///
/// Across steps the order is random: a downstream step may start (and read
/// partially) while its upstream producers are still mid-flight. Feeding
/// the same `rng` state reproduces the same interleaving.
pub fn interleaved_log<R: RngCore>(
    spec: &WorkflowSpec,
    run: &WorkflowRun,
    rng: &mut R,
) -> EventLog {
    // The block log already enumerates every event we need, grouped per
    // step; re-derive the groups rather than re-walking the run.
    let block = EventLog::from_run(run, spec);

    let mut events = Vec::with_capacity(block.len());
    let mut clock = Timestamp(0);
    let mut tick = || {
        clock = clock.tick();
        clock
    };
    let restamp = |ev: &LogEvent, t: Timestamp| -> LogEvent {
        let mut ev = ev.clone();
        match &mut ev {
            LogEvent::UserInput { time, .. }
            | LogEvent::Param { time, .. }
            | LogEvent::StepStarted { time, .. }
            | LogEvent::Read { time, .. }
            | LogEvent::Wrote { time, .. }
            | LogEvent::StepFinished { time, .. }
            | LogEvent::Finalized { time, .. } => *time = t,
        }
        ev
    };

    // Partition: user inputs up front, finals at the back, and one ordered
    // queue per step in between.
    let mut queues: Vec<Vec<LogEvent>> = Vec::new();
    let mut finals: Vec<LogEvent> = Vec::new();
    let mut available: HashSet<DataId> = HashSet::new();
    for ev in &block.events {
        match ev {
            LogEvent::UserInput { data, .. } => {
                available.insert(*data);
                let t = tick();
                events.push(restamp(ev, t));
            }
            LogEvent::Finalized { .. } => finals.push(ev.clone()),
            LogEvent::StepStarted { .. } => queues.push(vec![ev.clone()]),
            _ => queues
                .last_mut()
                .expect("from_run emits StepStarted before other step events")
                .push(ev.clone()),
        }
    }
    // Consume each queue front-to-back; reverse so `pop` is the front.
    for q in &mut queues {
        q.reverse();
    }

    // Repeatedly emit the head of a random unblocked queue. A head is
    // blocked only when it is a Read of data not yet written; since the
    // run is an acyclic dataflow, some queue is always unblocked until all
    // are drained.
    while queues.iter().any(|q| !q.is_empty()) {
        let ready: Vec<usize> = queues
            .iter()
            .enumerate()
            .filter(|(_, q)| match q.last() {
                Some(LogEvent::Read { data, .. }) => available.contains(data),
                Some(_) => true,
                None => false,
            })
            .map(|(i, _)| i)
            .collect();
        assert!(
            !ready.is_empty(),
            "interleaving deadlocked — the run was not a valid dataflow"
        );
        let pick = ready[rng.random_range(0..ready.len())];
        let ev = queues[pick].pop().expect("ready queues are non-empty");
        if let LogEvent::Wrote { data, .. } = &ev {
            available.insert(*data);
        }
        let t = tick();
        events.push(restamp(&ev, t));
    }

    for ev in &finals {
        let t = tick();
        events.push(restamp(ev, t));
    }

    EventLog {
        spec_name: block.spec_name,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{figure2_run, phylogenomic};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    /// Event identity modulo timestamp, for multiset comparison.
    fn key(ev: &LogEvent) -> String {
        match ev {
            LogEvent::UserInput { data, user, .. } => format!("u:{data}:{user}"),
            LogEvent::Param {
                step, key, value, ..
            } => format!("p:{step}:{key}:{value}"),
            LogEvent::StepStarted { step, module, .. } => format!("s:{step}:{module}"),
            LogEvent::Read { step, data, .. } => format!("r:{step}:{data}"),
            LogEvent::Wrote { step, data, .. } => format!("w:{step}:{data}"),
            LogEvent::StepFinished { step, .. } => format!("f:{step}"),
            LogEvent::Finalized { data, .. } => format!("z:{data}"),
        }
    }

    #[test]
    fn same_events_new_order_same_run() {
        let spec = phylogenomic();
        let run = figure2_run(&spec);
        let block = EventLog::from_run(&run, &spec);
        let mut rng = StdRng::seed_from_u64(7);
        let shuffled = interleaved_log(&spec, &run, &mut rng);

        // Same multiset of events...
        let count = |log: &EventLog| {
            let mut m: BTreeMap<String, usize> = BTreeMap::new();
            for ev in &log.events {
                *m.entry(key(ev)).or_default() += 1;
            }
            m
        };
        assert_eq!(count(&block), count(&shuffled));

        // ...in a genuinely different order (447 data objects leave
        // astronomically many valid interleavings)...
        assert_ne!(
            block.events.iter().map(key).collect::<Vec<_>>(),
            shuffled.events.iter().map(key).collect::<Vec<_>>()
        );

        // ...with strictly increasing times...
        for w in shuffled.events.windows(2) {
            assert!(w[0].time() < w[1].time());
        }

        // ...that reconstructs the same run.
        let r2 = shuffled.to_run(&spec).unwrap();
        assert_eq!(r2.step_count(), run.step_count());
        assert_eq!(r2.all_data(), run.all_data());
        assert_eq!(r2.final_outputs(), run.final_outputs());
        for (sid, m) in run.steps() {
            assert_eq!(r2.module_of(sid).unwrap(), m);
            assert_eq!(r2.inputs_of(sid).unwrap(), run.inputs_of(sid).unwrap());
            assert_eq!(r2.outputs_of(sid).unwrap(), run.outputs_of(sid).unwrap());
        }
    }

    #[test]
    fn reads_never_precede_their_writes() {
        let spec = phylogenomic();
        let run = figure2_run(&spec);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let log = interleaved_log(&spec, &run, &mut rng);
            let mut written: HashSet<DataId> = HashSet::new();
            let mut finished = 0usize;
            for (i, ev) in log.events.iter().enumerate() {
                match ev {
                    LogEvent::UserInput { data, .. } | LogEvent::Wrote { data, .. } => {
                        written.insert(*data);
                    }
                    LogEvent::Read { data, .. } => {
                        assert!(
                            written.contains(data),
                            "seed {seed}: read before write at {i}"
                        );
                    }
                    LogEvent::StepFinished { .. } => finished += 1,
                    LogEvent::Finalized { .. } => {
                        assert_eq!(finished, run.step_count(), "seed {seed}: early final");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let spec = phylogenomic();
        let run = figure2_run(&spec);
        let log_for = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            interleaved_log(&spec, &run, &mut rng)
        };
        assert_eq!(log_for(3), log_for(3));
        assert_ne!(log_for(3), log_for(4));
    }
}
