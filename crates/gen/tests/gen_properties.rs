//! Property-based tests of the workload generators: everything generated
//! must satisfy the model's structural invariants (checked with the
//! `validate()` re-validators, an independent code path from the builders),
//! and the Table II knobs must actually steer the output.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom_gen::{
    generate_random_spec, generate_run, generate_spec, infer_loop_iterations, spec_stats,
    RunGenConfig, SpecGenConfig, WorkflowClass,
};

fn class_of(tag: u8) -> WorkflowClass {
    match tag % 3 {
        0 => WorkflowClass::Linear,
        1 => WorkflowClass::Parallel,
        _ => WorkflowClass::Loop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated specification passes the independent re-validator.
    #[test]
    fn generated_specs_validate(seed in any::<u64>(), tag in any::<u8>(), n in 1usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_spec("p", &SpecGenConfig::new(class_of(tag), n), &mut rng);
        prop_assert!(spec.validate().is_ok());
        let spec = generate_random_spec("q", n, &mut rng);
        prop_assert!(spec.validate().is_ok());
    }

    /// Every generated run passes the independent re-validator against its
    /// spec, respects the node cap, and its loop iterations stay within the
    /// configured range.
    #[test]
    fn generated_runs_validate_and_respect_knobs(
        seed in any::<u64>(),
        tag in any::<u8>(),
        n in 2usize..25,
        iters in (1u32..12).prop_flat_map(|lo| (Just(lo), lo..=lo + 8)),
        per_step in (1u32..6).prop_flat_map(|lo| (Just(lo), lo..=lo + 6)),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_spec("p", &SpecGenConfig::new(class_of(tag), n), &mut rng);
        let cfg = RunGenConfig {
            user_input: (1, 40),
            data_per_step: per_step,
            loop_iterations: iters,
            max_nodes: 600,
            max_edges: 600,
        };
        let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
        prop_assert!(run.validate(&spec).is_ok());
        prop_assert!(run.graph().node_count() <= cfg.max_nodes);
        // Every step runs; iterations bounded by the knob (body nodes can
        // run one fewer when skipped in the final iteration).
        for (_, count) in infer_loop_iterations(&run) {
            prop_assert!(count <= iters.1 as usize, "{count} > {}", iters.1);
        }
        // Data volume scales with the per-step knob: at least one object
        // per producing step, at most the cap per step.
        let producing_steps = run
            .steps()
            .filter(|&(s, _)| !run.outputs_of(s).expect("step").is_empty())
            .count();
        prop_assert!(run.data_count() >= producing_steps);
    }

    /// Spec statistics agree with direct graph measurements.
    #[test]
    fn spec_stats_consistency(seed in any::<u64>(), tag in any::<u8>(), n in 2usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_spec("p", &SpecGenConfig::new(class_of(tag), n), &mut rng);
        let st = spec_stats(&spec);
        prop_assert_eq!(st.modules, spec.module_count());
        prop_assert_eq!(st.edges, spec.graph().edge_count());
        prop_assert_eq!(
            st.loops,
            zoom_graph::algo::cycles::back_edges(spec.graph()).len()
        );
        prop_assert_eq!(st.sources, spec.graph().successors(spec.input()).count());
        if st.is_linear {
            prop_assert_eq!(st.loops, 0);
            prop_assert_eq!(st.splits + st.joins, 0);
        }
    }

    /// The loop class produces cyclic specs much more often than the
    /// parallel class (which has no loop pattern at all).
    #[test]
    fn class_character_is_stable(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = generate_spec(
            "p",
            &SpecGenConfig::new(WorkflowClass::Parallel, 30),
            &mut rng,
        );
        prop_assert!(zoom_graph::algo::topo::is_acyclic(s.graph()));
    }
}
