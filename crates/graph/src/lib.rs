#![warn(missing_docs)]

//! # zoom-graph
//!
//! Directed-graph substrate for the ZOOM*UserViews workspace — a Rust
//! reproduction of *"Querying and Managing Provenance through User Views in
//! Scientific Workflows"* (Biton, Cohen-Boulakia, Davidson, Hara; ICDE 2008).
//!
//! Everything in the paper is a graph: workflow specifications are directed
//! graphs (possibly cyclic), workflow runs are DAGs, user views induce new
//! graphs, and provenance answers are sub-DAGs. This crate provides the
//! shared machinery:
//!
//! * [`Digraph`] — an arena-based directed multigraph with stable dense ids;
//! * [`bitset::BitSet`] — a dense bit set used for all reachability work;
//! * [`traversal`] — BFS/DFS, plus the *constrained* reachability primitive
//!   behind the paper's nr-paths;
//! * [`algo::topo`] — topological sorting / acyclicity (run validation);
//! * [`algo::scc`] — Tarjan SCC + condensation (loop detection, closure);
//! * [`algo::reach`] — transitive closure (provenance and view properties);
//! * [`algo::paths`] — "every node on an input→output path" well-formedness,
//!   simple-path enumeration;
//! * [`algo::cycles`] — back edges and elementary cycles (loop unrolling);
//! * [`labels`] — interval sets + spanning-forest post-order, the raw
//!   material of the warehouse's tree-cover reachability labels;
//! * [`dot`] — GraphViz rendering.
//!
//! The crate is dependency-free apart from `serde` (graphs are persisted in
//! the provenance warehouse's snapshots).

pub mod bitset;
pub mod digraph;
pub mod dot;
pub mod labels;
pub mod traversal;

pub mod algo {
    //! Graph algorithms.
    pub mod cycles;
    pub mod paths;
    pub mod reach;
    pub mod scc;
    pub mod topo;
}

pub use bitset::BitSet;
pub use digraph::{Digraph, EdgeId, NodeId};
pub use labels::{spanning_forest_postorder, IntervalSet, PostOrder};
pub use traversal::{constrained_reachable_set, reachable_set, Bfs, Dfs, Direction};
