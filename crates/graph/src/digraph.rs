//! An arena-based directed multigraph.
//!
//! Nodes and edges are stored in append-only arenas and addressed by
//! [`NodeId`] / [`EdgeId`] handles. The graph is a *multigraph*: parallel
//! edges between the same pair of nodes are allowed (a workflow run can pass
//! several data sets between the same two steps), and self-loops are allowed
//! (a workflow specification may contain a reflexive loop pattern).
//!
//! The arenas are append-only by design: ZOOM never mutates a registered
//! workflow graph in place — derived graphs (induced specifications,
//! condensations) are built as new graphs — so the ids stay stable for the
//! lifetime of the graph and can be used as dense indices everywhere else in
//! the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A handle to a node in a [`Digraph`]. Dense: `index()` is in `0..node_count()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

/// A handle to an edge in a [`Digraph`]. Dense: `index()` is in `0..edge_count()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Callers must ensure the index denotes an existing node of the graph
    /// they use it with; methods panic on out-of-range ids.
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index overflows u32"))
    }
}

impl EdgeId {
    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index overflows u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct NodeData<N> {
    weight: N,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct EdgeData<E> {
    weight: E,
    source: NodeId,
    target: NodeId,
}

/// An append-only directed multigraph with node weights `N` and edge weights `E`.
///
/// ```
/// use zoom_graph::Digraph;
/// let mut g: Digraph<&str, u32> = Digraph::new();
/// let a = g.add_node("align");
/// let b = g.add_node("build-tree");
/// g.add_edge(a, b, 7);
/// assert!(g.has_edge(a, b));
/// assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
/// assert_eq!(*g.node(b), "build-tree");
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Digraph<N, E> {
    nodes: Vec<NodeData<N>>,
    edges: Vec<EdgeData<E>>,
}

impl<N, E> Default for Digraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Digraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Digraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Digraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            weight,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        id
    }

    /// Adds a directed edge `source -> target` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            source.index() < self.nodes.len(),
            "source {source:?} out of range"
        );
        assert!(
            target.index() < self.nodes.len(),
            "target {target:?} out of range"
        );
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeData {
            weight,
            source,
            target,
        });
        self.nodes[source.index()].out_edges.push(id);
        self.nodes[target.index()].in_edges.push(id);
        id
    }

    /// Immutable access to a node's weight.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()].weight
    }

    /// Mutable access to a node's weight.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()].weight
    }

    /// Immutable access to an edge's weight.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Mutable access to an edge's weight.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// The `(source, target)` endpoints of an edge.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.source, e.target)
    }

    /// Source node of an edge.
    pub fn source(&self, id: EdgeId) -> NodeId {
        self.edges[id.index()].source
    }

    /// Target node of an edge.
    pub fn target(&self, id: EdgeId) -> NodeId {
        self.edges[id.index()].target
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterates over `(id, &weight)` for all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, d)| (NodeId::from_index(i), &d.weight))
    }

    /// Iterates over `(id, source, target, &weight)` for all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, d)| (EdgeId::from_index(i), d.source, d.target, &d.weight))
    }

    /// Out-edges of `n` in insertion order.
    pub fn out_edges(&self, n: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        self.nodes[n.index()].out_edges.iter().copied()
    }

    /// In-edges of `n` in insertion order.
    pub fn in_edges(&self, n: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        self.nodes[n.index()].in_edges.iter().copied()
    }

    /// Successor nodes of `n` (with multiplicity if parallel edges exist).
    pub fn successors(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.nodes[n.index()]
            .out_edges
            .iter()
            .map(|&e| self.edges[e.index()].target)
    }

    /// Predecessor nodes of `n` (with multiplicity if parallel edges exist).
    pub fn predecessors(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.nodes[n.index()]
            .in_edges
            .iter()
            .map(|&e| self.edges[e.index()].source)
    }

    /// Out-degree of `n` (counting parallel edges).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].out_edges.len()
    }

    /// In-degree of `n` (counting parallel edges).
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].in_edges.len()
    }

    /// Returns `true` if there is at least one edge `a -> b`.
    ///
    /// Scans the shorter of `a`'s out-list and `b`'s in-list.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let out = &self.nodes[a.index()].out_edges;
        let inn = &self.nodes[b.index()].in_edges;
        if out.len() <= inn.len() {
            out.iter().any(|&e| self.edges[e.index()].target == b)
        } else {
            inn.iter().any(|&e| self.edges[e.index()].source == a)
        }
    }

    /// Returns the first edge `a -> b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.nodes[a.index()]
            .out_edges
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].target == b)
    }

    /// Maps node and edge weights into a structurally identical graph.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> Digraph<N2, E2> {
        Digraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, d)| NodeData {
                    weight: node_map(NodeId::from_index(i), &d.weight),
                    out_edges: d.out_edges.clone(),
                    in_edges: d.in_edges.clone(),
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, d)| EdgeData {
                    weight: edge_map(EdgeId::from_index(i), &d.weight),
                    source: d.source,
                    target: d.target,
                })
                .collect(),
        }
    }

    /// Returns the reverse graph (every edge flipped), preserving ids.
    pub fn reversed(&self) -> Digraph<N, E>
    where
        N: Clone,
        E: Clone,
    {
        Digraph {
            nodes: self
                .nodes
                .iter()
                .map(|d| NodeData {
                    weight: d.weight.clone(),
                    out_edges: d.in_edges.clone(),
                    in_edges: d.out_edges.clone(),
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|d| EdgeData {
                    weight: d.weight.clone(),
                    source: d.target,
                    target: d.source,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Digraph<&'static str, u32>, [NodeId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = Digraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(a), "a");
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        let e = g.find_edge(c, d).unwrap();
        assert_eq!(*g.edge(e), 4);
        assert_eq!(g.endpoints(e), (c, d));
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: Digraph<(), u32> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        g.add_edge(a, a, 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(b), 2);
        assert!(g.has_edge(a, a));
        assert_eq!(g.successors(a).filter(|&n| n == b).count(), 2);
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, .., d]) = diamond();
        let h = g.map(|_, &n| n.to_uppercase(), |_, &w| w * 10);
        assert_eq!(h.node(a), "A");
        assert_eq!(*h.edge(EdgeId::from_index(3)), 40);
        assert_eq!(h.successors(a).count(), 2);
        assert_eq!(h.in_degree(d), 2);
    }

    #[test]
    fn reversed_flips_edges() {
        let (g, [a, b, _, d]) = diamond();
        let r = g.reversed();
        assert!(r.has_edge(b, a));
        assert!(!r.has_edge(a, b));
        assert_eq!(r.out_degree(d), 2);
        assert_eq!(r.in_degree(d), 0);
        // Edge ids are preserved, endpoints swapped.
        assert_eq!(r.endpoints(EdgeId::from_index(0)), (b, a));
    }

    #[test]
    fn node_edge_mut() {
        let (mut g, [a, ..]) = diamond();
        *g.node_mut(a) = "z";
        assert_eq!(*g.node(a), "z");
        let e = EdgeId::from_index(0);
        *g.edge_mut(e) = 99;
        assert_eq!(*g.edge(e), 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bad_endpoint_panics() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(7), ());
    }
}
