//! GraphViz DOT export.
//!
//! ZOOM's prototype displays workflows, runs, and provenance graphs
//! graphically; in this reproduction the rendering surface is DOT text that
//! any GraphViz viewer can draw.

use crate::digraph::{Digraph, EdgeId, NodeId};
use std::fmt::Write as _;

/// A node-styling callback: `(node id, node weight) -> text`.
pub type NodeStyler<'a, N> = Box<dyn Fn(NodeId, &N) -> String + 'a>;

/// An edge-styling callback: `(edge id, edge weight) -> text`.
pub type EdgeStyler<'a, E> = Box<dyn Fn(EdgeId, &E) -> String + 'a>;

/// Styling hooks for DOT export.
pub struct DotStyle<'a, N, E> {
    /// Label for each node.
    pub node_label: NodeStyler<'a, N>,
    /// Extra attributes for each node, e.g. `style=filled,fillcolor=gray`.
    pub node_attrs: NodeStyler<'a, N>,
    /// Label for each edge (empty string for none).
    pub edge_label: EdgeStyler<'a, E>,
    /// Graph-level attribute lines, e.g. `rankdir=LR`.
    pub graph_attrs: Vec<String>,
}

impl<N: std::fmt::Display, E> Default for DotStyle<'_, N, E> {
    fn default() -> Self {
        DotStyle {
            node_label: Box::new(|_, n| n.to_string()),
            node_attrs: Box::new(|_, _| String::new()),
            edge_label: Box::new(|_, _| String::new()),
            graph_attrs: vec!["rankdir=LR".to_string()],
        }
    }
}

/// Escapes a string for use inside a DOT double-quoted label.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the graph as a DOT digraph named `name`.
pub fn to_dot<N, E>(graph: &Digraph<N, E>, name: &str, style: &DotStyle<'_, N, E>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(name));
    for attr in &style.graph_attrs {
        let _ = writeln!(s, "  {attr};");
    }
    for (id, w) in graph.nodes() {
        let label = escape(&(style.node_label)(id, w));
        let attrs = (style.node_attrs)(id, w);
        if attrs.is_empty() {
            let _ = writeln!(s, "  n{} [label=\"{}\"];", id.index(), label);
        } else {
            let _ = writeln!(s, "  n{} [label=\"{}\",{}];", id.index(), label, attrs);
        }
    }
    for (id, src, tgt, w) in graph.edges() {
        let label = (style.edge_label)(id, w);
        if label.is_empty() {
            let _ = writeln!(s, "  n{} -> n{};", src.index(), tgt.index());
        } else {
            let _ = writeln!(
                s,
                "  n{} -> n{} [label=\"{}\"];",
                src.index(),
                tgt.index(),
                escape(&label)
            );
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_labels() {
        let mut g: Digraph<&str, u32> = Digraph::new();
        let a = g.add_node("start");
        let b = g.add_node("end \"quoted\"");
        g.add_edge(a, b, 7);
        let style = DotStyle {
            edge_label: Box::new(|_, w: &u32| format!("d{w}")),
            ..DotStyle::default()
        };
        let dot = to_dot(&g, "test", &style);
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.contains("rankdir=LR;"));
        assert!(dot.contains("n0 [label=\"start\"];"));
        assert!(dot.contains("n1 [label=\"end \\\"quoted\\\"\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"d7\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn node_attrs_rendered() {
        let mut g: Digraph<&str, ()> = Digraph::new();
        g.add_node("x");
        let style = DotStyle {
            node_attrs: Box::new(|_, _| "shape=box".to_string()),
            ..DotStyle::default()
        };
        let dot = to_dot(&g, "g", &style);
        assert!(dot.contains("n0 [label=\"x\",shape=box];"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
