//! Cycle detection and enumeration.
//!
//! Workflow specifications may contain loops (e.g. the alignment-rectify
//! loop M3→M5→M3 in the paper's Figure 1); the run generator needs to find
//! them so it can unroll them, and the pattern-statistics extractor needs to
//! count them.

use crate::digraph::{Digraph, EdgeId, NodeId};

/// Classifies each edge as a *back edge* (closing a cycle in some DFS forest)
/// or not. The graph has a cycle iff at least one back edge exists.
pub fn back_edges<N, E>(graph: &Digraph<N, E>) -> Vec<EdgeId> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = graph.node_count();
    let mut color = vec![Color::White; n];
    let mut back = Vec::new();
    // Iterative DFS with explicit edge cursors.
    let out_lists: Vec<Vec<EdgeId>> = graph
        .node_ids()
        .map(|v| graph.out_edges(v).collect())
        .collect();
    for root in graph.node_ids() {
        if color[root.index()] != Color::White {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        color[root.index()] = Color::Gray;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let edges = &out_lists[v.index()];
            if *pos < edges.len() {
                let e = edges[*pos];
                *pos += 1;
                let w = graph.target(e);
                match color[w.index()] {
                    Color::White => {
                        color[w.index()] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Gray => back.push(e),
                    Color::Black => {}
                }
            } else {
                color[v.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    back
}

/// Enumerates the elementary cycles of the graph (as node sequences, first
/// node repeated at the end is omitted), up to `limit` cycles.
///
/// Uses the simple SCC-restricted DFS variant of Johnson's idea: for each
/// node `v` (in id order), find simple paths from `v` back to `v` that only
/// use nodes `>= v` within `v`'s SCC. Exponential in the worst case —
/// intended for small specification graphs.
pub fn elementary_cycles<N, E>(graph: &Digraph<N, E>, limit: usize) -> Vec<Vec<NodeId>> {
    use crate::algo::scc::strongly_connected_components;
    let mut out = Vec::new();
    let sccs = strongly_connected_components(graph);
    let mut scc_of = vec![usize::MAX; graph.node_count()];
    for (i, c) in sccs.iter().enumerate() {
        for &m in c {
            scc_of[m.index()] = i;
        }
    }
    let succs: Vec<Vec<NodeId>> = graph
        .node_ids()
        .map(|v| {
            let mut s: Vec<NodeId> = graph.successors(v).collect();
            s.sort();
            s.dedup();
            s
        })
        .collect();

    for start in graph.node_ids() {
        if out.len() >= limit {
            break;
        }
        // DFS over nodes >= start, same SCC as start.
        let allowed = |w: NodeId| w >= start && scc_of[w.index()] == scc_of[start.index()];
        let mut path = vec![start];
        let mut on_path = crate::bitset::BitSet::new(graph.node_count());
        on_path.insert(start.index());
        let mut cursors = vec![0usize];
        while !path.is_empty() && out.len() < limit {
            let v = *path.last().expect("nonempty");
            let cur = cursors.last_mut().expect("nonempty");
            let vs = &succs[v.index()];
            if *cur < vs.len() {
                let w = vs[*cur];
                *cur += 1;
                if w == start {
                    out.push(path.clone());
                } else if allowed(w) && !on_path.contains(w.index()) {
                    on_path.insert(w.index());
                    path.push(w);
                    cursors.push(0);
                }
            } else {
                path.pop();
                cursors.pop();
                on_path.remove(v.index());
            }
        }
    }
    out
}

/// Returns `true` if the graph contains at least one directed cycle.
pub fn has_cycle<N, E>(graph: &Digraph<N, E>) -> bool {
    !crate::algo::topo::is_acyclic(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn dag_has_no_back_edges() {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(0), n(2), ());
        assert!(back_edges(&g).is_empty());
        assert!(!has_cycle(&g));
    }

    #[test]
    fn cycle_yields_back_edge() {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        let e_back = g.add_edge(n(1), n(0), ());
        g.add_edge(n(1), n(2), ());
        let back = back_edges(&g);
        assert_eq!(back, vec![e_back]);
        assert!(has_cycle(&g));
    }

    #[test]
    fn enumerate_two_cycles() {
        // 0 <-> 1, 1 <-> 2
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(0), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(1), ());
        let mut cycles = elementary_cycles(&g, 100);
        cycles.sort();
        assert_eq!(cycles, vec![vec![n(0), n(1)], vec![n(1), n(2)]]);
    }

    #[test]
    fn self_loop_cycle() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(elementary_cycles(&g, 10), vec![vec![a]]);
        assert_eq!(back_edges(&g).len(), 1);
    }

    #[test]
    fn figure_eight() {
        // Two cycles sharing node 0: 0->1->0 and 0->2->0.
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(0), ());
        g.add_edge(n(0), n(2), ());
        g.add_edge(n(2), n(0), ());
        let mut cycles = elementary_cycles(&g, 100);
        cycles.sort();
        assert_eq!(cycles, vec![vec![n(0), n(1)], vec![n(0), n(2)]]);
    }

    #[test]
    fn limit_respected() {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(0), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(1), ());
        assert_eq!(elementary_cycles(&g, 1).len(), 1);
    }
}
