//! Topological ordering (Kahn's algorithm) and acyclicity checking.

use crate::digraph::{Digraph, NodeId};

/// Computes a topological order of the graph, or `None` if it has a cycle.
///
/// Parallel edges are handled correctly (each contributes to the in-degree).
pub fn topological_sort<N, E>(graph: &Digraph<N, E>) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    let mut queue: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|&v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for w in graph.successors(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Returns `true` if the graph has no directed cycle.
pub fn is_acyclic<N, E>(graph: &Digraph<N, E>) -> bool {
    topological_sort(graph).is_some()
}

/// Returns, for each node, its position in some topological order,
/// or `None` if the graph is cyclic.
pub fn topological_ranks<N, E>(graph: &Digraph<N, E>) -> Option<Vec<usize>> {
    let order = topological_sort(graph)?;
    let mut rank = vec![0usize; graph.node_count()];
    for (i, v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }
    Some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_dag() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(a, c, ());
        let order = topological_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
        assert!(is_acyclic(&g));
    }

    #[test]
    fn detects_cycle() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(topological_sort(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn parallel_edges_ok() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(is_acyclic(&g));
        assert_eq!(topological_sort(&g).unwrap(), vec![a, b]);
    }

    #[test]
    fn ranks_respect_edges() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[2], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[2], n[4], ());
        let ranks = topological_ranks(&g).unwrap();
        for (_, s, t, _) in g.edges() {
            assert!(ranks[s.index()] < ranks[t.index()]);
        }
    }

    #[test]
    fn empty_graph() {
        let g: Digraph<(), ()> = Digraph::new();
        assert_eq!(topological_sort(&g).unwrap(), Vec::<NodeId>::new());
    }
}
