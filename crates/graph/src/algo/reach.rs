//! Reachability queries and all-pairs transitive closure.

use crate::bitset::BitSet;
use crate::digraph::{Digraph, NodeId};
use crate::traversal::{reachable_set, Direction};

/// Returns `true` if there is a directed path from `a` to `b` (including the
/// trivial path when `a == b`).
pub fn is_reachable<N, E>(graph: &Digraph<N, E>, a: NodeId, b: NodeId) -> bool {
    reachable_set(graph, a, Direction::Forward).contains(b.index())
}

/// All-pairs reachability, computed as one BFS per node: O(V·(V+E)) time,
/// O(V²) bits of space.
///
/// For the graph sizes ZOOM deals with (specifications of tens to hundreds of
/// nodes, runs of up to ~10,000 steps) this is both simple and fast; the
/// bit-parallel union step keeps constants low.
#[derive(Clone, Debug)]
pub struct TransitiveClosure {
    rows: Vec<BitSet>,
}

impl TransitiveClosure {
    /// Computes the closure of `graph`. Each row `i` holds the set of nodes
    /// reachable from node `i` (a node reaches itself only via a cycle;
    /// use [`TransitiveClosure::reaches`] which treats `a == b` as reachable).
    pub fn compute<N, E>(graph: &Digraph<N, E>) -> Self {
        // Process nodes in reverse topological order of the condensation so
        // each row can reuse successor rows (classic DAG closure trick).
        let (cond, comp_of) = crate::algo::scc::condensation(graph);
        let n = graph.node_count();
        let mut rows = vec![BitSet::new(n); n];
        // Tarjan order (= condensation insertion order) is reverse
        // topological, so successors' rows are ready before we need them.
        let mut comp_row: Vec<BitSet> = Vec::with_capacity(cond.node_count());
        for cid in cond.node_ids() {
            let members = cond.node(cid);
            let mut row = BitSet::new(n);
            // Within an SCC of size > 1 (or with a self-loop) every member
            // reaches every member.
            let cyclic =
                members.len() > 1 || members.iter().any(|&m| graph.successors(m).any(|s| s == m));
            if cyclic {
                for &m in members {
                    row.insert(m.index());
                }
            }
            for &m in members {
                for s in graph.successors(m) {
                    let sc = comp_of[s.index()];
                    if sc != cid {
                        row.insert(s.index());
                        row.union_with(&comp_row[sc.index()]);
                    }
                }
            }
            comp_row.push(row);
        }
        for v in graph.node_ids() {
            rows[v.index()] = comp_row[comp_of[v.index()].index()].clone();
        }
        TransitiveClosure { rows }
    }

    /// `true` if `b` is reachable from `a` via a *nonempty* path.
    pub fn reaches_strictly(&self, a: NodeId, b: NodeId) -> bool {
        self.rows[a.index()].contains(b.index())
    }

    /// `true` if `b` is reachable from `a` (the empty path counts: `a` always
    /// reaches itself).
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.reaches_strictly(a, b)
    }

    /// The row of nodes reachable from `a` via nonempty paths.
    pub fn row(&self, a: NodeId) -> &BitSet {
        &self.rows[a.index()]
    }

    /// Number of reachable pairs (nonempty paths).
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }
}

/// Naive Floyd–Warshall style closure; used as an oracle in tests.
#[allow(clippy::needless_range_loop)]
pub fn naive_closure<N, E>(graph: &Digraph<N, E>) -> Vec<Vec<bool>> {
    let n = graph.node_count();
    let mut m = vec![vec![false; n]; n];
    for (_, s, t, _) in graph.edges() {
        m[s.index()][t.index()] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if m[i][k] {
                for j in 0..n {
                    if m[k][j] {
                        m[i][j] = true;
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn chain_with_cycle() -> Digraph<(), ()> {
        // 0 -> 1 <-> 2 -> 3, 4 isolated, 3 -> 3 self loop
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..5 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(1), ());
        g.add_edge(n(2), n(3), ());
        g.add_edge(n(3), n(3), ());
        g
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn closure_matches_naive() {
        let g = chain_with_cycle();
        let tc = TransitiveClosure::compute(&g);
        let naive = naive_closure(&g);
        for i in 0..g.node_count() {
            for j in 0..g.node_count() {
                assert_eq!(
                    tc.reaches_strictly(n(i), n(j)),
                    naive[i][j],
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn self_reachability_rules() {
        let g = chain_with_cycle();
        let tc = TransitiveClosure::compute(&g);
        // 1 and 2 are on a cycle; 0 and 4 are not; 3 has a self loop.
        assert!(tc.reaches_strictly(n(1), n(1)));
        assert!(tc.reaches_strictly(n(2), n(2)));
        assert!(tc.reaches_strictly(n(3), n(3)));
        assert!(!tc.reaches_strictly(n(0), n(0)));
        assert!(!tc.reaches_strictly(n(4), n(4)));
        // But `reaches` counts the empty path.
        assert!(tc.reaches(n(0), n(0)));
        assert!(tc.reaches(n(4), n(4)));
    }

    #[test]
    fn is_reachable_spot_checks() {
        let g = chain_with_cycle();
        assert!(is_reachable(&g, n(0), n(3)));
        assert!(!is_reachable(&g, n(3), n(0)));
        assert!(!is_reachable(&g, n(0), n(4)));
        assert!(is_reachable(&g, n(2), n(1)));
    }

    #[test]
    fn pair_count() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let tc = TransitiveClosure::compute(&g);
        // a->b, a->c, b->c
        assert_eq!(tc.pair_count(), 3);
    }
}
