//! Strongly connected components (iterative Tarjan) and condensation.

use crate::digraph::{Digraph, NodeId};

/// The strongly connected components of the graph, in reverse topological
/// order of the condensation (i.e. a component appears before the components
/// it has edges *into* are... precisely: Tarjan emits each SCC after all SCCs
/// reachable from it, so the output order is a reverse topological order of
/// the condensation DAG).
///
/// Every node appears in exactly one component; singleton components are
/// emitted for nodes not on any cycle.
pub fn strongly_connected_components<N, E>(graph: &Digraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS stack: (node, iterator position into successors).
    let mut call: Vec<(NodeId, usize)> = Vec::new();
    // Precompute successor lists once so resuming a frame is O(1).
    let succs: Vec<Vec<NodeId>> = graph
        .node_ids()
        .map(|v| graph.successors(v).collect())
        .collect();

    for root in graph.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let succ = &succs[v.index()];
            if *pos < succ.len() {
                let w = succ[*pos];
                *pos += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// The condensation of the graph: one node per SCC (carrying its member
/// list), and an edge between distinct SCCs for every original cross-SCC
/// edge (deduplicated).
///
/// Also returns the mapping from original node to condensation node.
pub fn condensation<N, E>(graph: &Digraph<N, E>) -> (Digraph<Vec<NodeId>, ()>, Vec<NodeId>) {
    let sccs = strongly_connected_components(graph);
    let mut comp_of = vec![NodeId::from_index(0); graph.node_count()];
    let mut cond: Digraph<Vec<NodeId>, ()> = Digraph::with_capacity(sccs.len(), 0);
    for comp in sccs {
        let cid = cond.add_node(comp);
        for &m in cond.node(cid) {
            comp_of[m.index()] = cid;
        }
    }
    // Clippy: we must collect member lists first because cond is borrowed.
    let mut seen: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    for (_, s, t, _) in graph.edges() {
        let (cs, ct) = (comp_of[s.index()], comp_of[t.index()]);
        if cs != ct && seen.insert((cs, ct)) {
            cond.add_edge(cs, ct, ());
        }
    }
    (cond, comp_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::topo::is_acyclic;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // {0,1,2} cycle -> 3 -> {4,5} cycle
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..6 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(0), ());
        g.add_edge(n(2), n(3), ());
        g.add_edge(n(3), n(4), ());
        g.add_edge(n(4), n(5), ());
        g.add_edge(n(5), n(4), ());
        let mut sccs: Vec<Vec<usize>> = strongly_connected_components(&g)
            .into_iter()
            .map(|c| {
                let mut v: Vec<usize> = c.into_iter().map(|x| x.index()).collect();
                v.sort();
                v
            })
            .collect();
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn dag_gives_singletons() {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(0), n(3), ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn tarjan_order_is_reverse_topological() {
        // 0 -> 1 -> 2 (all singletons): 2 must come out before 1 before 0.
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![n(2)], vec![n(1)], vec![n(0)]]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![a]]);
    }

    #[test]
    fn condensation_is_acyclic_and_complete() {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..6 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(0), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(3), ());
        g.add_edge(n(3), n(2), ());
        g.add_edge(n(3), n(4), ());
        g.add_edge(n(4), n(5), ());
        let (cond, comp_of) = condensation(&g);
        assert!(is_acyclic(&cond));
        assert_eq!(cond.node_count(), 4);
        // Total membership covers all nodes exactly once.
        let total: usize = cond.nodes().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 6);
        assert_eq!(comp_of[0], comp_of[1]);
        assert_eq!(comp_of[2], comp_of[3]);
        assert_ne!(comp_of[0], comp_of[2]);
        // Cross edges deduplicated: {0,1}->{2,3}, {2,3}->{4}, {4}->{5}.
        assert_eq!(cond.edge_count(), 3);
    }
}
