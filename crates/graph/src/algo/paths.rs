//! Path predicates used by the workflow model: "every node lies on some path
//! from input to output", bounded simple-path enumeration, and edge-level
//! path membership.

use crate::bitset::BitSet;
use crate::digraph::{Digraph, EdgeId, NodeId};
use crate::traversal::{reachable_set, Direction};

/// The set of nodes that lie on at least one directed path from `source` to
/// `sink` (inclusive): reachable from `source` AND co-reachable to `sink`.
pub fn nodes_on_paths<N, E>(graph: &Digraph<N, E>, source: NodeId, sink: NodeId) -> BitSet {
    let mut fwd = reachable_set(graph, source, Direction::Forward);
    let bwd = reachable_set(graph, sink, Direction::Backward);
    fwd.intersect_with(&bwd);
    fwd
}

/// Returns `true` if every node of `graph` lies on a path from `source` to
/// `sink`. This is the well-formedness condition the paper imposes on both
/// workflow specifications and runs (Section II).
pub fn all_nodes_on_paths<N, E>(graph: &Digraph<N, E>, source: NodeId, sink: NodeId) -> bool {
    nodes_on_paths(graph, source, sink).count() == graph.node_count()
}

/// The set of edges that lie on at least one directed path from `source` to
/// `sink`: an edge (u, v) qualifies iff u is reachable from `source` and v
/// co-reaches `sink`.
pub fn edges_on_paths<N, E>(graph: &Digraph<N, E>, source: NodeId, sink: NodeId) -> Vec<EdgeId> {
    let fwd = reachable_set(graph, source, Direction::Forward);
    let bwd = reachable_set(graph, sink, Direction::Backward);
    graph
        .edge_ids()
        .filter(|&e| {
            let (u, v) = graph.endpoints(e);
            fwd.contains(u.index()) && bwd.contains(v.index())
        })
        .collect()
}

/// Enumerates simple paths (as node sequences, endpoints included) from
/// `source` to `sink`, visiting no node twice, up to `limit` paths.
///
/// Exponential in the worst case — intended for small specification graphs
/// (tests, examples, and the brute-force minimum-view search).
pub fn simple_paths<N, E>(
    graph: &Digraph<N, E>,
    source: NodeId,
    sink: NodeId,
    limit: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut path = vec![source];
    let mut on_path = BitSet::new(graph.node_count());
    on_path.insert(source.index());
    // stack of successor cursors parallel to `path`
    let mut cursors = vec![0usize];
    let succs: Vec<Vec<NodeId>> = graph
        .node_ids()
        .map(|v| {
            let mut s: Vec<NodeId> = graph.successors(v).collect();
            s.sort();
            s.dedup(); // parallel edges yield the same simple path
            s
        })
        .collect();

    while !path.is_empty() && out.len() < limit {
        let v = *path.last().expect("nonempty");
        let cur = cursors.last_mut().expect("nonempty");
        let vs = &succs[v.index()];
        if *cur < vs.len() {
            let w = vs[*cur];
            *cur += 1;
            if w == sink {
                // Record and do not extend beyond the sink. This also covers
                // source == sink (a simple cycle through the source).
                let mut p = path.clone();
                p.push(w);
                out.push(p);
            } else if !on_path.contains(w.index()) {
                on_path.insert(w.index());
                path.push(w);
                cursors.push(0);
            }
        } else {
            path.pop();
            cursors.pop();
            on_path.remove(v.index());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// input(0) -> 1 -> 2 -> out(4), input -> 3 -> out, 5 dangling from 1
    fn g() -> Digraph<(), ()> {
        let mut g: Digraph<(), ()> = Digraph::new();
        for _ in 0..6 {
            g.add_node(());
        }
        g.add_edge(n(0), n(1), ());
        g.add_edge(n(1), n(2), ());
        g.add_edge(n(2), n(4), ());
        g.add_edge(n(0), n(3), ());
        g.add_edge(n(3), n(4), ());
        g.add_edge(n(1), n(5), ());
        g
    }

    #[test]
    fn nodes_on_paths_excludes_dangling() {
        let g = g();
        let s = nodes_on_paths(&g, n(0), n(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(!all_nodes_on_paths(&g, n(0), n(4)));
    }

    #[test]
    fn edges_on_paths_excludes_dangling_edge() {
        let g = g();
        let es = edges_on_paths(&g, n(0), n(4));
        assert_eq!(es.len(), 5);
        assert!(!es.contains(&EdgeId::from_index(5)));
    }

    #[test]
    fn simple_paths_enumeration() {
        let g = g();
        let mut ps = simple_paths(&g, n(0), n(4), 100);
        ps.sort();
        assert_eq!(
            ps,
            vec![vec![n(0), n(1), n(2), n(4)], vec![n(0), n(3), n(4)],]
        );
    }

    #[test]
    fn simple_paths_respects_limit() {
        let g = g();
        let ps = simple_paths(&g, n(0), n(4), 1);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn simple_paths_with_cycle_terminates() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        let ps = simple_paths(&g, a, c, 100);
        assert_eq!(ps, vec![vec![a, b, c]]);
    }

    #[test]
    fn source_equals_sink_needs_cycle() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let ps = simple_paths(&g, a, a, 100);
        assert_eq!(ps, vec![vec![a, b, a]]);
    }
}
