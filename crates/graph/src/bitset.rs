//! A fixed-capacity bit set over `u64` blocks.
//!
//! Reachability and transitive-closure computations in this crate need a
//! dense set representation over node indices. The standard library has no
//! bit set, and pulling in an external crate for ~200 lines of code is not
//! worth it for this workspace, so we implement one here.

use serde::{Deserialize, Serialize};

const BITS: usize = 64;

/// A fixed-capacity set of `usize` values in `0..len`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for values in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Creates a set containing every value in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// The capacity of the set (valid values are `0..len()`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Clears the bits in the final partial block beyond `len`.
    fn trim(&mut self) {
        let rem = self.len % BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitSet::insert: {i} out of range {}",
            self.len
        );
        let (block, bit) = (i / BITS, i % BITS);
        let mask = 1u64 << bit;
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] |= mask;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitSet::remove: {i} out of range {}",
            self.len
        );
        let (block, bit) = (i / BITS, i % BITS);
        let mask = 1u64 << bit;
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        was
    }

    /// Tests membership of `i`. Out-of-range values are simply absent.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.blocks[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// `self |= other`. Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self &= other`. Both sets must have the same capacity.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self -= other`. Both sets must have the same capacity.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to fit the maximum value.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let vals: Vec<usize> = iter.into_iter().collect();
        let len = vals.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for v in vals {
            s.insert(v);
        }
        s
    }
}

/// Iterator over set bits, ascending.
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * BITS + tz);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_ops() {
        let a: BitSet = [1usize, 3, 5, 7].into_iter().collect();
        let mut b = BitSet::new(a.len());
        b.insert(3);
        b.insert(4);
        b.insert(7);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 7]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 5]);

        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn iter_empty_and_full_blocks() {
        let mut s = BitSet::new(200);
        s.insert(199);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![199]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_iter_empty() {
        let s: BitSet = std::iter::empty().collect();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }
}
