//! Breadth-first and depth-first traversal over [`Digraph`]s.

use crate::bitset::BitSet;
use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// Direction of traversal relative to edge orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges source → target.
    Forward,
    /// Follow edges target → source.
    Backward,
}

/// A breadth-first iterator over the nodes reachable from a set of roots.
///
/// Yields each node exactly once, roots first, in BFS layer order.
pub struct Bfs {
    queue: VecDeque<NodeId>,
    seen: BitSet,
    dir: Direction,
}

impl Bfs {
    /// Starts a forward BFS from a single root.
    pub fn new<N, E>(graph: &Digraph<N, E>, root: NodeId) -> Self {
        Self::with_direction(graph, [root], Direction::Forward)
    }

    /// Starts a BFS in the given direction from multiple roots.
    pub fn with_direction<N, E>(
        graph: &Digraph<N, E>,
        roots: impl IntoIterator<Item = NodeId>,
        dir: Direction,
    ) -> Self {
        let mut seen = BitSet::new(graph.node_count());
        let mut queue = VecDeque::new();
        for r in roots {
            if seen.insert(r.index()) {
                queue.push_back(r);
            }
        }
        Bfs { queue, seen, dir }
    }

    /// Advances the traversal by one node.
    pub fn next<N, E>(&mut self, graph: &Digraph<N, E>) -> Option<NodeId> {
        let n = self.queue.pop_front()?;
        let push = |queue: &mut VecDeque<NodeId>, seen: &mut BitSet, m: NodeId| {
            if seen.insert(m.index()) {
                queue.push_back(m);
            }
        };
        match self.dir {
            Direction::Forward => {
                for m in graph.successors(n) {
                    push(&mut self.queue, &mut self.seen, m);
                }
            }
            Direction::Backward => {
                for m in graph.predecessors(n) {
                    push(&mut self.queue, &mut self.seen, m);
                }
            }
        }
        Some(n)
    }

    /// Drains the traversal into a vector.
    pub fn collect<N, E>(mut self, graph: &Digraph<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(n) = self.next(graph) {
            out.push(n);
        }
        out
    }
}

/// A depth-first iterator (preorder) over the nodes reachable from a root.
pub struct Dfs {
    stack: Vec<NodeId>,
    seen: BitSet,
    dir: Direction,
}

impl Dfs {
    /// Starts a forward DFS from a single root.
    pub fn new<N, E>(graph: &Digraph<N, E>, root: NodeId) -> Self {
        Self::with_direction(graph, root, Direction::Forward)
    }

    /// Starts a DFS in the given direction.
    pub fn with_direction<N, E>(graph: &Digraph<N, E>, root: NodeId, dir: Direction) -> Self {
        let mut seen = BitSet::new(graph.node_count());
        seen.insert(root.index());
        Dfs {
            stack: vec![root],
            seen,
            dir,
        }
    }

    /// Advances the traversal by one node (preorder).
    pub fn next<N, E>(&mut self, graph: &Digraph<N, E>) -> Option<NodeId> {
        let n = self.stack.pop()?;
        match self.dir {
            Direction::Forward => {
                for m in graph.successors(n) {
                    if self.seen.insert(m.index()) {
                        self.stack.push(m);
                    }
                }
            }
            Direction::Backward => {
                for m in graph.predecessors(n) {
                    if self.seen.insert(m.index()) {
                        self.stack.push(m);
                    }
                }
            }
        }
        Some(n)
    }
}

/// The set of nodes reachable from `root` (including `root`) following `dir`.
pub fn reachable_set<N, E>(graph: &Digraph<N, E>, root: NodeId, dir: Direction) -> BitSet {
    let mut bfs = Bfs::with_direction(graph, [root], dir);
    while bfs.next(graph).is_some() {}
    bfs.seen
}

/// The set of nodes reachable from `root` without traversing *through*
/// disallowed intermediate nodes.
///
/// This is the primitive behind the paper's *nr-paths* (Section III): a path
/// counts only if every **intermediate** node satisfies `allow_intermediate`.
/// The root and the reached endpoints themselves are unconstrained: a node is
/// included in the result as soon as a qualifying path reaches it, but the
/// traversal only continues *through* it if `allow_intermediate` holds.
///
/// The returned set does not contain `root` unless a qualifying nontrivial
/// cycle returns to it.
pub fn constrained_reachable_set<N, E>(
    graph: &Digraph<N, E>,
    root: NodeId,
    dir: Direction,
    mut allow_intermediate: impl FnMut(NodeId) -> bool,
) -> BitSet {
    let mut reached = BitSet::new(graph.node_count());
    let mut expanded = BitSet::new(graph.node_count());
    let mut queue = VecDeque::new();
    queue.push_back(root);
    expanded.insert(root.index());
    while let Some(n) = queue.pop_front() {
        let step = |m: NodeId,
                    reached: &mut BitSet,
                    expanded: &mut BitSet,
                    queue: &mut VecDeque<NodeId>,
                    allow: &mut dyn FnMut(NodeId) -> bool| {
            reached.insert(m.index());
            if allow(m) && expanded.insert(m.index()) {
                queue.push_back(m);
            }
        };
        match dir {
            Direction::Forward => {
                for m in graph.successors(n) {
                    step(
                        m,
                        &mut reached,
                        &mut expanded,
                        &mut queue,
                        &mut allow_intermediate,
                    );
                }
            }
            Direction::Backward => {
                for m in graph.predecessors(n) {
                    step(
                        m,
                        &mut reached,
                        &mut expanded,
                        &mut queue,
                        &mut allow_intermediate,
                    );
                }
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> 2 -> 4, 0 -> 3 -> 4, 5 isolated
    fn g() -> Digraph<(), ()> {
        let mut g = Digraph::new();
        let n: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[4], ());
        g.add_edge(n[0], n[3], ());
        g.add_edge(n[3], n[4], ());
        g
    }

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn bfs_forward_layers() {
        let g = g();
        let order = Bfs::new(&g, n(0)).collect(&g);
        assert_eq!(order, vec![n(0), n(1), n(3), n(2), n(4)]);
    }

    #[test]
    fn bfs_backward() {
        let g = g();
        let order = Bfs::with_direction(&g, [n(4)], Direction::Backward).collect(&g);
        assert_eq!(order[0], n(4));
        assert_eq!(order.len(), 5);
        assert!(!order.contains(&n(5)));
    }

    #[test]
    fn bfs_multi_root_dedups() {
        let g = g();
        let order = Bfs::with_direction(&g, [n(1), n(3), n(1)], Direction::Forward).collect(&g);
        assert_eq!(order, vec![n(1), n(3), n(2), n(4)]);
    }

    #[test]
    fn dfs_visits_all_reachable_once() {
        let g = g();
        let mut dfs = Dfs::new(&g, n(0));
        let mut seen = Vec::new();
        while let Some(x) = dfs.next(&g) {
            seen.push(x);
        }
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], n(0));
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn reachable_sets() {
        let g = g();
        let fwd = reachable_set(&g, n(1), Direction::Forward);
        assert_eq!(fwd.iter().collect::<Vec<_>>(), vec![1, 2, 4]);
        let bwd = reachable_set(&g, n(4), Direction::Backward);
        assert_eq!(bwd.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn constrained_reachability_blocks_intermediates() {
        let g = g();
        // Block node 1 and 3 as intermediates: from 0 we still *reach* them
        // (they are endpoints of direct edges) but cannot go through them.
        let r = constrained_reachable_set(&g, n(0), Direction::Forward, |m| m != n(1) && m != n(3));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 3]);
        // Block only node 1: 4 is still reachable via 3.
        let r = constrained_reachable_set(&g, n(0), Direction::Forward, |m| m != n(1));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn constrained_reachability_root_not_included_without_cycle() {
        let g = g();
        let r = constrained_reachable_set(&g, n(0), Direction::Forward, |_| true);
        assert!(!r.contains(0));
        // With a cycle, the root is re-reached.
        let mut g2: Digraph<(), ()> = Digraph::new();
        let a = g2.add_node(());
        let b = g2.add_node(());
        g2.add_edge(a, b, ());
        g2.add_edge(b, a, ());
        let r2 = constrained_reachable_set(&g2, a, Direction::Forward, |_| true);
        assert!(r2.contains(a.index()));
    }
}
