//! Interval primitives for tree-cover reachability labeling.
//!
//! The labeling scheme (Agrawal–Borgida–Jagadish tree cover, the family
//! Bao & Davidson's workflow-view labels build on) assigns every DAG node
//! a *post-order interval* over a spanning forest: a node's subtree
//! occupies a contiguous post-order range, so "is `v` a tree-descendant
//! of `u`" is one range check. Non-tree reachability is carried by extra
//! intervals per node (the "exception" labels), kept as an
//! [`IntervalSet`]. This module provides the two building blocks the
//! warehouse's label index composes:
//!
//! * [`IntervalSet`] — a sorted, disjoint, maximally-merged set of closed
//!   `u32` intervals with `O(log k)` membership and linear-time union;
//! * [`spanning_forest_postorder`] — one pass choosing a spanning forest
//!   of the graph (first in-neighbor as parent) and numbering it in
//!   post-order, returning the per-node interval `[low, post]` that
//!   covers exactly the node's tree-descendants.

use crate::digraph::{Digraph, NodeId};
use crate::traversal::Direction;
use serde::{Deserialize, Serialize};

/// A sorted, disjoint, maximally-merged set of closed intervals over
/// `u32` points.
///
/// Invariant: intervals are sorted by start, pairwise disjoint, and
/// non-adjacent (`next.start > cur.end + 1`), so the representation of a
/// point set is canonical and `len()` is the minimal interval count.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    ivs: Vec<(u32, u32)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set containing exactly `[lo, hi]` (callers must pass
    /// `lo <= hi`).
    pub fn of(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi);
        IntervalSet {
            ivs: vec![(lo, hi)],
        }
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted)
    /// closed intervals.
    pub fn from_intervals(mut ivs: Vec<(u32, u32)>) -> Self {
        ivs.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(ivs.len());
        for (a, b) in ivs {
            debug_assert!(a <= b);
            match out.last_mut() {
                // Merge overlapping *and* adjacent intervals so the
                // canonical-form invariant holds.
                Some(last) if a <= last.1.saturating_add(1) => last.1 = last.1.max(b),
                _ => out.push((a, b)),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Number of intervals (the label size this scheme's memory is
    /// measured in).
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total number of points covered.
    pub fn covered(&self) -> u64 {
        self.ivs
            .iter()
            .map(|&(a, b)| u64::from(b) - u64::from(a) + 1)
            .sum()
    }

    /// Whether `x` lies in some interval — `O(log len)`.
    pub fn contains(&self, x: u32) -> bool {
        let i = self.ivs.partition_point(|&(a, _)| a <= x);
        i > 0 && self.ivs[i - 1].1 >= x
    }

    /// Inserts the single point `x`, merging with neighbors to keep the
    /// canonical form. Amortized `O(1)` when `x` extends the last
    /// interval (the incremental-append hot path), `O(len)` otherwise.
    pub fn insert(&mut self, x: u32) {
        match self.ivs.last_mut() {
            // Fast path: appending at or past the end.
            Some(last) if x > last.1 => {
                if x == last.1 + 1 {
                    last.1 = x;
                } else {
                    self.ivs.push((x, x));
                }
                return;
            }
            None => {
                self.ivs.push((x, x));
                return;
            }
            _ => {}
        }
        if self.contains(x) {
            return;
        }
        let i = self.ivs.partition_point(|&(a, _)| a <= x);
        // x falls strictly between ivs[i-1] and ivs[i].
        let joins_left = i > 0 && self.ivs[i - 1].1 + 1 == x;
        let joins_right = i < self.ivs.len() && x + 1 == self.ivs[i].0;
        match (joins_left, joins_right) {
            (true, true) => {
                self.ivs[i - 1].1 = self.ivs[i].1;
                self.ivs.remove(i);
            }
            (true, false) => self.ivs[i - 1].1 = x,
            (false, true) => self.ivs[i].0 = x,
            (false, false) => self.ivs.insert(i, (x, x)),
        }
    }

    /// Unions `other` into `self` — a linear-time sorted merge.
    pub fn union_with(&mut self, other: &IntervalSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ivs = other.ivs.clone();
            return;
        }
        // Fast path for the incremental-append workload: every interval
        // of `other` starts past our end, so it splices on directly.
        if other.ivs[0].0 > self.ivs.last().expect("non-empty").1 + 1 {
            self.ivs.extend_from_slice(&other.ivs);
            return;
        }
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() || j < other.ivs.len() {
            let take_self =
                j >= other.ivs.len() || (i < self.ivs.len() && self.ivs[i].0 <= other.ivs[j].0);
            let (a, b) = if take_self {
                i += 1;
                self.ivs[i - 1]
            } else {
                j += 1;
                other.ivs[j - 1]
            };
            match merged.last_mut() {
                Some(last) if a <= last.1.saturating_add(1) => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        self.ivs = merged;
    }

    /// Iterates the intervals in ascending order.
    pub fn intervals(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ivs.iter().copied()
    }

    /// Iterates every covered point in ascending order.
    pub fn points(&self) -> impl Iterator<Item = u32> + '_ {
        self.ivs.iter().flat_map(|&(a, b)| a..=b)
    }

    /// Heap bytes held by the interval vector.
    pub fn heap_bytes(&self) -> usize {
        self.ivs.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

impl FromIterator<(u32, u32)> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter.into_iter().collect())
    }
}

/// A post-order numbering of a spanning forest of the graph, plus the
/// per-node subtree interval.
///
/// For direction [`Direction::Forward`], tree edges follow graph edges
/// (each node's parent is its first predecessor); for
/// [`Direction::Backward`] the graph is treated reversed (parent = first
/// successor). Post-order assigns a node its number *after* its whole
/// subtree, so the subtree of `v` covers exactly the contiguous range
/// `[low[v], post[v]]`.
#[derive(Clone, Debug)]
pub struct PostOrder {
    /// `post[v]` — the post-order number of node `v`.
    pub post: Vec<u32>,
    /// `node_of_post[p]` — the node numbered `p` (the inverse of `post`).
    pub node_of_post: Vec<u32>,
    /// `low[v]` — the smallest post number in `v`'s subtree;
    /// `[low[v], post[v]]` is `v`'s tree-cover interval.
    pub low: Vec<u32>,
}

impl PostOrder {
    /// The tree-cover interval of node index `v`.
    pub fn interval(&self, v: usize) -> (u32, u32) {
        (self.low[v], self.post[v])
    }
}

/// Chooses a spanning forest of `g` (first in-neighbor with respect to
/// `dir` as parent) and numbers it in post-order.
///
/// Intended for DAGs; on a cyclic graph the pass still terminates and
/// covers every node (nodes on parent-pointer cycles are re-rooted), but
/// the intervals are only meaningful for acyclic inputs.
pub fn spanning_forest_postorder<N, E>(g: &Digraph<N, E>, dir: Direction) -> PostOrder {
    let n = g.node_count();
    let parent_of = |v: NodeId| -> Option<NodeId> {
        match dir {
            Direction::Forward => g.predecessors(v).next(),
            Direction::Backward => g.successors(v).next(),
        }
    };
    // Children lists of the chosen forest.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut is_root = vec![true; n];
    for v in g.node_ids() {
        if let Some(p) = parent_of(v) {
            if p != v {
                children[p.index()].push(v.index() as u32);
                is_root[v.index()] = false;
            }
        }
    }

    let mut post = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut node_of_post = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut counter: u32 = 0;
    // (node, next-child cursor) — an explicit stack keeps 1M-node chains
    // from overflowing the thread stack.
    let mut stack: Vec<(u32, u32)> = Vec::new();

    let mut dfs =
        |root: usize, visited: &mut Vec<bool>, counter: &mut u32, stack: &mut Vec<(u32, u32)>| {
            if visited[root] {
                return;
            }
            visited[root] = true;
            low[root] = *counter;
            stack.push((root as u32, 0));
            while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
                let v = v as usize;
                if let Some(&c) = children[v].get(*cursor as usize) {
                    *cursor += 1;
                    let c = c as usize;
                    if !visited[c] {
                        visited[c] = true;
                        low[c] = *counter;
                        stack.push((c as u32, 0));
                    }
                } else {
                    post[v] = *counter;
                    node_of_post[*counter as usize] = v as u32;
                    *counter += 1;
                    stack.pop();
                }
            }
        };

    for (v, _) in is_root.iter().enumerate().filter(|(_, r)| **r) {
        dfs(v, &mut visited, &mut counter, &mut stack);
    }
    // Cyclic graphs can leave parent-pointer cycles unreached from any
    // root; re-root them so the numbering is total.
    for v in 0..n {
        if !visited[v] {
            dfs(v, &mut visited, &mut counter, &mut stack);
        }
    }
    debug_assert_eq!(counter as usize, n);
    PostOrder {
        post,
        node_of_post,
        low,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_canonical_form() {
        let s = IntervalSet::from_intervals(vec![(5, 7), (1, 2), (3, 4), (9, 9)]);
        // (1,2)+(3,4)+(5,7) are adjacent — one interval.
        assert_eq!(s.intervals().collect::<Vec<_>>(), vec![(1, 7), (9, 9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.covered(), 8);
        for x in 1..=7 {
            assert!(s.contains(x));
        }
        assert!(!s.contains(0));
        assert!(!s.contains(8));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert_eq!(s.points().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6, 7, 9]);
    }

    #[test]
    fn insert_merges_with_neighbors() {
        let mut s = IntervalSet::new();
        for x in [5, 3, 1, 7] {
            s.insert(x);
        }
        assert_eq!(
            s.intervals().collect::<Vec<_>>(),
            vec![(1, 1), (3, 3), (5, 5), (7, 7)]
        );
        s.insert(4); // bridges (3,3) and (5,5)
        assert_eq!(
            s.intervals().collect::<Vec<_>>(),
            vec![(1, 1), (3, 5), (7, 7)]
        );
        s.insert(2); // joins left-adjacent
        assert_eq!(s.intervals().collect::<Vec<_>>(), vec![(1, 5), (7, 7)]);
        s.insert(6); // bridges everything
        assert_eq!(s.intervals().collect::<Vec<_>>(), vec![(1, 7)]);
        s.insert(4); // already present: no-op
        assert_eq!(s.intervals().collect::<Vec<_>>(), vec![(1, 7)]);
        s.insert(9); // append fast path
        s.insert(10); // extend fast path
        assert_eq!(s.intervals().collect::<Vec<_>>(), vec![(1, 7), (9, 10)]);
    }

    #[test]
    fn union_is_exact() {
        let mut a = IntervalSet::from_intervals(vec![(0, 3), (10, 12)]);
        let b = IntervalSet::from_intervals(vec![(4, 5), (11, 20), (30, 31)]);
        a.union_with(&b);
        assert_eq!(
            a.intervals().collect::<Vec<_>>(),
            vec![(0, 5), (10, 20), (30, 31)]
        );
        // Union with empty is identity, both ways.
        let mut e = IntervalSet::new();
        e.union_with(&a);
        assert_eq!(e, a);
        a.union_with(&IntervalSet::new());
        assert_eq!(e, a);
    }

    #[test]
    fn postorder_intervals_cover_subtrees() {
        // 0 -> 1 -> 2, 0 -> 3; plus a non-tree edge 3 -> 2.
        let mut g: Digraph<(), ()> = Digraph::new();
        let n0 = g.add_node(());
        let n1 = g.add_node(());
        let n2 = g.add_node(());
        let n3 = g.add_node(());
        g.add_edge(n0, n1, ());
        g.add_edge(n1, n2, ());
        g.add_edge(n0, n3, ());
        g.add_edge(n3, n2, ());

        let po = spanning_forest_postorder(&g, Direction::Forward);
        // Every node appears exactly once.
        let mut seen: Vec<u32> = po.post.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // node_of_post inverts post.
        for v in 0..4 {
            assert_eq!(po.node_of_post[po.post[v] as usize] as usize, v);
        }
        // The root's interval covers everything; each node's interval
        // contains its own post number.
        assert_eq!(po.interval(n0.index()), (0, 3));
        for v in 0..4 {
            let (lo, hi) = po.interval(v);
            assert!(lo <= po.post[v] && po.post[v] <= hi);
        }
        // 2's tree parent is 1 (first predecessor), so 3's subtree is
        // just itself.
        assert_eq!(po.interval(n3.index()).0, po.interval(n3.index()).1);
    }

    #[test]
    fn backward_postorder_uses_reversed_edges() {
        // Chain 0 -> 1 -> 2: backward forest roots at 0 (no successors
        // reversed = no predecessors in the reversed graph at node 2).
        let mut g: Digraph<(), ()> = Digraph::new();
        let n0 = g.add_node(());
        let n1 = g.add_node(());
        let n2 = g.add_node(());
        g.add_edge(n0, n1, ());
        g.add_edge(n1, n2, ());
        let po = spanning_forest_postorder(&g, Direction::Backward);
        // In the reversed graph the chain is 2 -> 1 -> 0, so node 2's
        // subtree covers all three.
        assert_eq!(po.interval(n2.index()), (0, 2));
        assert_eq!(po.post[n0.index()], 0);
        let mut seen = po.post.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn postorder_total_on_cycles() {
        // 0 -> 1 -> 0 plus isolated 2: the pass must still number all.
        let mut g: Digraph<(), ()> = Digraph::new();
        let n0 = g.add_node(());
        let n1 = g.add_node(());
        let _n2 = g.add_node(());
        g.add_edge(n0, n1, ());
        g.add_edge(n1, n0, ());
        let po = spanning_forest_postorder(&g, Direction::Forward);
        let mut seen = po.post.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
