//! Property-based tests of the graph substrate against naive oracles.

use proptest::prelude::*;
use zoom_graph::algo::cycles::{back_edges, elementary_cycles, has_cycle};
use zoom_graph::algo::paths::{edges_on_paths, nodes_on_paths, simple_paths};
use zoom_graph::algo::reach::{naive_closure, TransitiveClosure};
use zoom_graph::algo::scc::{condensation, strongly_connected_components};
use zoom_graph::algo::topo::{is_acyclic, topological_ranks, topological_sort};
use zoom_graph::{constrained_reachable_set, reachable_set, BitSet, Digraph, Direction, NodeId};

/// Builds a graph from a node count and an edge list (indices mod n).
fn graph(n: usize, edges: &[(usize, usize)]) -> Digraph<(), ()> {
    let mut g: Digraph<(), ()> = Digraph::new();
    for _ in 0..n {
        g.add_node(());
    }
    for &(a, b) in edges {
        g.add_edge(NodeId::from_index(a % n), NodeId::from_index(b % n), ());
    }
    g
}

fn arb_graph() -> impl Strategy<Value = Digraph<(), ()>> {
    (
        2usize..12,
        proptest::collection::vec((0usize..12, 0usize..12), 0..40),
    )
        .prop_map(|(n, edges)| graph(n, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bit-parallel transitive closure agrees with Floyd–Warshall.
    #[test]
    fn closure_matches_naive(g in arb_graph()) {
        let tc = TransitiveClosure::compute(&g);
        let naive = naive_closure(&g);
        for (i, row) in naive.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                prop_assert_eq!(
                    tc.reaches_strictly(NodeId::from_index(i), NodeId::from_index(j)),
                    want,
                    "mismatch at ({}, {})",
                    i,
                    j
                );
            }
        }
    }

    /// A topological sort exists iff the graph is acyclic, and respects
    /// every edge when it exists.
    #[test]
    fn topo_sort_laws(g in arb_graph()) {
        match topological_sort(&g) {
            Some(order) => {
                prop_assert!(is_acyclic(&g));
                prop_assert!(!has_cycle(&g));
                prop_assert_eq!(order.len(), g.node_count());
                let ranks = topological_ranks(&g).expect("acyclic");
                for (_, s, t, _) in g.edges() {
                    prop_assert!(ranks[s.index()] < ranks[t.index()]);
                }
            }
            None => {
                prop_assert!(has_cycle(&g));
                prop_assert!(!back_edges(&g).is_empty());
            }
        }
    }

    /// SCCs partition the nodes; two nodes share an SCC iff they reach each
    /// other; the condensation is acyclic.
    #[test]
    fn scc_laws(g in arb_graph()) {
        let sccs = strongly_connected_components(&g);
        let total: usize = sccs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        let mut comp = vec![usize::MAX; g.node_count()];
        for (i, c) in sccs.iter().enumerate() {
            for &m in c {
                prop_assert_eq!(comp[m.index()], usize::MAX, "node in two SCCs");
                comp[m.index()] = i;
            }
        }
        let tc = TransitiveClosure::compute(&g);
        for a in g.node_ids() {
            for b in g.node_ids() {
                let same = comp[a.index()] == comp[b.index()];
                let mutual = tc.reaches(a, b) && tc.reaches(b, a);
                prop_assert_eq!(same, mutual, "{:?} {:?}", a, b);
            }
        }
        let (cond, comp_of) = condensation(&g);
        prop_assert!(is_acyclic(&cond));
        prop_assert_eq!(cond.node_count(), sccs.len());
        for (_, s, t, _) in g.edges() {
            if comp_of[s.index()] != comp_of[t.index()] {
                prop_assert!(cond.has_edge(comp_of[s.index()], comp_of[t.index()]));
            }
        }
    }

    /// Removing the DFS back edges always leaves an acyclic graph.
    #[test]
    fn back_edge_removal_breaks_all_cycles(g in arb_graph()) {
        let backs: std::collections::HashSet<_> = back_edges(&g).into_iter().collect();
        let mut fwd: Digraph<(), ()> = Digraph::new();
        for _ in 0..g.node_count() {
            fwd.add_node(());
        }
        for e in g.edge_ids() {
            if !backs.contains(&e) {
                let (s, t) = g.endpoints(e);
                fwd.add_edge(s, t, ());
            }
        }
        prop_assert!(is_acyclic(&fwd));
    }

    /// Reachability from BFS agrees with the closure (plus the trivial
    /// self-path).
    #[test]
    fn bfs_reachability_matches_closure(g in arb_graph()) {
        let tc = TransitiveClosure::compute(&g);
        for a in g.node_ids() {
            let fwd = reachable_set(&g, a, Direction::Forward);
            for b in g.node_ids() {
                prop_assert_eq!(fwd.contains(b.index()), tc.reaches(a, b));
            }
            let bwd = reachable_set(&g, a, Direction::Backward);
            for b in g.node_ids() {
                prop_assert_eq!(bwd.contains(b.index()), tc.reaches(b, a));
            }
        }
    }

    /// Constrained reachability equals plain reachability on the graph with
    /// the blocked nodes' outgoing edges removed.
    #[test]
    fn constrained_bfs_matches_filtered_graph(
        g in arb_graph(),
        blocked_mask in any::<u16>(),
        root in 0usize..12,
    ) {
        let root = NodeId::from_index(root % g.node_count());
        let blocked = |m: NodeId| blocked_mask & (1 << (m.index() % 16)) != 0;
        let got = constrained_reachable_set(&g, root, Direction::Forward, |m| !blocked(m));

        // Oracle: remove out-edges of blocked nodes (except the root's own,
        // which always expand), then BFS; drop the root unless re-reached.
        let mut filtered: Digraph<(), ()> = Digraph::new();
        for _ in 0..g.node_count() {
            filtered.add_node(());
        }
        for (_, s, t, _) in g.edges() {
            if s == root || !blocked(s) {
                filtered.add_edge(s, t, ());
            }
        }
        let mut want = BitSet::new(g.node_count());
        for b in filtered.node_ids() {
            if b == root {
                // Root counts only if on a nontrivial cycle.
                let back = filtered
                    .node_ids()
                    .any(|m| {
                        reachable_set(&filtered, root, Direction::Forward).contains(m.index())
                            && m != root
                            && filtered.has_edge(m, root)
                    })
                    || filtered.has_edge(root, root);
                if back {
                    want.insert(root.index());
                }
                continue;
            }
            if reachable_set(&filtered, root, Direction::Forward).contains(b.index()) {
                want.insert(b.index());
            }
        }
        prop_assert_eq!(
            got.iter().collect::<Vec<_>>(),
            want.iter().collect::<Vec<_>>()
        );
    }

    /// Every enumerated simple path is a real path with distinct
    /// intermediate nodes and correct endpoints; and path existence agrees
    /// with reachability.
    #[test]
    fn simple_paths_are_paths(g in arb_graph(), s in 0usize..12, t in 0usize..12) {
        let s = NodeId::from_index(s % g.node_count());
        let t = NodeId::from_index(t % g.node_count());
        let paths = simple_paths(&g, s, t, 200);
        for p in &paths {
            prop_assert_eq!(p[0], s);
            prop_assert_eq!(*p.last().expect("nonempty"), t);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            let mut inner: Vec<_> = p[..p.len() - 1].to_vec();
            inner.sort();
            inner.dedup();
            prop_assert_eq!(inner.len(), p.len() - 1, "repeated non-final node");
        }
        if s != t {
            let tc = TransitiveClosure::compute(&g);
            // If not truncated by the limit, path existence == reachability.
            if paths.len() < 200 {
                prop_assert_eq!(!paths.is_empty(), tc.reaches_strictly(s, t));
            }
        }
    }

    /// nodes_on_paths and edges_on_paths are consistent with each other.
    #[test]
    fn path_membership_consistency(g in arb_graph(), s in 0usize..12, t in 0usize..12) {
        let s = NodeId::from_index(s % g.node_count());
        let t = NodeId::from_index(t % g.node_count());
        let nodes = nodes_on_paths(&g, s, t);
        for e in edges_on_paths(&g, s, t) {
            let (a, b) = g.endpoints(e);
            prop_assert!(nodes.contains(a.index()));
            prop_assert!(nodes.contains(b.index()));
        }
    }

    /// Every elementary cycle is a real cycle; a graph has cycles iff the
    /// enumeration finds one.
    #[test]
    fn elementary_cycles_are_cycles(g in arb_graph()) {
        let cycles = elementary_cycles(&g, 500);
        for c in &cycles {
            for w in c.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*c.last().expect("nonempty"), c[0]));
            let mut sorted = c.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), c.len(), "repeated node in cycle");
        }
        if cycles.len() < 500 {
            prop_assert_eq!(!cycles.is_empty(), has_cycle(&g));
        }
    }

    /// BitSet behaves like a BTreeSet model.
    #[test]
    fn bitset_model(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..100)) {
        let mut bs = BitSet::new(64);
        let mut model = std::collections::BTreeSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(bs.count(), model.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }
}
