//! Criterion bench for the base-closure provenance index: indexed deep
//! provenance vs. the whole-graph-scan reference path, index construction
//! cost, and batch fan-out vs. serial execution of the same query set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_core::Zoom;
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::{DataId, ModuleKind, Producer, UserView, ViewRun, WorkflowRun};
use zoom_warehouse::{deep_provenance_bfs, deep_provenance_indexed, ProvenanceIndex};

/// The step-produced data object with the smallest ancestor closure — the
/// cheapest interesting provenance click, where the seed path's
/// whole-graph work is pure overhead.
fn smallest_closure_output(run: &WorkflowRun, index: &ProvenanceIndex) -> DataId {
    run.all_data()
        .iter()
        .copied()
        .filter(|&d| matches!(run.producer_of(d), Some(Producer::Step(_))))
        .min_by_key(|&d| {
            run.producer_node(d)
                .map_or(usize::MAX, |n| index.ancestors(n).count())
        })
        .expect("runs have step outputs")
}

fn loop_run(kind: RunKind) -> (WorkflowRun, ViewRun) {
    let mut rng = StdRng::seed_from_u64(kind as u64 + 1);
    let spec = generate_spec(
        "idx-bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let run = generate_run(&spec, &RunGenConfig::for_kind(kind), &mut rng).expect("valid");
    let vr = ViewRun::new(&run, &UserView::admin(&spec));
    (run, vr)
}

/// The seed BFS path vs. the indexed path, warm index, per run kind.
///
/// Two targets bracket the workload: the final output (maximal closure,
/// "the most expensive provenance query possible") and an early
/// intermediate object (small closure — the common click). The seed path
/// scans the whole run graph either way; the indexed path only touches
/// the closure, so the early-target case is where the gap shows.
fn bench_indexed_vs_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_provenance_indexed_vs_bfs");
    for kind in RunKind::ALL {
        let (run, vr) = loop_run(kind);
        let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
        let targets = [
            ("output", run.final_outputs()[0]),
            ("early", smallest_closure_output(&run, &index)),
        ];
        for (place, target) in targets {
            group.bench_with_input(
                BenchmarkId::new(format!("bfs_{place}"), format!("{kind:?}")),
                &target,
                |b, &d| {
                    b.iter(|| {
                        black_box(deep_provenance_bfs(&run, &vr, d).unwrap().expect("visible"))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_{place}"), format!("{kind:?}")),
                &target,
                |b, &d| {
                    b.iter(|| {
                        black_box(
                            deep_provenance_indexed(&run, &vr, &index, d)
                                .unwrap()
                                .expect("visible"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The regime the index is built for: a deep Loop-class run (thousands
/// of steps, long iteration chains) queried at an object that
/// derives from a small fraction of it. The seed path pays a full-graph
/// BFS plus a full-graph collection scan per query; the indexed path
/// touches one closure row. This is the Large-run speedup figure quoted
/// in DESIGN.md.
fn bench_large_loop_run(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let spec = generate_spec(
        "idx-bench-xl",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let cfg = RunGenConfig {
        user_input: (1, 10),
        data_per_step: (1, 2),
        loop_iterations: (200, 400),
        max_nodes: 30_000,
        max_edges: 30_000,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid");
    let vr = ViewRun::new(&run, &UserView::admin(&spec));
    let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
    let target = smallest_closure_output(&run, &index);
    assert_eq!(
        deep_provenance_indexed(&run, &vr, &index, target),
        deep_provenance_bfs(&run, &vr, target),
    );

    let mut group = c.benchmark_group("large_loop_run");
    group.throughput(Throughput::Elements(run.graph().node_count() as u64));
    group.bench_function("bfs", |b| {
        b.iter(|| {
            black_box(
                deep_provenance_bfs(&run, &vr, target)
                    .unwrap()
                    .expect("visible"),
            )
        })
    });
    group.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(
                deep_provenance_indexed(&run, &vr, &index, target)
                    .unwrap()
                    .expect("visible"),
            )
        })
    });
    group.finish();
}

/// One-time index construction cost (the price of the first query per run).
fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_index_build");
    for kind in RunKind::ALL {
        let (run, _) = loop_run(kind);
        group.throughput(Throughput::Elements(run.graph().node_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &run,
            |b, run| b.iter(|| black_box(ProvenanceIndex::build(run))),
        );
    }
    group.finish();
}

/// Batch fan-out vs. a serial loop over the same `(run, view, data)` set.
fn bench_batch_vs_serial(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let spec = generate_spec(
        "idx-batch",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    let admin = zoom.admin_view(sid).expect("admin");
    let black_box_view = zoom.black_box_view(sid).expect("blackbox");
    let bio_labels: Vec<String> = spec
        .module_ids()
        .filter(|&m| spec.kind(m) == ModuleKind::Analysis)
        .map(|m| spec.label(m).to_string())
        .collect();
    let refs: Vec<&str> = bio_labels.iter().map(String::as_str).collect();
    let bio = zoom.build_view(sid, &refs).expect("good view");

    // Several runs so the batch has independent work to spread out.
    let mut queries = Vec::new();
    for _ in 0..4 {
        let run =
            generate_run(&spec, &RunGenConfig::for_kind(RunKind::Large), &mut rng).expect("valid");
        let target = run.final_outputs()[0];
        let rid = zoom.load_run(sid, run).expect("loads");
        for view in [admin, bio, black_box_view] {
            queries.push((rid, view, target));
        }
    }
    // Warm every cache so both variants measure pure query work.
    for &(r, v, d) in &queries {
        zoom.deep_provenance(r, v, d).expect("visible");
    }

    let mut group = c.benchmark_group("batch_deep_provenance");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| {
            for &(r, v, d) in &queries {
                black_box(zoom.deep_provenance(r, v, d).expect("visible"));
            }
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(zoom.query_batch(&queries)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_indexed_vs_bfs,
    bench_large_loop_run,
    bench_index_build,
    bench_batch_vs_serial
);
criterion_main!(benches);
