//! Criterion bench for the paper's query-response-time experiment: deep
//! provenance of the final output, per run kind (Table II) and per view
//! family — "the most expensive provenance query possible".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_core::Zoom;
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::{DataId, ModuleKind};

struct Fixture {
    zoom: Zoom,
    run: zoom_core::RunId,
    admin: zoom_core::ViewId,
    bio: zoom_core::ViewId,
    black_box: zoom_core::ViewId,
    target: DataId,
}

fn fixture(kind: RunKind) -> Fixture {
    let mut rng = StdRng::seed_from_u64(kind as u64 + 1);
    let spec = generate_spec(
        "bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    let admin = zoom.admin_view(sid).expect("admin");
    let black_box = zoom.black_box_view(sid).expect("blackbox");
    let bio_labels: Vec<String> = spec
        .module_ids()
        .filter(|&m| spec.kind(m) == ModuleKind::Analysis)
        .map(|m| spec.label(m).to_string())
        .collect();
    let refs: Vec<&str> = bio_labels.iter().map(String::as_str).collect();
    let bio = zoom.build_view(sid, &refs).expect("good view");
    let run = generate_run(&spec, &RunGenConfig::for_kind(kind), &mut rng).expect("valid");
    let target = run.final_outputs()[0];
    let run = zoom.load_run(sid, run).expect("loads");
    Fixture {
        zoom,
        run,
        admin,
        bio,
        black_box,
        target,
    }
}

fn bench_deep_provenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_provenance_warm");
    for kind in RunKind::ALL {
        let f = fixture(kind);
        // Warm the materialization cache once.
        for view in [f.admin, f.bio, f.black_box] {
            f.zoom
                .deep_provenance(f.run, view, f.target)
                .expect("visible");
        }
        for (name, view) in [
            ("UAdmin", f.admin),
            ("UBio", f.bio),
            ("UBlackBox", f.black_box),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{kind:?}")),
                &view,
                |b, &view| {
                    b.iter(|| {
                        black_box(
                            f.zoom
                                .deep_provenance(f.run, view, f.target)
                                .expect("visible"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_cold_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_run_materialization");
    for kind in RunKind::ALL {
        let f = fixture(kind);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &f,
            |b, f| {
                b.iter(|| {
                    black_box(
                        f.zoom
                            .warehouse()
                            .view_run_uncached(f.run, f.bio)
                            .expect("valid"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deep_provenance, bench_cold_materialization);
criterion_main!(benches);
