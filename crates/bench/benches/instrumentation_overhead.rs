//! Proves the observability layer is free enough to leave on: the
//! instrumented `Warehouse::deep_provenance` facade (latency histogram +
//! slow-log check + cache counters per call) vs. the same work composed
//! by hand from the uninstrumented pieces — warm `view_run()` +
//! `provenance_index()` lookups and a direct `query::deep_provenance_indexed`
//! call. Both paths hit the same caches and run the same indexed query on
//! the same `provenance_index` workload (the deep Loop-class run of
//! `benches/provenance_index.rs`), so the delta *is* the metrics cost.
//! The acceptance bar is <2%; the `uninstrumented_baseline` /
//! `instrumented_facade` pair in the report is the evidence.
//!
//! A second group measures the raw registry primitives — one histogram
//! record and one full `MetricsSnapshot` — to show where the nanoseconds
//! go (4 relaxed atomics on the hot path; the snapshot is off-path).

use criterion::{criterion_group, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_core::Zoom;
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::DataId;
use zoom_warehouse::metrics::{LatencyHistogram, MetricsRegistry, QueryKind, ViewClass};
use zoom_warehouse::{RunId, ViewId};

/// The `provenance_index` workload: a Large Loop-class run loaded into a
/// warehouse, admin view registered, every cache warmed, plus a spread of
/// query targets (final output + stride sample of visible data).
fn workload() -> (Zoom, RunId, ViewId, Vec<DataId>) {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = generate_spec(
        "instr-bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    let admin = zoom.admin_view(sid).expect("admin");
    let run =
        generate_run(&spec, &RunGenConfig::for_kind(RunKind::Large), &mut rng).expect("valid run");
    let data = run.all_data();
    let mut targets: Vec<DataId> = data
        .iter()
        .copied()
        .step_by((data.len() / 16).max(1))
        .collect();
    targets.push(run.final_outputs()[0]);
    let rid = zoom.load_run(sid, run).expect("loads");
    // Warm the view-run and index caches and drop invisible targets so
    // both variants measure pure query work.
    targets.retain(|&d| zoom.deep_provenance(rid, admin, d).is_ok());
    (zoom, rid, admin, targets)
}

fn bench_facade_vs_baseline(c: &mut Criterion) {
    let (zoom, rid, admin, targets) = workload();
    let wh = zoom.warehouse();

    let mut group = c.benchmark_group("instrumentation_overhead");
    group.throughput(Throughput::Elements(targets.len() as u64));
    // The hand-composed path: the exact work deep_provenance did before
    // the metrics layer existed — cache lookups plus the indexed query,
    // no timing, no histogram, no slow-log check.
    group.bench_function("uninstrumented_baseline", |b| {
        b.iter(|| {
            for &d in &targets {
                let vr = wh.view_run(rid, admin).expect("warm");
                let index = wh.provenance_index(rid).expect("warm");
                let run = wh.run(rid).expect("loaded");
                black_box(
                    zoom_warehouse::deep_provenance_indexed(run, &vr, &index, d)
                        .expect("well-formed")
                        .expect("visible"),
                );
            }
        })
    });
    group.bench_function("instrumented_facade", |b| {
        b.iter(|| {
            for &d in &targets {
                black_box(zoom.deep_provenance(rid, admin, d).expect("visible"));
            }
        })
    });
    group.finish();
}

fn bench_registry_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_primitives");
    let hist = LatencyHistogram::default();
    group.bench_function("histogram_record", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(977);
            hist.record(black_box(n % 20_000_000));
        })
    });
    let registry = MetricsRegistry::default();
    group.bench_function("record_query_below_threshold", |b| {
        let run = RunId(0);
        let view = ViewId(0);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(977);
            registry.record_query(
                QueryKind::Deep,
                ViewClass::Admin,
                run,
                view,
                "UAdmin",
                Some(black_box(n)),
                n % 1_000_000, // always below the 10 ms slow threshold
            );
        })
    });
    let (zoom, rid, admin, targets) = workload();
    for &d in &targets {
        zoom.deep_provenance(rid, admin, d).expect("visible");
    }
    group.bench_function("metrics_snapshot", |b| b.iter(|| black_box(zoom.metrics())));
    group.bench_function("snapshot_to_json", |b| {
        let snap = zoom.metrics();
        b.iter(|| black_box(snap.to_json()))
    });
    group.finish();
}

/// Back-to-back A/B criterion groups are at the mercy of machine drift
/// (frequency scaling, a noisy neighbor between groups): on an idle box
/// the two medians above can differ by ±10% in either direction while the
/// true delta is nanoseconds. This paired measurement interleaves the two
/// variants round by round and reports the *median per-round ratio*, which
/// cancels drift — it is the number the <2% acceptance bar is judged on.
fn paired_overhead_report() {
    let (zoom, rid, admin, targets) = workload();
    let wh = zoom.warehouse();
    const ROUNDS: usize = 300;
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = std::time::Instant::now();
        for &d in &targets {
            let vr = wh.view_run(rid, admin).expect("warm");
            let index = wh.provenance_index(rid).expect("warm");
            let run = wh.run(rid).expect("loaded");
            black_box(
                zoom_warehouse::deep_provenance_indexed(run, &vr, &index, d)
                    .expect("well-formed")
                    .expect("visible"),
            );
        }
        let base = t.elapsed().as_nanos() as f64;
        let t = std::time::Instant::now();
        for &d in &targets {
            black_box(zoom.deep_provenance(rid, admin, d).expect("visible"));
        }
        let inst = t.elapsed().as_nanos() as f64;
        ratios.push(inst / base);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ROUNDS / 2];
    println!(
        "paired instrumentation overhead (median of {ROUNDS} interleaved rounds): {:+.3}%",
        (median - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_facade_vs_baseline, bench_registry_primitives);

fn main() {
    paired_overhead_report();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
