//! Criterion bench for warehouse mechanics: run ingestion (direct and via
//! event logs), snapshot persistence, and the codec — the operational side
//! of "managing provenance".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_core::Zoom;
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::{EventLog, WorkflowRun, WorkflowSpec};

fn spec_and_run(kind: RunKind) -> (WorkflowSpec, WorkflowRun) {
    let mut rng = StdRng::seed_from_u64(5);
    let spec = generate_spec(
        "wh-bench",
        &SpecGenConfig::new(WorkflowClass::Linear, 20),
        &mut rng,
    );
    let run = generate_run(&spec, &RunGenConfig::for_kind(kind), &mut rng).expect("valid");
    (spec, run)
}

fn bench_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingestion");
    for kind in RunKind::ALL {
        let (spec, run) = spec_and_run(kind);
        let log = EventLog::from_run(&run, &spec);
        group.throughput(Throughput::Elements(run.step_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("load_run", format!("{kind:?}")),
            &(&spec, &run),
            |b, (spec, run)| {
                b.iter(|| {
                    let mut z = Zoom::new();
                    let sid = z.register_workflow((*spec).clone()).expect("fresh");
                    black_box(z.load_run(sid, (*run).clone()).expect("loads"))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("load_log", format!("{kind:?}")),
            &(&spec, &log),
            |b, (spec, log)| {
                b.iter(|| {
                    let mut z = Zoom::new();
                    let sid = z.register_workflow((*spec).clone()).expect("fresh");
                    black_box(z.load_log(sid, log).expect("loads"))
                })
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let (_, run) = spec_and_run(RunKind::Large);
    let bytes = zoom_warehouse::codec::to_bytes(&run).expect("encodes");
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_large_run", |b| {
        b.iter(|| black_box(zoom_warehouse::codec::to_bytes(&run).expect("encodes")))
    });
    group.bench_function("decode_large_run", |b| {
        b.iter(|| {
            black_box(zoom_warehouse::codec::from_bytes::<WorkflowRun>(&bytes).expect("decodes"))
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // A small lab: 5 workflows x 3 runs.
    let mut rng = StdRng::seed_from_u64(6);
    let mut zoom = Zoom::new();
    for i in 0..5 {
        let spec = generate_spec(
            &format!("snap-{i}"),
            &SpecGenConfig::new(WorkflowClass::Parallel, 15),
            &mut rng,
        );
        let sid = zoom.register_workflow(spec.clone()).expect("fresh");
        zoom.admin_view(sid).expect("admin");
        for _ in 0..3 {
            let run = generate_run(&spec, &RunGenConfig::for_kind(RunKind::Medium), &mut rng)
                .expect("valid");
            zoom.load_run(sid, run).expect("loads");
        }
    }
    let mut path = std::env::temp_dir();
    path.push(format!("zoom-bench-snapshot-{}", std::process::id()));
    let mut group = c.benchmark_group("snapshot");
    group.bench_function("save", |b| {
        b.iter(|| zoom.save(&path).expect("saves"));
    });
    zoom.save(&path).expect("saves");
    group.bench_function("load", |b| {
        b.iter(|| black_box(Zoom::load(&path).expect("loads")));
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_ingestion, bench_codec, bench_snapshot);
criterion_main!(benches);
