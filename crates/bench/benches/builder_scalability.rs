//! Criterion bench for the paper's scalability experiment: the
//! `RelevUserViewBuilder` algorithm on increasingly large randomized
//! workflow specifications (the paper reports < 80 ms per execution on
//! thousand-node specs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use zoom_gen::generate_random_spec;
use zoom_views::relev_user_view_builder;

fn bench_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("relev_user_view_builder");
    for &modules in &[10usize, 50, 100, 250, 500, 1000] {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = generate_random_spec("bench", modules, &mut rng);
        let relevant: Vec<_> = spec
            .module_ids()
            .filter(|_| rng.random_range(0..100u32) < 20)
            .collect();
        group.throughput(Throughput::Elements(spec.module_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(modules),
            &(&spec, &relevant),
            |b, (spec, relevant)| {
                b.iter(|| black_box(relev_user_view_builder(spec, relevant).expect("builds")))
            },
        );
    }
    group.finish();
}

fn bench_nr_context(c: &mut Criterion) {
    let mut group = c.benchmark_group("nr_context");
    for &modules in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = generate_random_spec("bench", modules, &mut rng);
        let relevant: Vec<_> = spec
            .module_ids()
            .filter(|_| rng.random_range(0..100u32) < 20)
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(modules),
            &(&spec, &relevant),
            |b, (spec, relevant)| {
                b.iter(|| black_box(zoom_views::NrContext::of_spec(spec, relevant)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_builder, bench_nr_context);
criterion_main!(benches);
