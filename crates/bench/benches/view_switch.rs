//! Criterion bench for the paper's interactivity experiment: switching the
//! user view while analyzing one data item's provenance. The cached
//! (materialize-once) path is what made the prototype's switches ≈13 ms;
//! the uncached path is the rebuild-every-time baseline it beat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_bench::workloads::random_relevant;
use zoom_core::{ViewId, Zoom};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::DataId;
use zoom_views::relev_user_view_builder;

fn fixture() -> (Zoom, zoom_core::RunId, Vec<ViewId>, DataId) {
    let mut rng = StdRng::seed_from_u64(99);
    let spec = generate_spec(
        "switch-bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    // A ladder of views at increasing granularity.
    let mut views = Vec::new();
    for (i, percent) in [10u32, 30, 50, 70, 90].iter().enumerate() {
        let relevant = random_relevant(&spec, *percent, &mut rng);
        let built = relev_user_view_builder(&spec, &relevant).expect("builds");
        let renamed = zoom_model::UserView::new(
            format!("ladder-{i}"),
            &spec,
            built.view.composites().to_vec(),
        )
        .expect("partition");
        views.push(zoom.register_view(sid, renamed).expect("registers"));
    }
    let run =
        generate_run(&spec, &RunGenConfig::for_kind(RunKind::Large), &mut rng).expect("valid");
    let target = run.final_outputs()[0];
    let rid = zoom.load_run(sid, run).expect("loads");
    (zoom, rid, views, target)
}

fn bench_switching(c: &mut Criterion) {
    let (zoom, rid, views, target) = fixture();
    let mut group = c.benchmark_group("view_switch_large_run");

    group.bench_function(BenchmarkId::from_parameter("cached"), |b| {
        // Warm all ladder views first.
        for &v in &views {
            zoom.deep_provenance(rid, v, target).expect("visible");
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % views.len();
            black_box(
                zoom.deep_provenance(rid, views[i], target)
                    .expect("visible"),
            )
        })
    });

    group.bench_function(BenchmarkId::from_parameter("rebuild"), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % views.len();
            let vr = zoom
                .warehouse()
                .view_run_uncached(rid, views[i])
                .expect("valid");
            let run = zoom.warehouse().run(rid).expect("loaded");
            black_box(zoom_warehouse::deep_provenance(run, &vr, target).expect("visible"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_switching);
criterion_main!(benches);
