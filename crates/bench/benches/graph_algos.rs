//! Criterion bench for the graph substrate: the primitives every ZOOM
//! query leans on (reachability, SCC, transitive closure, constrained
//! nr-path sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use zoom_graph::algo::reach::TransitiveClosure;
use zoom_graph::algo::scc::strongly_connected_components;
use zoom_graph::algo::topo::topological_sort;
use zoom_graph::{constrained_reachable_set, Digraph, Direction, NodeId};

/// A layered random DAG with occasional back edges (workflow-shaped).
fn graph(n: usize, seed: u64) -> Digraph<(), ()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: Digraph<(), ()> = Digraph::with_capacity(n, n * 2);
    for _ in 0..n {
        g.add_node(());
    }
    for i in 1..n {
        // 1-3 edges from earlier nodes.
        for _ in 0..rng.random_range(1..=3usize) {
            let j = rng.random_range(0..i);
            g.add_edge(NodeId::from_index(j), NodeId::from_index(i), ());
        }
        // 5% back edges to form loops.
        if rng.random_range(0..100u32) < 5 {
            let j = rng.random_range(0..i);
            g.add_edge(NodeId::from_index(i), NodeId::from_index(j), ());
        }
    }
    g
}

fn bench_algos(c: &mut Criterion) {
    for &n in &[100usize, 1000, 5000] {
        let g = graph(n, n as u64);
        let mut group = c.benchmark_group(format!("graph_{n}"));
        group.bench_function("topological_sort", |b| {
            b.iter(|| black_box(topological_sort(&g)))
        });
        group.bench_function("scc", |b| {
            b.iter(|| black_box(strongly_connected_components(&g)))
        });
        if n <= 1000 {
            group.bench_function("transitive_closure", |b| {
                b.iter(|| black_box(TransitiveClosure::compute(&g)))
            });
        }
        group.bench_function("constrained_bfs", |b| {
            let blocked: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
            b.iter(|| {
                black_box(constrained_reachable_set(
                    &g,
                    NodeId::from_index(0),
                    Direction::Forward,
                    |m| !blocked[m.index()],
                ))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_algos);
criterion_main!(benches);
