//! Proves policy enforcement is free for tenants without a policy: the
//! tenant-scoped `Zoom::deep_provenance_as` facade (thread-local tenant
//! tag + one relaxed policy-count load) vs. the plain `deep_provenance`
//! path, on the same warm `provenance_index` workload as
//! `benches/instrumentation_overhead.rs`. Both run the same indexed query
//! against the same caches, so the delta *is* the enforcement cost. The
//! acceptance bar is <1% (ISSUE 9); the paired median ratio printed up
//! front is the number it is judged on.
//!
//! A second group measures the restricted path — a tenant whose policy
//! conceals one module, answered through the compiled privacy view — to
//! show what substitution costs when it does fire (cache-hit lookups plus
//! the coarser view's query, all precompiled at `set_policy` time).

use criterion::{criterion_group, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use zoom_core::Zoom;
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};
use zoom_model::{DataId, ModuleKind};
use zoom_warehouse::{RunId, ViewId, VisibilityPolicy};

/// The `instrumentation_overhead` workload plus a restricted tenant: a
/// Large Loop-class run, admin view, every cache warmed, and a policy for
/// tenant `"restricted"` concealing the spec's first analysis module.
fn workload() -> (Zoom, RunId, ViewId, Vec<DataId>) {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = generate_spec(
        "privacy-bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    let admin = zoom.admin_view(sid).expect("admin");
    let run =
        generate_run(&spec, &RunGenConfig::for_kind(RunKind::Large), &mut rng).expect("valid run");
    let data = run.all_data();
    let mut targets: Vec<DataId> = data
        .iter()
        .copied()
        .step_by((data.len() / 16).max(1))
        .collect();
    targets.push(run.final_outputs()[0]);
    let rid = zoom.load_run(sid, run).expect("loads");

    let hidden = spec
        .module_ids()
        .find(|&m| spec.kind(m) == ModuleKind::Analysis)
        .expect("generated specs have analysis modules");
    zoom.set_policy(
        "restricted",
        Some(VisibilityPolicy {
            hidden_modules: vec![spec.label(hidden).to_string()],
            hidden_workflows: vec![],
        }),
    )
    .expect("20-module spec conceals one module");

    // Warm the view-run and index caches (both the admin view and the
    // substituted privacy view) and keep only targets every variant can
    // answer, so all three paths measure pure query work.
    targets.retain(|&d| {
        zoom.deep_provenance(rid, admin, d).is_ok()
            && zoom.deep_provenance_as("restricted", rid, admin, d).is_ok()
    });
    assert!(!targets.is_empty(), "need comparable targets");
    (zoom, rid, admin, targets)
}

fn bench_facade_vs_plain(c: &mut Criterion) {
    let (zoom, rid, admin, targets) = workload();

    let mut group = c.benchmark_group("privacy_overhead");
    group.throughput(Throughput::Elements(targets.len() as u64));
    group.bench_function("plain_facade", |b| {
        b.iter(|| {
            for &d in &targets {
                black_box(zoom.deep_provenance(rid, admin, d).expect("visible"));
            }
        })
    });
    // The tenant-scoped path for a tenant with no policy installed: the
    // enforcement fast path is one relaxed load of the policy count.
    group.bench_function("unrestricted_tenant", |b| {
        b.iter(|| {
            for &d in &targets {
                black_box(
                    zoom.deep_provenance_as("unrestricted", rid, admin, d)
                        .expect("visible"),
                );
            }
        })
    });
    // The restricted path: policy present, every query substituted onto
    // the precompiled privacy view (a cache hit per call).
    group.bench_function("restricted_tenant", |b| {
        b.iter(|| {
            for &d in &targets {
                black_box(
                    zoom.deep_provenance_as("restricted", rid, admin, d)
                        .expect("visible at the privacy view"),
                );
            }
        })
    });
    group.finish();
}

/// Interleaved paired measurement (same rationale as
/// `instrumentation_overhead::paired_overhead_report`): back-to-back
/// criterion groups drift with the machine, so the <1% bar is judged on
/// the median per-round ratio of the two variants run round by round.
fn paired_overhead_report() {
    let (zoom, rid, admin, targets) = workload();
    const ROUNDS: usize = 300;
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = std::time::Instant::now();
        for &d in &targets {
            black_box(zoom.deep_provenance(rid, admin, d).expect("visible"));
        }
        let plain = t.elapsed().as_nanos() as f64;
        let t = std::time::Instant::now();
        for &d in &targets {
            black_box(
                zoom.deep_provenance_as("unrestricted", rid, admin, d)
                    .expect("visible"),
            );
        }
        let tenant = t.elapsed().as_nanos() as f64;
        ratios.push(tenant / plain);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ROUNDS / 2];
    println!(
        "paired no-policy enforcement overhead (median of {ROUNDS} interleaved rounds): {:+.3}%",
        (median - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_facade_vs_plain);

fn main() {
    paired_overhead_report();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
