//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! experiments [all|table1|table2|scalability|optimality|fig10|response_time|view_switch|fig11|
//!              index_speedup|index_scaling|replay_throughput|daemon_throughput|shard_recovery]
//!              [--scale paper|quick] [--seed N]
//! ```
//!
//! `index_scaling`, `replay_throughput`, `daemon_throughput`, and
//! `shard_recovery` additionally write (or append to) the
//! `BENCH_<date>.json` scorecard in the current directory.

use zoom_bench::experiments::*;
use zoom_bench::{build_corpus, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::Paper;
    let mut seed = 2008u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes `paper` or `quick`"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed takes an integer"));
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag {flag}")),
            name => which = name.to_string(),
        }
        i += 1;
    }

    let needs_corpus = matches!(
        which.as_str(),
        "all"
            | "table1"
            | "table2"
            | "fig10"
            | "response_time"
            | "view_switch"
            | "fig11"
            | "index_speedup"
    );
    let mut corpus = needs_corpus.then(|| {
        eprintln!("building corpus (scale {scale:?}, seed {seed})...");
        let t = std::time::Instant::now();
        let c = build_corpus(scale, seed);
        let stats = c.zoom.warehouse().stats();
        eprintln!(
            "corpus ready in {:.1?}: {} workflows, {} runs, {} steps, {} data objects",
            t.elapsed(),
            stats.specs,
            stats.runs,
            stats.steps,
            stats.data_objects
        );
        c
    });

    let section = |name: &str, body: String| {
        println!("{}", "=".repeat(78));
        println!("{body}");
        let _ = name;
    };

    let run_one = |which: &str, corpus: &mut Option<zoom_bench::Corpus>| match which {
        "table1" => section(
            "table1",
            table1::report(corpus.as_ref().expect("corpus built"), scale),
        ),
        "table2" => section(
            "table2",
            table2::report(corpus.as_ref().expect("corpus built"), scale),
        ),
        "scalability" => {
            let (count, max) = match scale {
                Scale::Paper => (scalability::SPEC_COUNT, scalability::MAX_MODULES),
                Scale::Quick => (100, 200),
            };
            section("scalability", scalability::report(count, max, seed));
        }
        "optimality" => section("optimality", optimality::report(scale, seed)),
        "open_problem" => {
            let (instances, cap) = match scale {
                Scale::Paper => (80000, 9),
                Scale::Quick => (50, 8),
            };
            section("open_problem", open_problem::report(instances, cap, seed));
        }
        "fig10" => section(
            "fig10",
            fig10::report(corpus.as_ref().expect("corpus built")),
        ),
        "response_time" => section(
            "response_time",
            response::report(corpus.as_ref().expect("corpus built")),
        ),
        "view_switch" => section(
            "view_switch",
            switching::report(corpus.as_mut().expect("corpus built"), scale, seed),
        ),
        "fig11" => section(
            "fig11",
            fig11::report(corpus.as_ref().expect("corpus built"), scale, seed),
        ),
        "index_speedup" => section(
            "index_speedup",
            index_speedup::report(corpus.as_ref().expect("corpus built"), scale),
        ),
        "index_scaling" => {
            let entries = index_speedup::scaling(scale);
            section("index_scaling", index_speedup::scaling_report(&entries));
            let date = index_speedup::today_stamp();
            let path = format!("BENCH_{date}.json");
            let json = index_speedup::scaling_json(&entries, scale, &date);
            match std::fs::write(&path, &json) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        "replay_throughput" => {
            section("replay_throughput", replay::report(scale, seed));
            let date = index_speedup::today_stamp();
            let path = format!("BENCH_{date}.json");
            let b = replay::run(scale, seed);
            let obj = replay::scorecard_json(&b, scale, &date);
            let existing = std::fs::read_to_string(&path).unwrap_or_default();
            match std::fs::write(&path, replay::append_scorecard(&existing, &obj)) {
                Ok(()) => eprintln!("appended to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        "daemon_throughput" => {
            section("daemon_throughput", daemon::report(scale, seed));
            let date = index_speedup::today_stamp();
            let path = format!("BENCH_{date}.json");
            let b = daemon::run(scale, seed);
            let obj = daemon::scorecard_json(&b, scale, &date);
            let existing = std::fs::read_to_string(&path).unwrap_or_default();
            match std::fs::write(&path, replay::append_scorecard(&existing, &obj)) {
                Ok(()) => eprintln!("appended to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        "shard_recovery" => {
            section("shard_recovery", recovery::report(scale, seed));
            let date = index_speedup::today_stamp();
            let path = format!("BENCH_{date}.json");
            let b = recovery::run(scale, seed);
            let obj = recovery::scorecard_json(&b, scale, &date);
            let existing = std::fs::read_to_string(&path).unwrap_or_default();
            match std::fs::write(&path, replay::append_scorecard(&existing, &obj)) {
                Ok(()) => eprintln!("appended to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        other => die(&format!("unknown experiment `{other}`")),
    };

    if which == "all" {
        for name in [
            "table1",
            "table2",
            "scalability",
            "optimality",
            "fig10",
            "response_time",
            "view_switch",
            "fig11",
            "index_speedup",
            "index_scaling",
            "replay_throughput",
            "daemon_throughput",
            "shard_recovery",
            "open_problem",
        ] {
            run_one(name, &mut corpus);
        }
    } else {
        run_one(&which, &mut corpus);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
