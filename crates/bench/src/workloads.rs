//! Shared evaluation workloads (Section V-A): workflow corpora per class,
//! run batteries per kind, and the four view families (UAdmin, UBio,
//! UBlackBox, UPrivate — see [`zoom_gen::ViewScenario`]).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use zoom_core::{RunId, SpecId, ViewId, Zoom};
use zoom_gen::{generate_run, workflows_of_class, RunGenConfig, RunKind, WorkflowClass};
use zoom_graph::NodeId;
use zoom_model::{ModuleKind, WorkflowSpec};

/// Experiment scale: `Paper` approximates Section V's volumes; `Quick`
/// shrinks the batteries for smoke runs and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Close to the paper's volumes (10 workflows/class, 30 runs/kind).
    Paper,
    /// Reduced volumes (4 workflows/class, 3 runs/kind).
    Quick,
}

impl Scale {
    /// Workflows per class ("Using 10 workflows in each of the 4 classes").
    pub fn workflows_per_class(self) -> usize {
        match self {
            Scale::Paper => 10,
            Scale::Quick => 4,
        }
    }

    /// Runs per (workflow, kind) ("we created 30 runs of each kind").
    pub fn runs_per_kind(self) -> usize {
        match self {
            Scale::Paper => 30,
            Scale::Quick => 3,
        }
    }

    /// Random relevant-set draws per percentage point (Fig. 11 and the
    /// optimality experiment: "selected randomly 10 times for each
    /// percentage").
    pub fn draws_per_percent(self) -> usize {
        match self {
            Scale::Paper => 10,
            Scale::Quick => 3,
        }
    }

    /// Parses `"paper"` / `"quick"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" | "full" => Some(Scale::Paper),
            "quick" | "smoke" => Some(Scale::Quick),
            _ => None,
        }
    }
}

/// Target module count for synthetic specs: "we used specifications
/// containing about 20 nodes, which is slightly larger than the 12 node
/// average of the real workflows collected".
pub const SYNTH_MODULES: usize = 20;

/// One workflow loaded into a ZOOM instance with its three views and its
/// run battery.
pub struct LoadedWorkflow {
    /// The registered specification.
    pub spec_id: SpecId,
    /// A clone of the spec (for relevant-set drawing).
    pub spec: WorkflowSpec,
    /// The workflow's class.
    pub class: WorkflowClass,
    /// UAdmin view id.
    pub admin: ViewId,
    /// UBio view id (analysis modules relevant, built by the algorithm).
    pub bio: ViewId,
    /// UBlackBox view id.
    pub black_box: ViewId,
    /// UPrivate view id (coarsest view concealing the protected module).
    pub private: ViewId,
    /// The label of the module UPrivate conceals.
    pub concealed: String,
    /// Runs per kind, in [`RunKind::ALL`] order.
    pub runs: Vec<(RunKind, Vec<RunId>)>,
}

/// A fully loaded evaluation corpus.
pub struct Corpus {
    /// The system under test.
    pub zoom: Zoom,
    /// Workflows grouped by class (Table I order).
    pub workflows: Vec<LoadedWorkflow>,
}

/// The UBio relevant set for a spec: its analysis (non-formatting) modules.
/// "The choice of relevant modules … was done by hand (using our experience
/// from case studies and advice given by biologists)" — our curated library
/// and generator tag exactly that distinction.
pub fn bio_relevant(spec: &WorkflowSpec) -> Vec<NodeId> {
    spec.module_ids()
        .filter(|&m| spec.kind(m) == ModuleKind::Analysis)
        .collect()
}

/// The module UPrivate conceals: the first analysis module (the
/// "proprietary" step of the privacy scenario), falling back to the first
/// module for all-formatting workflows. Deterministic, so the corpus is
/// reproducible across seeds.
pub fn private_hidden(spec: &WorkflowSpec) -> NodeId {
    spec.module_ids()
        .find(|&m| spec.kind(m) == ModuleKind::Analysis)
        .or_else(|| spec.module_ids().next())
        .expect("corpus specs have at least one module")
}

/// Builds the full corpus: per class, `workflows_per_class` specs, three
/// views each, and `runs_per_kind` runs per Table II kind.
pub fn build_corpus(scale: Scale, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut zoom = Zoom::new();
    let mut workflows = Vec::new();
    for class in WorkflowClass::ALL {
        for spec in workflows_of_class(class, scale.workflows_per_class(), SYNTH_MODULES, &mut rng)
        {
            // Library specs repeat across counts > library size; make names
            // unique per slot.
            let spec = uniquify(spec, workflows.len());
            let spec_id = zoom.register_workflow(spec.clone()).expect("unique name");
            let admin = zoom.admin_view(spec_id).expect("admin view");
            let black_box = zoom.black_box_view(spec_id).expect("black-box view");
            let bio_labels: Vec<String> = bio_relevant(&spec)
                .iter()
                .map(|&m| spec.label(m).to_string())
                .collect();
            let bio_refs: Vec<&str> = bio_labels.iter().map(String::as_str).collect();
            let bio = zoom.build_view(spec_id, &bio_refs).expect("good view");
            let concealed = spec.label(private_hidden(&spec)).to_string();
            let private = zoom
                .private_view(spec_id, &[concealed.as_str()])
                .expect("corpus specs have >1 module, so concealment is satisfiable");

            let mut runs = Vec::new();
            for kind in RunKind::ALL {
                let cfg = RunGenConfig::for_kind(kind);
                let ids: Vec<RunId> = (0..scale.runs_per_kind())
                    .map(|_| {
                        let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
                        zoom.load_run(spec_id, run).expect("loads")
                    })
                    .collect();
                runs.push((kind, ids));
            }
            workflows.push(LoadedWorkflow {
                spec_id,
                spec,
                class,
                admin,
                bio,
                black_box,
                private,
                concealed,
                runs,
            });
        }
    }
    Corpus { zoom, workflows }
}

fn uniquify(spec: WorkflowSpec, slot: usize) -> WorkflowSpec {
    // Rebuild under a slot-suffixed name so repeated library entries can
    // coexist in one warehouse.
    let mut b = zoom_model::SpecBuilder::new(format!("{}#{}", spec.name(), slot));
    let mut map = std::collections::HashMap::new();
    for m in spec.module_ids() {
        map.insert(m, b.module(spec.label(m).to_string(), spec.kind(m)));
    }
    for (_, s, t, _) in spec.graph().edges() {
        let ms = if s == spec.input() {
            NodeId::from_index(0)
        } else {
            map[&s]
        };
        let mt = if t == spec.output() {
            NodeId::from_index(1)
        } else {
            map[&t]
        };
        b.connect(ms, mt);
    }
    b.build().expect("renaming preserves validity")
}

/// Draws a random relevant set of about `percent`% of the modules.
pub fn random_relevant(spec: &WorkflowSpec, percent: u32, rng: &mut StdRng) -> Vec<NodeId> {
    spec.module_ids()
        .filter(|_| rng.random_range(0..100) < percent)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_shape() {
        let corpus = build_corpus(Scale::Quick, 1);
        assert_eq!(corpus.workflows.len(), 16); // 4 classes x 4 workflows
        let stats = corpus.zoom.warehouse().stats();
        assert_eq!(stats.specs, 16);
        assert_eq!(stats.views, 16 * 4); // UAdmin, UBio, UBlackBox, UPrivate
        assert_eq!(stats.runs, 16 * 3 * 3); // 3 kinds x 3 runs
        for w in &corpus.workflows {
            assert_eq!(w.runs.len(), 3);
            assert!(corpus.zoom.warehouse().view(w.bio).is_ok());
            // The privacy view conceals the protected module: no composite
            // is the singleton {concealed}.
            let pv = corpus.zoom.warehouse().view(w.private).unwrap();
            let hidden = w.spec.module(&w.concealed).unwrap();
            assert!(pv
                .composites()
                .iter()
                .all(|c| c.members.as_slice() != [hidden]));
        }
    }

    #[test]
    fn bio_relevant_only_analysis() {
        let spec = zoom_gen::library::phylogenomic();
        let rel = bio_relevant(&spec);
        let labels: Vec<&str> = rel.iter().map(|&m| spec.label(m)).collect();
        assert_eq!(labels, vec!["M2", "M3", "M5", "M7"]);
    }

    #[test]
    fn random_relevant_bounds() {
        let spec = zoom_gen::library::phylogenomic();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(random_relevant(&spec, 0, &mut rng).is_empty());
        assert_eq!(random_relevant(&spec, 100, &mut rng).len(), 8);
    }
}
