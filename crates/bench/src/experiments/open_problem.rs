//! Beyond the paper: how often is the polynomial algorithm's *minimal* view
//! actually *minimum*?
//!
//! The paper leaves open whether a polynomial-time algorithm can always
//! produce a good view of smallest size, exhibiting one instance (Figure 7)
//! where `RelevUserViewBuilder` is minimal but not minimum. With the
//! exhaustive search of `zoom_views::minimum` we can measure how often —
//! and by how much — the algorithm misses the minimum on random small
//! specifications, quantifying how much the open problem matters in
//! practice.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use zoom_gen::generate_random_spec;
use zoom_views::{minimum_view, relev_user_view_builder};

/// Aggregated gap statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GapStats {
    /// Instances examined.
    pub instances: usize,
    /// Instances where the builder's view was already minimum.
    pub already_minimum: usize,
    /// Instances with a gap (builder size > minimum size).
    pub gaps: usize,
    /// Total gap (sum of size differences).
    pub total_gap: usize,
    /// Largest single gap observed.
    pub max_gap: usize,
}

/// Examines up to `instances` (specification, relevant-pair) combinations:
/// random specifications of ≤ `max_modules` modules, sweeping **every
/// 2-subset of modules** as the relevant set. Pair sweeps probe the gap
/// far more effectively than random relevant draws, which almost never hit
/// a Figure-7-shaped instance.
pub fn run(instances: usize, max_modules: usize, seed: u64) -> GapStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = GapStats::default();
    'outer: loop {
        let target = rng.random_range(3..=max_modules.saturating_sub(2).max(3));
        let spec = generate_random_spec("gap", target, &mut rng);
        if spec.module_count() > max_modules {
            continue;
        }
        let modules: Vec<_> = spec.module_ids().collect();
        for i in 0..modules.len() {
            for j in (i + 1)..modules.len() {
                if stats.instances >= instances {
                    break 'outer;
                }
                let relevant = vec![modules[i], modules[j]];
                let built = relev_user_view_builder(&spec, &relevant).expect("builds");
                let min = minimum_view(&spec, &relevant, max_modules).expect("within cap");
                stats.instances += 1;
                let gap = built.view.size() - min.size();
                if gap == 0 {
                    stats.already_minimum += 1;
                } else {
                    stats.gaps += 1;
                    stats.total_gap += gap;
                    stats.max_gap = stats.max_gap.max(gap);
                }
            }
        }
    }
    stats
}

/// Renders the open-problem report.
pub fn report(instances: usize, max_modules: usize, seed: u64) -> String {
    let s = run(instances, max_modules, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "OPEN PROBLEM (extension) — minimal vs. minimum over {} relevant-pair \
         instances on random specs (≤{} modules)",
        s.instances, max_modules
    );
    let _ = writeln!(
        out,
        "builder already minimum : {} / {} ({:.1}%)",
        s.already_minimum,
        s.instances,
        100.0 * s.already_minimum as f64 / s.instances as f64
    );
    let _ = writeln!(
        out,
        "gap instances           : {} (avg gap {:.2}, max gap {})",
        s.gaps,
        if s.gaps == 0 {
            0.0
        } else {
            s.total_gap as f64 / s.gaps as f64
        },
        s.max_gap
    );
    let _ = writeln!(
        out,
        "(the paper's Figure 7 exhibits one gap instance; whether a polynomial \
         algorithm can always reach the minimum remains open)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_search_runs_and_finds_mostly_minimum() {
        let s = run(25, 8, 7);
        assert_eq!(s.instances, 25);
        assert_eq!(s.already_minimum + s.gaps, 25);
        // The builder is minimum in the clear majority of instances.
        assert!(s.already_minimum * 2 > s.instances);
    }

    #[test]
    fn known_gap_instance_is_detected() {
        // Figure 7 has a gap of exactly 1.
        let (spec, rel) = zoom_views::paper::figure7();
        let built = relev_user_view_builder(&spec, &rel).unwrap();
        let min = minimum_view(&spec, &rel, 9).unwrap();
        assert_eq!(built.view.size() - min.size(), 1);
    }
}
