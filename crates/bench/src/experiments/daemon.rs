//! Daemon throughput — the wire-protocol half of the benchmark story.
//!
//! Where `replay_throughput` measures the warehouse replaying a recorded
//! ingestion session *in process*, this experiment stands up a real
//! `zoomd` [`Daemon`] on a loopback socket and pushes the **same
//! workload** through the framed wire protocol:
//!
//! 1. **Replay over the wire.** The identical recorded trace
//!    ([`super::replay::recorded_trace`]) replays through a [`RemoteZoom`]
//!    against the fresh daemon. Because the daemon allocates ids in the
//!    exact single-warehouse sequence, the replay must be digest-clean —
//!    that is the correctness gate, not just a speed number.
//! 2. **Session soak.** Worker threads multiplex logical sessions over a
//!    handful of TCP connections until the daemon holds ≥ the target
//!    concurrent session count (≥ 100 000 at Paper scale).
//! 3. **Query storm.** With every session still open, a client fires a
//!    deep-provenance battery at the replayed run and measures queries
//!    per second — the session table must be dead weight, not drag.
//!
//! Results append to the `BENCH_<date>.json` scorecard next to the
//! in-process replay entry, so the wire tax is one subtraction away.

use crate::workloads::Scale;
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;
use zoom_core::{Daemon, DaemonConfig, RemoteZoom};
use zoom_warehouse::{ReplayOptions, RunId, TraceReplayer, ViewId};

/// Worker threads (and therefore TCP connections) used for the soak.
const SOAK_WORKERS: usize = 8;

/// Every measurement the scorecard needs from one daemon session.
#[derive(Clone, Debug)]
pub struct DaemonBench {
    /// Warehouse shards the daemon ran with.
    pub shards: usize,
    /// Ops in the replayed trace.
    pub trace_ops: usize,
    /// Wall-clock nanos replaying the trace over the wire.
    pub replay_nanos: u64,
    /// Chained session digest of the wire replay.
    pub replay_digest: u64,
    /// Recorded-digest mismatches in the wire replay (0 when clean).
    pub replay_mismatches: usize,
    /// Concurrent logical sessions the soak aimed for.
    pub sessions_target: usize,
    /// Sessions the daemon actually held at peak (its own gauge).
    pub sessions_peak: u64,
    /// Wall-clock nanos to open every soak session.
    pub open_nanos: u64,
    /// Queries fired while every session was open.
    pub queries: usize,
    /// Wall-clock nanos for the query storm.
    pub query_nanos: u64,
}

impl DaemonBench {
    /// The wire replay reproduced every recorded per-op digest.
    pub fn is_clean(&self) -> bool {
        self.replay_mismatches == 0
    }

    /// Session opens per wall-clock second during the soak.
    pub fn opens_per_sec(&self) -> f64 {
        self.sessions_target as f64 * 1e9 / (self.open_nanos as f64).max(1.0)
    }

    /// Queries per wall-clock second with the session table at peak.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 * 1e9 / (self.query_nanos as f64).max(1.0)
    }

    /// The scorecard acceptance verdict: digest-clean wire replay AND the
    /// daemon held the full target of concurrent sessions.
    pub fn pass(&self) -> bool {
        self.is_clean() && self.sessions_peak >= self.sessions_target as u64
    }
}

fn session_target(scale: Scale) -> usize {
    match scale {
        // The ISSUE bar: ≥ 100k concurrent sessions. Aim past it.
        Scale::Paper => 120_000,
        Scale::Quick => 2_000,
    }
}

fn query_count(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 10_000,
        Scale::Quick => 1_000,
    }
}

/// Runs the full daemon benchmark: wire replay, session soak, query storm.
pub fn run(scale: Scale, seed: u64) -> DaemonBench {
    let (bytes, _events) = super::replay::recorded_trace(scale, seed);
    let replayer = TraceReplayer::from_bytes(&bytes).expect("recorder output parses");

    let daemon = Daemon::spawn("127.0.0.1:0", DaemonConfig::default())
        .expect("daemon binds a loopback port");
    let mut rz = RemoteZoom::connect(daemon.addr(), "bench").expect("client connects");

    // 1. Replay the recorded session through the wire protocol.
    let started = Instant::now();
    let report = replayer.replay(&mut rz, &ReplayOptions::default());
    let replay_nanos = started.elapsed().as_nanos() as u64;

    // 2. Session soak: SOAK_WORKERS connections each multiplex an equal
    // slice of the target. Two barriers fence the measurement: all-open,
    // then release (dropping a connection closes its sessions).
    let target = session_target(scale);
    let per_worker = target / SOAK_WORKERS;
    let barrier = Arc::new(Barrier::new(SOAK_WORKERS + 1));
    let addr = daemon.addr().to_string();
    let started = Instant::now();
    let workers: Vec<_> = (0..SOAK_WORKERS)
        .map(|w| {
            let barrier = Arc::clone(&barrier);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut rz = RemoteZoom::connect(addr.as_str(), &format!("soak-{w}"))
                    .expect("soak client connects");
                for _ in 0..per_worker {
                    rz.open_session().expect("session opens under quota");
                }
                barrier.wait(); // all sessions open — measurement window
                barrier.wait(); // release: dropping rz closes them
            })
        })
        .collect();
    barrier.wait();
    let open_nanos = started.elapsed().as_nanos() as u64;
    let sessions_peak = daemon.session_count();

    // 3. Query storm against the replayed run while every session is open.
    let finals = rz.final_outputs(RunId(0)).expect("replayed run is sealed");
    let queries = query_count(scale);
    let started = Instant::now();
    for i in 0..queries {
        let d = finals[i % finals.len()];
        rz.deep_provenance(RunId(0), ViewId(0), d)
            .expect("query against replayed run");
    }
    let query_nanos = started.elapsed().as_nanos() as u64;

    barrier.wait();
    for w in workers {
        w.join().expect("soak worker exits cleanly");
    }

    DaemonBench {
        shards: daemon.shard_count(),
        trace_ops: report.ops,
        replay_nanos,
        replay_digest: report.digest,
        replay_mismatches: report.mismatches.len(),
        sessions_target: target,
        sessions_peak,
        open_nanos,
        queries,
        query_nanos,
    }
}

/// Renders the human half of the result.
pub fn report(scale: Scale, seed: u64) -> String {
    let b = run(scale, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DAEMON THROUGHPUT — zoomd on loopback, {} shard(s) \
         (scale: {scale:?}, seed {seed})",
        b.shards
    );
    let _ = writeln!(
        out,
        "  wire replay: {} ops in {:.1} ms, digest {:016x} ({})",
        b.trace_ops,
        b.replay_nanos as f64 / 1e6,
        b.replay_digest,
        if b.is_clean() { "clean" } else { "MISMATCHED" },
    );
    let _ = writeln!(
        out,
        "  session soak: {} open at peak (target {}) over {} connections, \
         {:.0} opens/s",
        b.sessions_peak,
        b.sessions_target,
        SOAK_WORKERS,
        b.opens_per_sec(),
    );
    let _ = writeln!(
        out,
        "  query storm: {} deep queries at peak load, {:.0} queries/s — {}",
        b.queries,
        b.queries_per_sec(),
        if b.pass() { "PASS" } else { "FAIL" },
    );
    out
}

/// Renders the scorecard object appended to `BENCH_<date>.json`.
pub fn scorecard_json(b: &DaemonBench, scale: Scale, date: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"daemon_throughput\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(out, "  \"shards\": {},", b.shards);
    let _ = writeln!(out, "  \"trace_ops\": {},", b.trace_ops);
    let _ = writeln!(out, "  \"replay_nanos\": {},", b.replay_nanos);
    let _ = writeln!(
        out,
        "  \"replay_digest\": \"{:016x}\",\n  \"replay_clean\": {},",
        b.replay_digest,
        b.is_clean()
    );
    let _ = writeln!(out, "  \"sessions_target\": {},", b.sessions_target);
    let _ = writeln!(out, "  \"sessions_peak\": {},", b.sessions_peak);
    let _ = writeln!(out, "  \"opens_per_sec\": {:.0},", b.opens_per_sec());
    let _ = writeln!(out, "  \"queries\": {},", b.queries);
    let _ = writeln!(out, "  \"queries_per_sec\": {:.0},", b.queries_per_sec());
    let _ = writeln!(
        out,
        "  \"acceptance\": {{\"sessions_bar\": 100000, \"pass\": {}}}",
        b.pass()
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_holds_the_bar() {
        let b = run(Scale::Quick, 2008);
        assert!(
            b.is_clean(),
            "{} wire-replay mismatches",
            b.replay_mismatches
        );
        assert!(
            b.sessions_peak >= b.sessions_target as u64,
            "peak {} below target {}",
            b.sessions_peak,
            b.sessions_target
        );
        assert!(b.queries_per_sec() > 0.0);
        assert!(b.pass());
        let json = scorecard_json(&b, Scale::Quick, "2026-01-01");
        assert!(json.contains("\"experiment\": \"daemon_throughput\""));
        assert!(json.contains("\"replay_clean\": true"));
    }
}
