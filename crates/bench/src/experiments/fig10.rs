//! Figure 10 — conciseness of the query result: the size (tuples) of the
//! deep provenance of each run's final output, per workflow class × run
//! kind × view family (UAdmin / UBio / UBlackBox).
//!
//! Shape targets from the paper: in small runs roughly 24 / 13 / 5 tuples;
//! in medium and large runs UBio returns ≈20% of UAdmin and ≈22× UBlackBox;
//! Class 4 (loops) benefits most (up to ~90% hidden).

use crate::workloads::Corpus;
use std::fmt::Write as _;
use zoom_gen::{RunKind, Summary, WorkflowClass};

/// One cell of the figure: a (class, kind) pair with mean tuples per view.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Run kind.
    pub kind: RunKind,
    /// Mean tuples under UAdmin.
    pub admin: f64,
    /// Mean tuples under UBio.
    pub bio: f64,
    /// Mean tuples under UBlackBox.
    pub black_box: f64,
}

/// Computes all 12 cells.
pub fn run(corpus: &Corpus) -> Vec<Cell> {
    let mut cells = Vec::new();
    for class in WorkflowClass::ALL {
        for kind in RunKind::ALL {
            let mut admin = Vec::new();
            let mut bio = Vec::new();
            let mut bb = Vec::new();
            for w in corpus.workflows.iter().filter(|w| w.class == class) {
                for (k, runs) in &w.runs {
                    if *k != kind {
                        continue;
                    }
                    for &rid in runs {
                        let q = |view| {
                            corpus
                                .zoom
                                .deep_provenance_of_final_output(rid, view)
                                .expect("final output visible at every level")
                                .tuples() as f64
                        };
                        admin.push(q(w.admin));
                        bio.push(q(w.bio));
                        bb.push(q(w.black_box));
                    }
                }
            }
            cells.push(Cell {
                class,
                kind,
                admin: Summary::of(&admin).mean,
                bio: Summary::of(&bio).mean,
                black_box: Summary::of(&bb).mean,
            });
        }
    }
    cells
}

/// Renders Figure 10 as a table (the paper plots it as log-scale bars).
pub fn report(corpus: &Corpus) -> String {
    let cells = run(corpus);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 10 — size of deep-provenance query result (tuples, mean)"
    );
    let _ = writeln!(
        out,
        "{:<20} {:<14} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "class", "run kind", "UAdmin", "UBio", "UBlackBox", "bio/admin", "bio/blackbox"
    );
    for c in &cells {
        let _ = writeln!(
            out,
            "{:<20} {:<14} {:>10.1} {:>10.1} {:>10.1} {:>10.0}% {:>11.1}x",
            c.class.label(),
            c.kind.label(),
            c.admin,
            c.bio,
            c.black_box,
            100.0 * c.bio / c.admin,
            c.bio / c.black_box
        );
    }

    // The paper's headline aggregates.
    let agg = |kind: RunKind, f: &dyn Fn(&Cell) -> f64| {
        Summary::of(
            &cells
                .iter()
                .filter(|c| c.kind == kind)
                .map(f)
                .collect::<Vec<_>>(),
        )
        .mean
    };
    let _ = writeln!(
        out,
        "\nsmall runs   : avg tuples {:.0} / {:.0} / {:.0} (paper: 24 / 13 / 5)",
        agg(RunKind::Small, &|c| c.admin),
        agg(RunKind::Small, &|c| c.bio),
        agg(RunKind::Small, &|c| c.black_box)
    );
    for kind in [RunKind::Medium, RunKind::Large] {
        let _ = writeln!(
            out,
            "{:<13}: UBio = {:.0}% of UAdmin, {:.0}x UBlackBox (paper: ~20%, ~22x)",
            kind.label(),
            100.0 * agg(kind, &|c| c.bio) / agg(kind, &|c| c.admin),
            agg(kind, &|c| c.bio) / agg(kind, &|c| c.black_box)
        );
    }
    // Class 4 hiding.
    let loops_hidden = Summary::of(
        &cells
            .iter()
            .filter(|c| c.class == WorkflowClass::Loop && c.kind != RunKind::Small)
            .map(|c| 100.0 * (1.0 - c.bio / c.admin))
            .collect::<Vec<_>>(),
    )
    .mean;
    let _ = writeln!(
        out,
        "Class4 (loops): UBio hides {loops_hidden:.0}% of UAdmin tuples on medium/large runs \
         (paper: up to 90%)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{build_corpus, Scale};

    #[test]
    fn ordering_holds_everywhere() {
        let corpus = build_corpus(Scale::Quick, 10);
        let cells = run(&corpus);
        assert_eq!(cells.len(), 12);
        for c in &cells {
            assert!(
                c.admin >= c.bio && c.bio >= c.black_box,
                "view ordering violated: {c:?}"
            );
            assert!(c.black_box >= 1.0);
        }
    }

    #[test]
    fn larger_runs_return_more_tuples() {
        let corpus = build_corpus(Scale::Quick, 11);
        let cells = run(&corpus);
        for class in WorkflowClass::ALL {
            let get = |kind| {
                cells
                    .iter()
                    .find(|c| c.class == class && c.kind == kind)
                    .unwrap()
                    .admin
            };
            assert!(get(RunKind::Large) > get(RunKind::Small), "{class}");
        }
    }
}
