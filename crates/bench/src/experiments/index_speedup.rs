//! Reachability-index speedup — a Figure 10/11-style variant for the
//! warehouse's query engine: mean deep-provenance time over a sample of
//! the run's data objects per run kind and view family, answered (a) by
//! the seed per-query BFS scan, (b) by projecting the per-run bitset
//! base-closure index, and (c) by the tree-cover interval-label index —
//! plus the one-time build cost each index amortizes.
//!
//! The paper's Section V-B observation is that computing base provenance
//! once and reusing it across view switches turns seconds into ≈13 ms;
//! this experiment shows the embedded analog. The seed path walks *and
//! collects over* the whole run graph on every query, so its cost is
//! `O(run)` regardless of the answer; both indexed paths touch only the
//! members of one precomputed closure, so their cost is `O(answer)`.
//! Averaged over the data objects users actually click (most of which
//! derive from a fraction of the run), the gap widens with run size.
//!
//! The [`scaling`] sweep is the memory half of the story: on adversarial
//! shapes from 1k to 1M steps it records build time, resident index bytes,
//! and point/closure query latency for all three backends (the `O(n²/64)`
//! bitset is measured up to 100k steps and reported analytically at 1M),
//! plus the cost of incrementally appending one step to the label index
//! versus rebuilding it. `scaling_json` renders the sweep as the
//! `BENCH_<date>.json` scorecard.

use crate::workloads::{Corpus, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use zoom_gen::{
    deep_chain, diamond_lattice, generate_run, generate_spec, wide_fanout, RunGenConfig, RunKind,
    SpecGenConfig, Summary, WorkflowClass,
};
use zoom_model::{Producer, UserView, ViewRun, WorkflowRun};
use zoom_warehouse::{
    deep_provenance_bfs, deep_provenance_indexed, deep_provenance_labeled, LabelIndex,
    ProvenanceIndex,
};

/// Mean per-query nanoseconds for one (run kind, view family) cell.
///
/// The `early_*` triple times the cheapest interesting query — the
/// step-produced data object with the smallest ancestor closure — where
/// the seed path's `O(run)` collection scan is pure overhead. The mixed
/// triple averages a stride sample of all data objects (final output
/// included), which the large sorted answers dominate.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Seed path over the mixed sample: whole-graph BFS + scan per query.
    pub bfs_nanos: f64,
    /// Bitset-indexed path over the mixed sample (index warm).
    pub indexed_nanos: f64,
    /// Interval-label path over the mixed sample (labels warm).
    pub labeled_nanos: f64,
    /// Seed path, first step-produced object only.
    pub early_bfs_nanos: f64,
    /// Bitset-indexed path, first step-produced object only.
    pub early_indexed_nanos: f64,
    /// Interval-label path, first step-produced object only.
    pub early_labeled_nanos: f64,
}

impl Cell {
    /// `bfs / indexed` over the mixed sample.
    pub fn speedup(&self) -> f64 {
        self.bfs_nanos / self.indexed_nanos
    }

    /// `bfs / indexed` for the small-closure query.
    pub fn early_speedup(&self) -> f64 {
        self.early_bfs_nanos / self.early_indexed_nanos
    }

    /// `bfs / labeled` over the mixed sample.
    pub fn labeled_speedup(&self) -> f64 {
        self.bfs_nanos / self.labeled_nanos
    }

    /// `bfs / labeled` for the small-closure query.
    pub fn early_labeled_speedup(&self) -> f64 {
        self.early_bfs_nanos / self.early_labeled_nanos
    }
}

/// The experiment's outcome: a kind × view-family grid plus build costs.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Cells in `RunKind::ALL` × (UAdmin, UBio, UBlackBox) order.
    pub cells: Vec<(RunKind, [Cell; 3])>,
    /// Mean bitset index build nanos per run kind, in `RunKind::ALL` order.
    pub build_nanos: [f64; 3],
    /// Mean label index build nanos per run kind, in `RunKind::ALL` order.
    pub label_build_nanos: [f64; 3],
}

/// Timings from the regime the index is built for: one deep Loop-class
/// run (thousands of nodes, long iteration chains, small per-step
/// fan-in) queried at the smallest-closure step output, where the seed
/// path's per-query whole-graph BFS and collection scan are pure
/// overhead. The corpus grid averages over whatever run sizes the scale
/// produced; this fixture pins the run size so the asymptotic gap is
/// visible at any scale.
#[derive(Clone, Copy, Debug)]
pub struct DeepRunResult {
    /// Run-graph nodes in the generated fixture.
    pub nodes: usize,
    /// Seed-path nanoseconds per query.
    pub bfs_nanos: f64,
    /// Bitset-indexed nanoseconds per query (index warm).
    pub indexed_nanos: f64,
    /// Interval-label nanoseconds per query (labels warm).
    pub labeled_nanos: f64,
    /// One-time bitset index build nanoseconds.
    pub build_nanos: f64,
    /// One-time label index build nanoseconds.
    pub label_build_nanos: f64,
}

impl DeepRunResult {
    /// `bfs / indexed`.
    pub fn speedup(&self) -> f64 {
        self.bfs_nanos / self.indexed_nanos
    }

    /// `bfs / labeled`.
    pub fn labeled_speedup(&self) -> f64 {
        self.bfs_nanos / self.labeled_nanos
    }
}

/// Generates the deep Loop-class fixture and times both strategies on its
/// smallest-closure step output (answers checked identical first).
pub fn deep_run(reps: u32) -> DeepRunResult {
    let mut rng = StdRng::seed_from_u64(9);
    let spec = generate_spec(
        "idx-deep",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let cfg = RunGenConfig {
        user_input: (1, 10),
        data_per_step: (1, 2),
        loop_iterations: (200, 400),
        max_nodes: 30_000,
        max_edges: 30_000,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid");
    let vr = ViewRun::new(&run, &UserView::admin(&spec));
    let started = Instant::now();
    let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
    let build_nanos = started.elapsed().as_nanos() as f64;
    let started = Instant::now();
    let labels = LabelIndex::build(&run).expect("generated runs are acyclic");
    let label_build_nanos = started.elapsed().as_nanos() as f64;
    let target = run
        .all_data()
        .iter()
        .copied()
        .filter(|&d| matches!(run.producer_of(d), Some(Producer::Step(_))))
        .min_by_key(|&d| {
            run.producer_node(d)
                .map_or(usize::MAX, |n| index.ancestors(n).count())
        })
        .expect("runs have step outputs");
    let oracle = deep_provenance_bfs(&run, &vr, target);
    assert_eq!(
        deep_provenance_indexed(&run, &vr, &index, target),
        oracle,
        "strategies disagree — timings would be meaningless"
    );
    assert_eq!(
        deep_provenance_labeled(&run, &vr, &labels, target),
        oracle,
        "strategies disagree — timings would be meaningless"
    );
    let bfs_nanos = time_queries(reps, || {
        deep_provenance_bfs(&run, &vr, target)
            .unwrap()
            .expect("visible");
    });
    let indexed_nanos = time_queries(reps, || {
        deep_provenance_indexed(&run, &vr, &index, target)
            .unwrap()
            .expect("visible");
    });
    let labeled_nanos = time_queries(reps, || {
        deep_provenance_labeled(&run, &vr, &labels, target)
            .unwrap()
            .expect("visible");
    });
    DeepRunResult {
        nodes: run.graph().node_count(),
        bfs_nanos,
        indexed_nanos,
        labeled_nanos,
        build_nanos,
        label_build_nanos,
    }
}

/// One timing sample: (kind index, view index, [bfs, indexed, labeled,
/// early bfs, early indexed, early labeled]) nanoseconds.
type Sample = (usize, usize, [f64; 6]);

fn time_queries(reps: u32, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed().as_nanos() as f64 / reps as f64
}

/// Runs the experiment over the corpus: for each workflow and run kind, a
/// stride sample of the first run's visible data objects (final output
/// included) is queried `reps` times through each view family, once per
/// strategy; the index is built once per run (and that build is timed
/// separately). Both strategies' answers are checked identical before
/// timing is trusted.
pub fn run(corpus: &Corpus, scale: Scale) -> Grid {
    let reps = match scale {
        Scale::Paper => 40,
        Scale::Quick => 5,
    };
    const TARGETS: usize = 24;
    let mut samples: Vec<Sample> = Vec::new();
    let mut builds: Vec<(usize, f64, f64)> = Vec::new();
    let wh = corpus.zoom.warehouse();

    for w in &corpus.workflows {
        for (ki, kind) in RunKind::ALL.into_iter().enumerate() {
            let Some(&rid) = w
                .runs
                .iter()
                .find(|(k, _)| *k == kind)
                .and_then(|(_, r)| r.first())
            else {
                continue;
            };
            let run = wh.run(rid).expect("loaded");
            let data = run.all_data();

            let started = Instant::now();
            let index = ProvenanceIndex::build(run).expect("generated runs are acyclic");
            let bitset_build = started.elapsed().as_nanos() as f64;
            let started = Instant::now();
            let labels = LabelIndex::build(run).expect("generated runs are acyclic");
            builds.push((ki, bitset_build, started.elapsed().as_nanos() as f64));

            for (vi, view) in [w.admin, w.bio, w.black_box].into_iter().enumerate() {
                let vr = wh.view_run(rid, view).expect("materializes");
                let mut targets: Vec<_> = data
                    .iter()
                    .copied()
                    .step_by((data.len() / TARGETS).max(1))
                    .filter(|&d| vr.is_visible(d))
                    .collect();
                targets.push(run.final_outputs()[0]);
                for &d in &targets {
                    let oracle = deep_provenance_bfs(run, &vr, d);
                    assert_eq!(
                        deep_provenance_indexed(run, &vr, &index, d),
                        oracle,
                        "strategies disagree — timings would be meaningless"
                    );
                    assert_eq!(
                        deep_provenance_labeled(run, &vr, &labels, d),
                        oracle,
                        "strategies disagree — timings would be meaningless"
                    );
                }
                let per = targets.len() as f64;
                let bfs = time_queries(reps, || {
                    for &d in &targets {
                        deep_provenance_bfs(run, &vr, d).unwrap().expect("visible");
                    }
                }) / per;
                let indexed = time_queries(reps, || {
                    for &d in &targets {
                        deep_provenance_indexed(run, &vr, &index, d)
                            .unwrap()
                            .expect("visible");
                    }
                }) / per;
                let labeled = time_queries(reps, || {
                    for &d in &targets {
                        deep_provenance_labeled(run, &vr, &labels, d)
                            .unwrap()
                            .expect("visible");
                    }
                }) / per;

                // The small-closure bracket: the visible step-produced
                // object with the smallest ancestor closure.
                let early = data
                    .iter()
                    .copied()
                    .filter(|&x| {
                        vr.is_visible(x)
                            && matches!(run.producer_of(x), Some(zoom_model::Producer::Step(_)))
                    })
                    .min_by_key(|&x| {
                        run.producer_node(x)
                            .map_or(usize::MAX, |n| index.ancestors(n).count())
                    })
                    .expect("runs have visible step outputs");
                let early_reps = reps * 8;
                let early_bfs = time_queries(early_reps, || {
                    deep_provenance_bfs(run, &vr, early)
                        .unwrap()
                        .expect("visible");
                });
                let early_indexed = time_queries(early_reps, || {
                    deep_provenance_indexed(run, &vr, &index, early)
                        .unwrap()
                        .expect("visible");
                });
                let early_labeled = time_queries(early_reps, || {
                    deep_provenance_labeled(run, &vr, &labels, early)
                        .unwrap()
                        .expect("visible");
                });
                samples.push((
                    ki,
                    vi,
                    [
                        bfs,
                        indexed,
                        labeled,
                        early_bfs,
                        early_indexed,
                        early_labeled,
                    ],
                ));
            }
        }
    }

    let cells = RunKind::ALL
        .into_iter()
        .enumerate()
        .map(|(ki, kind)| {
            let cell = |vi: usize| {
                let mean = |slot: usize| {
                    Summary::of(
                        &samples
                            .iter()
                            .filter(|&&(k, v, _)| k == ki && v == vi)
                            .map(|&(_, _, t)| t[slot])
                            .collect::<Vec<_>>(),
                    )
                    .mean
                };
                Cell {
                    bfs_nanos: mean(0),
                    indexed_nanos: mean(1),
                    labeled_nanos: mean(2),
                    early_bfs_nanos: mean(3),
                    early_indexed_nanos: mean(4),
                    early_labeled_nanos: mean(5),
                }
            };
            (kind, [cell(0), cell(1), cell(2)])
        })
        .collect();

    let build_mean = |ki: usize, pick: fn(&(usize, f64, f64)) -> f64| {
        Summary::of(
            &builds
                .iter()
                .filter(|&&(k, ..)| k == ki)
                .map(pick)
                .collect::<Vec<_>>(),
        )
        .mean
    };
    Grid {
        cells,
        build_nanos: [
            build_mean(0, |b| b.1),
            build_mean(1, |b| b.1),
            build_mean(2, |b| b.1),
        ],
        label_build_nanos: [
            build_mean(0, |b| b.2),
            build_mean(1, |b| b.2),
            build_mean(2, |b| b.2),
        ],
    }
}

/// Renders the speedup grid.
pub fn report(corpus: &Corpus, scale: Scale) -> String {
    let grid = run(corpus, scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "INDEX SPEEDUP — warm deep provenance, seed BFS scan vs. bitset \
         base-closure index vs. interval labels (mean µs/query, scale: \
         {scale:?}; `mixed` = stride sample of all data incl. final output, \
         `early` = smallest-closure step output)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10} {:>6} {:>10} {:>6} {:>9} {:>6} {:>9} {:>6} {:>9} {:>9}",
        "kind",
        "view",
        "mixed bfs",
        "bitset",
        "x",
        "labels",
        "x",
        "early bfs",
        "bit x",
        "lbl x",
        "",
        "bld µs",
        "lbl µs"
    );
    for (row, (kind, cells)) in grid.cells.iter().enumerate() {
        for (name, c) in ["UAdmin", "UBio", "UBlackBox"].iter().zip(cells) {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>10.2} {:>10.2} {:>5.1}x {:>10.2} {:>5.1}x {:>9.2} {:>5.1}x {:>9.1}x {:>6} {:>9.1} {:>9.1}",
                format!("{kind:?}"),
                name,
                c.bfs_nanos / 1e3,
                c.indexed_nanos / 1e3,
                c.speedup(),
                c.labeled_nanos / 1e3,
                c.labeled_speedup(),
                c.early_bfs_nanos / 1e3,
                c.early_speedup(),
                c.early_labeled_speedup(),
                "",
                grid.build_nanos[row] / 1e3,
                grid.label_build_nanos[row] / 1e3,
            );
        }
    }
    let large = &grid.cells.last().expect("three kinds").1;
    let _ = writeln!(
        out,
        "\nLarge-run UAdmin: bitset {:.1}x / labels {:.1}x on small-closure \
         queries, {:.1}x / {:.1}x on the mixed sample (bitset build repays \
         itself after ~{:.0} mixed queries, any view)",
        large[0].early_speedup(),
        large[0].early_labeled_speedup(),
        large[0].speedup(),
        large[0].labeled_speedup(),
        (grid.build_nanos[2] / (large[0].bfs_nanos - large[0].indexed_nanos).max(1.0)).ceil()
    );
    let deep = deep_run(match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 200,
    });
    let _ = writeln!(
        out,
        "Deep Loop run ({} nodes), smallest-closure query: {:.2} µs seed BFS vs \
         {:.2} µs bitset vs {:.2} µs labels — {:.1}x / {:.1}x (bitset built in \
         {:.0} µs, labels in {:.0} µs)",
        deep.nodes,
        deep.bfs_nanos / 1e3,
        deep.indexed_nanos / 1e3,
        deep.labeled_nanos / 1e3,
        deep.speedup(),
        deep.labeled_speedup(),
        deep.build_nanos / 1e3,
        deep.label_build_nanos / 1e3,
    );
    out
}

// ---------------------------------------------------------------------------
// Scaling sweep: adversarial shapes, 1k..1M steps, three backends.
// ---------------------------------------------------------------------------

/// Per-backend measurements for one sweep entry. `memory_bytes` is resident
/// index memory (0 for BFS, which keeps no index); when `measured` is false
/// the backend was too large to build at this size and only the analytic
/// memory figure is reported (build/query fields are 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendSample {
    /// One-time index build nanoseconds (0 for BFS).
    pub build_nanos: f64,
    /// Resident (or, unmeasured, analytic) index bytes.
    pub memory_bytes: u64,
    /// Smallest-closure deep-provenance query, nanoseconds.
    pub point_query_nanos: f64,
    /// Final-output (whole-graph closure) deep-provenance query, nanoseconds.
    pub closure_query_nanos: f64,
    /// Whether build/query numbers were actually measured at this size.
    pub measured: bool,
}

/// One (shape, size) row of the scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingEntry {
    /// Generator name: `deep_chain`, `wide_fanout`, or `diamond_lattice`.
    pub shape: &'static str,
    /// Steps requested from the generator.
    pub steps: usize,
    /// Run-graph nodes (steps + input + output).
    pub nodes: usize,
    /// Run-graph edges.
    pub edges: usize,
    /// BFS, bitset, and label backend samples, in that order.
    pub bfs: BackendSample,
    /// The `O(n²/64)` bitset closure index.
    pub bitset: BackendSample,
    /// The tree-cover interval-label index.
    pub labels: BackendSample,
    /// Total intervals held by the label index.
    pub label_intervals: u64,
    /// Nanoseconds to incrementally append one step to the label index.
    pub append_nanos: f64,
}

impl ScalingEntry {
    /// `bitset bytes / label bytes` — the headline memory win.
    pub fn memory_ratio(&self) -> f64 {
        self.bitset.memory_bytes as f64 / (self.labels.memory_bytes as f64).max(1.0)
    }

    /// `label point latency / bitset point latency` (≤ 2.0 is the bar).
    pub fn point_latency_ratio(&self) -> f64 {
        self.labels.point_query_nanos / self.bitset.point_query_nanos.max(1.0)
    }

    /// `label rebuild / single append` — the incremental-maintenance win.
    pub fn append_speedup(&self) -> f64 {
        self.labels.build_nanos / self.append_nanos.max(1.0)
    }
}

/// Bitset index bytes for an `n`-node graph, by construction: two bitset
/// rows (ancestors + descendants) of `⌈n/64⌉` words per node.
fn analytic_bitset_bytes(n: usize) -> u64 {
    (2 * n * n.div_ceil(64) * 8) as u64
}

/// Builds every adversarial shape at each sweep size and measures all
/// three backends. The bitset is only built while its `O(n²/64)` footprint
/// stays under ~2.5 GB (≤ 100k steps); past that its memory is analytic
/// and its timings are omitted.
pub fn scaling(scale: Scale) -> Vec<ScalingEntry> {
    let sizes: &[usize] = match scale {
        Scale::Paper => &[1_000, 10_000, 100_000, 1_000_000],
        Scale::Quick => &[1_000, 10_000],
    };
    const BITSET_MAX_STEPS: usize = 100_000;
    let mut entries = Vec::new();
    for &steps in sizes {
        for shape in ["deep_chain", "wide_fanout", "diamond_lattice"] {
            // The lattice shape is quadratic-ish in closure sizes per
            // column; cap its extent so the sweep stays tractable while
            // still exercising the non-tree-edge worst case.
            let built = match shape {
                "deep_chain" => deep_chain(steps),
                "wide_fanout" => wide_fanout(steps),
                _ => diamond_lattice(steps / 64, 64),
            };
            entries.push(measure_shape(
                shape,
                steps,
                built,
                steps <= BITSET_MAX_STEPS,
            ));
        }
    }
    entries
}

fn measure_shape(
    shape: &'static str,
    steps: usize,
    (spec, run): (zoom_model::WorkflowSpec, WorkflowRun),
    build_bitset: bool,
) -> ScalingEntry {
    let nodes = run.graph().node_count();
    let edges = run.graph().edge_count();
    let vr = ViewRun::new(&run, &UserView::admin(&spec));

    // Reps scale down with size so the sweep finishes in minutes; the
    // point query is cheap for the indexes but O(run) for BFS.
    let point_reps = (2_000_000 / steps.max(1)).clamp(4, 400) as u32;
    let closure_reps = (200_000 / steps.max(1)).clamp(1, 40) as u32;

    // Point target: the step-produced object with the smallest ancestor
    // closure among an early sample (exact argmin would be O(n²) here).
    let labels_started = Instant::now();
    let labels = LabelIndex::build(&run).expect("adversarial runs are acyclic");
    let label_build = labels_started.elapsed().as_nanos() as f64;
    let all = run.all_data();
    let point = all
        .iter()
        .copied()
        .filter(|&d| matches!(run.producer_of(d), Some(Producer::Step(_))))
        .take(64)
        .min_by_key(|&d| {
            run.producer_node(d)
                .map_or(usize::MAX, |n| labels.ancestors_of(n).count())
        })
        .expect("adversarial runs have step outputs");
    let closure = run.final_outputs()[0];

    let mut bfs = BackendSample {
        measured: true,
        ..Default::default()
    };
    let point_oracle = deep_provenance_bfs(&run, &vr, point);
    let closure_oracle = deep_provenance_bfs(&run, &vr, closure);
    bfs.point_query_nanos = time_queries(point_reps, || {
        deep_provenance_bfs(&run, &vr, point)
            .unwrap()
            .expect("visible");
    });
    bfs.closure_query_nanos = time_queries(closure_reps, || {
        deep_provenance_bfs(&run, &vr, closure)
            .unwrap()
            .expect("visible");
    });

    let mut labels_sample = BackendSample {
        build_nanos: label_build,
        memory_bytes: labels.memory_bytes() as u64,
        measured: true,
        ..Default::default()
    };
    assert_eq!(
        deep_provenance_labeled(&run, &vr, &labels, point),
        point_oracle,
        "label backend diverges on {shape}@{steps}"
    );
    assert_eq!(
        deep_provenance_labeled(&run, &vr, &labels, closure),
        closure_oracle,
        "label backend diverges on {shape}@{steps}"
    );
    labels_sample.point_query_nanos = time_queries(point_reps, || {
        deep_provenance_labeled(&run, &vr, &labels, point)
            .unwrap()
            .expect("visible");
    });
    labels_sample.closure_query_nanos = time_queries(closure_reps, || {
        deep_provenance_labeled(&run, &vr, &labels, closure)
            .unwrap()
            .expect("visible");
    });

    // Incremental append: one new step fed by the most recently added
    // step node, timed against the from-scratch build above.
    let append_nanos = {
        let mut grown = labels.clone();
        let pred = nodes - 1;
        let started = Instant::now();
        grown.append_node(&[pred], &[]);
        started.elapsed().as_nanos() as f64
    };

    let mut bitset = BackendSample {
        memory_bytes: analytic_bitset_bytes(nodes),
        measured: build_bitset,
        ..Default::default()
    };
    if build_bitset {
        let started = Instant::now();
        let index = ProvenanceIndex::build(&run).expect("adversarial runs are acyclic");
        bitset.build_nanos = started.elapsed().as_nanos() as f64;
        bitset.memory_bytes = index.memory_bytes() as u64;
        assert_eq!(
            deep_provenance_indexed(&run, &vr, &index, point),
            point_oracle,
            "bitset backend diverges on {shape}@{steps}"
        );
        assert_eq!(
            deep_provenance_indexed(&run, &vr, &index, closure),
            closure_oracle,
            "bitset backend diverges on {shape}@{steps}"
        );
        bitset.point_query_nanos = time_queries(point_reps, || {
            deep_provenance_indexed(&run, &vr, &index, point)
                .unwrap()
                .expect("visible");
        });
        bitset.closure_query_nanos = time_queries(closure_reps, || {
            deep_provenance_indexed(&run, &vr, &index, closure)
                .unwrap()
                .expect("visible");
        });
    }

    ScalingEntry {
        shape,
        steps,
        nodes,
        edges,
        bfs,
        bitset,
        labels: labels_sample,
        label_intervals: labels.interval_count(),
        append_nanos,
    }
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, from the system clock alone
/// (days-to-civil conversion per Howard Hinnant's algorithm).
pub fn today_stamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn backend_json(out: &mut String, name: &str, s: &BackendSample) {
    let _ = write!(
        out,
        "\"{name}\":{{\"measured\":{},\"build_nanos\":{:.0},\"memory_bytes\":{},\
         \"point_query_nanos\":{:.0},\"closure_query_nanos\":{:.0}}}",
        s.measured, s.build_nanos, s.memory_bytes, s.point_query_nanos, s.closure_query_nanos
    );
}

/// Renders the sweep as the `BENCH_<date>.json` scorecard. The
/// `acceptance` block tracks the 100k-step chain (falling back to the
/// largest measured-bitset chain entry at smaller scales): labels must
/// hold ≥ 10× less memory than the bitset at ≤ 2× its point-query
/// latency.
pub fn scaling_json(entries: &[ScalingEntry], scale: Scale, date: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"index_scaling\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shape\":\"{}\",\"steps\":{},\"nodes\":{},\"edges\":{},\
             \"label_intervals\":{},\"append_nanos\":{:.0},\
             \"append_speedup\":{:.1},\"memory_ratio\":{:.1},\
             \"point_latency_ratio\":{:.2},",
            e.shape,
            e.steps,
            e.nodes,
            e.edges,
            e.label_intervals,
            e.append_nanos,
            e.append_speedup(),
            e.memory_ratio(),
            if e.bitset.measured {
                e.point_latency_ratio()
            } else {
                0.0
            },
        );
        backend_json(&mut out, "bfs", &e.bfs);
        out.push(',');
        backend_json(&mut out, "bitset", &e.bitset);
        out.push(',');
        backend_json(&mut out, "labels", &e.labels);
        let _ = writeln!(out, "}}{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let anchor = entries
        .iter()
        .filter(|e| e.shape == "deep_chain" && e.bitset.measured)
        .max_by_key(|e| e.steps);
    match anchor {
        Some(e) => {
            let mem = e.memory_ratio();
            let lat = e.point_latency_ratio();
            let _ = writeln!(
                out,
                "  \"acceptance\": {{\"anchor_steps\": {}, \"memory_ratio\": {mem:.1}, \
                 \"point_latency_ratio\": {lat:.2}, \"pass\": {}}}",
                e.steps,
                mem >= 10.0 && lat <= 2.0
            );
        }
        None => {
            let _ = writeln!(out, "  \"acceptance\": null");
        }
    }
    out.push('}');
    out.push('\n');
    out
}

/// Renders the scaling sweep as a table (the human half of the scorecard).
pub fn scaling_report(entries: &[ScalingEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "INDEX SCALING — adversarial shapes, three backends (build ms / index \
         MB / point µs / closure ms; `-` = not built at this size, bitset \
         memory then analytic)"
    );
    let _ = writeln!(
        out,
        "{:>16} {:>9} {:>9} | {:>8} {:>10} | {:>8} {:>8} {:>8} {:>10} | {:>8} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "shape", "steps", "edges", "bfs ptµs", "bfs cl ms",
        "bit b ms", "bit MB", "bit ptµs", "bit cl ms",
        "lbl b ms", "lbl MB", "lbl ptµs", "lbl cl ms", "mem x", "append x"
    );
    for e in entries {
        let opt = |cond: bool, v: f64| {
            if cond {
                format!("{v:.2}")
            } else {
                "-".to_string()
            }
        };
        let _ = writeln!(
            out,
            "{:>16} {:>9} {:>9} | {:>8.2} {:>10.2} | {:>8} {:>8.1} {:>8} {:>10} | {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>7.0}x {:>8.0}x",
            e.shape,
            e.steps,
            e.edges,
            e.bfs.point_query_nanos / 1e3,
            e.bfs.closure_query_nanos / 1e6,
            opt(e.bitset.measured, e.bitset.build_nanos / 1e6),
            e.bitset.memory_bytes as f64 / 1e6,
            opt(e.bitset.measured, e.bitset.point_query_nanos / 1e3),
            opt(e.bitset.measured, e.bitset.closure_query_nanos / 1e6),
            e.labels.build_nanos / 1e6,
            e.labels.memory_bytes as f64 / 1e6,
            e.labels.point_query_nanos / 1e3,
            e.labels.closure_query_nanos / 1e6,
            e.memory_ratio(),
            e.append_speedup(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn grid_is_complete_and_sane() {
        let corpus = build_corpus(Scale::Quick, 50);
        let grid = run(&corpus, Scale::Quick);
        assert_eq!(grid.cells.len(), 3);
        for (kind, cells) in &grid.cells {
            for c in cells {
                assert!(c.bfs_nanos > 0.0, "{kind:?} bfs not measured");
                assert!(c.indexed_nanos > 0.0, "{kind:?} indexed not measured");
                assert!(c.labeled_nanos > 0.0, "{kind:?} labels not measured");
                assert!(c.speedup().is_finite());
                assert!(c.early_speedup().is_finite());
                assert!(c.labeled_speedup().is_finite());
                assert!(c.early_labeled_speedup().is_finite());
            }
        }
        for b in grid.build_nanos.into_iter().chain(grid.label_build_nanos) {
            assert!(b > 0.0);
        }
    }

    #[test]
    fn scaling_sweep_quick_holds_the_bar() {
        let entries = scaling(Scale::Quick);
        assert_eq!(entries.len(), 6); // 3 shapes × 2 quick sizes
        for e in &entries {
            assert!(e.bfs.measured && e.bitset.measured && e.labels.measured);
            assert!(e.labels.memory_bytes > 0 && e.bitset.memory_bytes > 0);
            // The memory win is asymptotic (bitset O(n²/64) vs labels
            // O(n·avg_labels)): chains and fan-outs clear 10× from 10k
            // steps; the width-64 lattice worst case carries ~64 intervals
            // per label and only beats the bitset outright here, clearing
            // 10× at the 100k acceptance anchor of the paper-scale sweep.
            if e.steps >= 10_000 {
                let bar = if e.shape == "diamond_lattice" {
                    1.0
                } else {
                    10.0
                };
                assert!(
                    e.memory_ratio() >= bar,
                    "{}@{}: labels use too much memory ({}B vs bitset {}B)",
                    e.shape,
                    e.steps,
                    e.labels.memory_bytes,
                    e.bitset.memory_bytes
                );
            }
        }
        let json = scaling_json(&entries, Scale::Quick, "2026-01-01");
        assert!(json.contains("\"experiment\": \"index_scaling\""));
        assert!(json.contains("\"acceptance\""));
        assert!(json.contains("\"deep_chain\""));
    }

    #[test]
    fn today_stamp_is_iso_date() {
        let s = today_stamp();
        assert_eq!(s.len(), 10, "{s}");
        assert_eq!(s.as_bytes()[4], b'-');
        assert_eq!(s.as_bytes()[7], b'-');
    }

    #[test]
    fn deep_run_fixture_is_deep() {
        let deep = deep_run(20);
        assert!(
            deep.nodes > 1_000,
            "fixture too small: {} nodes",
            deep.nodes
        );
        assert!(deep.bfs_nanos > 0.0 && deep.indexed_nanos > 0.0 && deep.build_nanos > 0.0);
        assert!(deep.speedup().is_finite());
    }
}
