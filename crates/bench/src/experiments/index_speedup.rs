//! Base-closure index speedup — a Figure 10/11-style variant for the
//! warehouse's query engine: mean deep-provenance time over a sample of
//! the run's data objects per run kind and view family, answered (a) by
//! the seed per-query BFS scan and (b) by projecting the per-run
//! base-closure index, plus the one-time index build cost those savings
//! amortize.
//!
//! The paper's Section V-B observation is that computing base provenance
//! once and reusing it across view switches turns seconds into ≈13 ms;
//! this experiment shows the embedded analog. The seed path walks *and
//! collects over* the whole run graph on every query, so its cost is
//! `O(run)` regardless of the answer; the indexed path touches only the
//! members of one precomputed closure row, so its cost is `O(answer)`.
//! Averaged over the data objects users actually click (most of which
//! derive from a fraction of the run), the gap widens with run size.

use crate::workloads::{Corpus, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use zoom_gen::{
    generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, Summary, WorkflowClass,
};
use zoom_model::{Producer, UserView, ViewRun};
use zoom_warehouse::{deep_provenance_bfs, deep_provenance_indexed, ProvenanceIndex};

/// Mean per-query nanoseconds for one (run kind, view family) cell.
///
/// The `early_*` pair times the cheapest interesting query — the
/// step-produced data object with the smallest ancestor closure — where
/// the seed path's `O(run)` collection scan is pure overhead. The mixed pair
/// averages a stride sample of all data objects (final output included),
/// which the large sorted answers dominate.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Seed path over the mixed sample: whole-graph BFS + scan per query.
    pub bfs_nanos: f64,
    /// Indexed path over the mixed sample (index warm).
    pub indexed_nanos: f64,
    /// Seed path, first step-produced object only.
    pub early_bfs_nanos: f64,
    /// Indexed path, first step-produced object only.
    pub early_indexed_nanos: f64,
}

impl Cell {
    /// `bfs / indexed` over the mixed sample.
    pub fn speedup(&self) -> f64 {
        self.bfs_nanos / self.indexed_nanos
    }

    /// `bfs / indexed` for the small-closure query.
    pub fn early_speedup(&self) -> f64 {
        self.early_bfs_nanos / self.early_indexed_nanos
    }
}

/// The experiment's outcome: a kind × view-family grid plus build costs.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Cells in `RunKind::ALL` × (UAdmin, UBio, UBlackBox) order.
    pub cells: Vec<(RunKind, [Cell; 3])>,
    /// Mean index build nanos per run kind, in `RunKind::ALL` order.
    pub build_nanos: [f64; 3],
}

/// Timings from the regime the index is built for: one deep Loop-class
/// run (thousands of nodes, long iteration chains, small per-step
/// fan-in) queried at the smallest-closure step output, where the seed
/// path's per-query whole-graph BFS and collection scan are pure
/// overhead. The corpus grid averages over whatever run sizes the scale
/// produced; this fixture pins the run size so the asymptotic gap is
/// visible at any scale.
#[derive(Clone, Copy, Debug)]
pub struct DeepRunResult {
    /// Run-graph nodes in the generated fixture.
    pub nodes: usize,
    /// Seed-path nanoseconds per query.
    pub bfs_nanos: f64,
    /// Indexed-path nanoseconds per query (index warm).
    pub indexed_nanos: f64,
    /// One-time index build nanoseconds.
    pub build_nanos: f64,
}

impl DeepRunResult {
    /// `bfs / indexed`.
    pub fn speedup(&self) -> f64 {
        self.bfs_nanos / self.indexed_nanos
    }
}

/// Generates the deep Loop-class fixture and times both strategies on its
/// smallest-closure step output (answers checked identical first).
pub fn deep_run(reps: u32) -> DeepRunResult {
    let mut rng = StdRng::seed_from_u64(9);
    let spec = generate_spec(
        "idx-deep",
        &SpecGenConfig::new(WorkflowClass::Loop, 20),
        &mut rng,
    );
    let cfg = RunGenConfig {
        user_input: (1, 10),
        data_per_step: (1, 2),
        loop_iterations: (200, 400),
        max_nodes: 30_000,
        max_edges: 30_000,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid");
    let vr = ViewRun::new(&run, &UserView::admin(&spec));
    let started = Instant::now();
    let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
    let build_nanos = started.elapsed().as_nanos() as f64;
    let target = run
        .all_data()
        .iter()
        .copied()
        .filter(|&d| matches!(run.producer_of(d), Some(Producer::Step(_))))
        .min_by_key(|&d| {
            run.producer_node(d)
                .map_or(usize::MAX, |n| index.ancestors(n).count())
        })
        .expect("runs have step outputs");
    assert_eq!(
        deep_provenance_indexed(&run, &vr, &index, target),
        deep_provenance_bfs(&run, &vr, target),
        "strategies disagree — timings would be meaningless"
    );
    let bfs_nanos = time_queries(reps, || {
        deep_provenance_bfs(&run, &vr, target)
            .unwrap()
            .expect("visible");
    });
    let indexed_nanos = time_queries(reps, || {
        deep_provenance_indexed(&run, &vr, &index, target)
            .unwrap()
            .expect("visible");
    });
    DeepRunResult {
        nodes: run.graph().node_count(),
        bfs_nanos,
        indexed_nanos,
        build_nanos,
    }
}

/// One timing sample: (kind index, view index, bfs, indexed, early bfs,
/// early indexed) nanoseconds.
type Sample = (usize, usize, f64, f64, f64, f64);

fn time_queries(reps: u32, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed().as_nanos() as f64 / reps as f64
}

/// Runs the experiment over the corpus: for each workflow and run kind, a
/// stride sample of the first run's visible data objects (final output
/// included) is queried `reps` times through each view family, once per
/// strategy; the index is built once per run (and that build is timed
/// separately). Both strategies' answers are checked identical before
/// timing is trusted.
pub fn run(corpus: &Corpus, scale: Scale) -> Grid {
    let reps = match scale {
        Scale::Paper => 40,
        Scale::Quick => 5,
    };
    const TARGETS: usize = 24;
    let mut samples: Vec<Sample> = Vec::new();
    let mut builds: Vec<(usize, f64)> = Vec::new();
    let wh = corpus.zoom.warehouse();

    for w in &corpus.workflows {
        for (ki, kind) in RunKind::ALL.into_iter().enumerate() {
            let Some(&rid) = w
                .runs
                .iter()
                .find(|(k, _)| *k == kind)
                .and_then(|(_, r)| r.first())
            else {
                continue;
            };
            let run = wh.run(rid).expect("loaded");
            let data = run.all_data();

            let started = Instant::now();
            let index = ProvenanceIndex::build(run).expect("generated runs are acyclic");
            builds.push((ki, started.elapsed().as_nanos() as f64));

            for (vi, view) in [w.admin, w.bio, w.black_box].into_iter().enumerate() {
                let vr = wh.view_run(rid, view).expect("materializes");
                let mut targets: Vec<_> = data
                    .iter()
                    .copied()
                    .step_by((data.len() / TARGETS).max(1))
                    .filter(|&d| vr.is_visible(d))
                    .collect();
                targets.push(run.final_outputs()[0]);
                for &d in &targets {
                    assert_eq!(
                        deep_provenance_indexed(run, &vr, &index, d),
                        deep_provenance_bfs(run, &vr, d),
                        "strategies disagree — timings would be meaningless"
                    );
                }
                let per = targets.len() as f64;
                let bfs = time_queries(reps, || {
                    for &d in &targets {
                        deep_provenance_bfs(run, &vr, d).unwrap().expect("visible");
                    }
                }) / per;
                let indexed = time_queries(reps, || {
                    for &d in &targets {
                        deep_provenance_indexed(run, &vr, &index, d)
                            .unwrap()
                            .expect("visible");
                    }
                }) / per;

                // The small-closure bracket: the visible step-produced
                // object with the smallest ancestor closure.
                let early = data
                    .iter()
                    .copied()
                    .filter(|&x| {
                        vr.is_visible(x)
                            && matches!(run.producer_of(x), Some(zoom_model::Producer::Step(_)))
                    })
                    .min_by_key(|&x| {
                        run.producer_node(x)
                            .map_or(usize::MAX, |n| index.ancestors(n).count())
                    })
                    .expect("runs have visible step outputs");
                let early_reps = reps * 8;
                let early_bfs = time_queries(early_reps, || {
                    deep_provenance_bfs(run, &vr, early)
                        .unwrap()
                        .expect("visible");
                });
                let early_indexed = time_queries(early_reps, || {
                    deep_provenance_indexed(run, &vr, &index, early)
                        .unwrap()
                        .expect("visible");
                });
                samples.push((ki, vi, bfs, indexed, early_bfs, early_indexed));
            }
        }
    }

    let cells = RunKind::ALL
        .into_iter()
        .enumerate()
        .map(|(ki, kind)| {
            let cell = |vi: usize| {
                let mean = |pick: fn(&Sample) -> f64| {
                    Summary::of(
                        &samples
                            .iter()
                            .filter(|&&(k, v, ..)| k == ki && v == vi)
                            .map(pick)
                            .collect::<Vec<_>>(),
                    )
                    .mean
                };
                Cell {
                    bfs_nanos: mean(|s| s.2),
                    indexed_nanos: mean(|s| s.3),
                    early_bfs_nanos: mean(|s| s.4),
                    early_indexed_nanos: mean(|s| s.5),
                }
            };
            (kind, [cell(0), cell(1), cell(2)])
        })
        .collect();

    let build_mean = |ki: usize| {
        Summary::of(
            &builds
                .iter()
                .filter(|&&(k, _)| k == ki)
                .map(|&(_, n)| n)
                .collect::<Vec<_>>(),
        )
        .mean
    };
    Grid {
        cells,
        build_nanos: [build_mean(0), build_mean(1), build_mean(2)],
    }
}

/// Renders the speedup grid.
pub fn report(corpus: &Corpus, scale: Scale) -> String {
    let grid = run(corpus, scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "INDEX SPEEDUP — warm deep provenance, seed BFS scan vs. base-closure \
         index (mean µs/query, scale: {scale:?}; `mixed` = stride sample of all \
         data incl. final output, `early` = smallest-closure step output)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>11} {:>13} {:>7} {:>11} {:>13} {:>7} {:>10}",
        "kind",
        "view",
        "mixed bfs",
        "mixed indexed",
        "x",
        "early bfs",
        "early indexed",
        "x",
        "build µs"
    );
    for (row, (kind, cells)) in grid.cells.iter().enumerate() {
        for (name, c) in ["UAdmin", "UBio", "UBlackBox"].iter().zip(cells) {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>11.2} {:>13.2} {:>6.1}x {:>11.2} {:>13.2} {:>6.1}x {:>10.2}",
                format!("{kind:?}"),
                name,
                c.bfs_nanos / 1e3,
                c.indexed_nanos / 1e3,
                c.speedup(),
                c.early_bfs_nanos / 1e3,
                c.early_indexed_nanos / 1e3,
                c.early_speedup(),
                grid.build_nanos[row] / 1e3,
            );
        }
    }
    let large = &grid.cells.last().expect("three kinds").1;
    let _ = writeln!(
        out,
        "\nLarge-run UAdmin: {:.1}x on small-closure queries, {:.1}x on the mixed \
         sample (index build repays itself after ~{:.0} mixed queries, any view)",
        large[0].early_speedup(),
        large[0].speedup(),
        (grid.build_nanos[2] / (large[0].bfs_nanos - large[0].indexed_nanos).max(1.0)).ceil()
    );
    let deep = deep_run(match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 200,
    });
    let _ = writeln!(
        out,
        "Deep Loop run ({} nodes), smallest-closure query: {:.2} µs seed BFS vs \
         {:.2} µs indexed — {:.1}x (index built once in {:.0} µs)",
        deep.nodes,
        deep.bfs_nanos / 1e3,
        deep.indexed_nanos / 1e3,
        deep.speedup(),
        deep.build_nanos / 1e3,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn grid_is_complete_and_sane() {
        let corpus = build_corpus(Scale::Quick, 50);
        let grid = run(&corpus, Scale::Quick);
        assert_eq!(grid.cells.len(), 3);
        for (kind, cells) in &grid.cells {
            for c in cells {
                assert!(c.bfs_nanos > 0.0, "{kind:?} bfs not measured");
                assert!(c.indexed_nanos > 0.0, "{kind:?} indexed not measured");
                assert!(c.speedup().is_finite());
                assert!(c.early_speedup().is_finite());
            }
        }
        for b in grid.build_nanos {
            assert!(b > 0.0);
        }
    }

    #[test]
    fn deep_run_fixture_is_deep() {
        let deep = deep_run(20);
        assert!(
            deep.nodes > 1_000,
            "fixture too small: {} nodes",
            deep.nodes
        );
        assert!(deep.bfs_nanos > 0.0 && deep.indexed_nanos > 0.0 && deep.build_nanos > 0.0);
        assert!(deep.speedup().is_finite());
    }
}
