//! Optimality of `RelevUserViewBuilder` (Section V-B): increasing the
//! percentage of relevant modules and measuring the number of composite
//! modules created. "Our results showed that adding one relevant class in a
//! workflow creates only one new composite class, meaning that \[the\]
//! algorithm does not frequently construct non-relevant composite modules."

use crate::workloads::{random_relevant, Scale, SYNTH_MODULES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use zoom_gen::{generate_random_spec, Summary};
use zoom_views::relev_user_view_builder;

/// One aggregated data point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Percentage of modules flagged relevant.
    pub percent: u32,
    /// Mean |R| drawn.
    pub relevant: f64,
    /// Mean view size.
    pub view_size: f64,
    /// Mean non-relevant composite count (view size − |R|).
    pub non_relevant: f64,
}

/// Runs the experiment: percentages 0..=100 step 10, `draws` random
/// relevant sets each over `spec_count` random specs.
pub fn run(scale: Scale, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec_count = scale.workflows_per_class();
    let specs: Vec<_> = (0..spec_count)
        .map(|i| generate_random_spec(&format!("opt-{i}"), SYNTH_MODULES, &mut rng))
        .collect();
    let mut points = Vec::new();
    for percent in (0..=100).step_by(10) {
        let mut rel = Vec::new();
        let mut size = Vec::new();
        let mut nonrel = Vec::new();
        for spec in &specs {
            for _ in 0..scale.draws_per_percent() {
                let relevant = random_relevant(spec, percent, &mut rng);
                let built = relev_user_view_builder(spec, &relevant).expect("builds");
                rel.push(relevant.len() as f64);
                size.push(built.view.size() as f64);
                nonrel.push(built.non_relevant_composites as f64);
            }
        }
        points.push(Point {
            percent,
            relevant: Summary::of(&rel).mean,
            view_size: Summary::of(&size).mean,
            non_relevant: Summary::of(&nonrel).mean,
        });
    }
    points
}

/// Renders the optimality report.
pub fn report(scale: Scale, seed: u64) -> String {
    let points = run(scale, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "OPTIMALITY — composites created vs. relevant modules (scale: {scale:?})"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>8} {:>10} {:>13} {:>22}",
        "percent", "avg |R|", "avg |U|", "non-relevant", "d|U| per added relevant"
    );
    for (i, p) in points.iter().enumerate() {
        let slope = if i == 0 {
            f64::NAN
        } else {
            let prev = points[i - 1];
            let dr = p.relevant - prev.relevant;
            if dr.abs() < 1e-9 {
                f64::NAN
            } else {
                (p.view_size - prev.view_size) / dr
            }
        };
        let _ = writeln!(
            out,
            "{:>8}% {:>8.1} {:>10.1} {:>13.1} {:>22.2}",
            p.percent, p.relevant, p.view_size, p.non_relevant, slope
        );
    }
    let _ = writeln!(
        out,
        "(paper: adding one relevant module creates about one new composite — slope ≈ 1)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_size_tracks_relevant_count() {
        let points = run(Scale::Quick, 5);
        assert_eq!(points.len(), 11);
        // Monotone growth in |U| with percent.
        for w in points.windows(2) {
            assert!(w[1].view_size >= w[0].view_size - 1e-9);
        }
        // At 100%, every module is its own composite: |U| = |R|.
        let last = points.last().unwrap();
        assert!((last.view_size - last.relevant).abs() < 1e-9);
        // The headline claim: view size stays close to |R| + a few
        // non-relevant composites.
        for p in &points[1..] {
            assert!(
                p.non_relevant <= 8.0,
                "too many non-relevant composites: {p:?}"
            );
        }
    }
}
