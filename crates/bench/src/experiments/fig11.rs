//! Figure 11 — effect of view granularity on the size of the query result:
//! mean deep-provenance result size vs. the percentage of relevant modules,
//! per run kind, averaged over the four workflow classes. The paper's
//! shape: monotone growth, with Class 4 (loops) growing faster than linear
//! because randomly-flagged modules expose loop iterations.

use crate::workloads::{random_relevant, Corpus, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use zoom_gen::{RunKind, Summary, WorkflowClass};
use zoom_model::{UserView, ViewRun};
use zoom_views::relev_user_view_builder;

/// One curve point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Percentage of relevant modules.
    pub percent: u32,
    /// Mean tuples per run kind, in [`RunKind::ALL`] order.
    pub tuples: [f64; 3],
    /// Mean tuples for Class 4 only (all kinds pooled) — the super-linear
    /// series the paper calls out.
    pub class4: f64,
}

/// Runs the experiment. For each percentage (0..=100 step 10) and each
/// random draw, a view is built and the deep provenance of the final
/// output of one run per (workflow, kind) is measured. Workflows are
/// processed in parallel (crossbeam scoped threads); views built here are
/// queried directly and never registered, so the warehouse is only read.
pub fn run(corpus: &Corpus, scale: Scale, seed: u64) -> Vec<Point> {
    let percents: Vec<u32> = (0..=100).step_by(10).map(|p| p as u32).collect();
    // Collect per-workflow samples: (class, kind, percent) -> sizes.
    type Sample = (WorkflowClass, RunKind, u32, f64);
    let all: Vec<Sample> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (wi, w) in corpus.workflows.iter().enumerate() {
            let percents = &percents;
            handles.push(s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ (wi as u64) << 17);
                let mut samples: Vec<Sample> = Vec::new();
                for &percent in percents {
                    for _ in 0..scale.draws_per_percent() {
                        let relevant = random_relevant(&w.spec, percent, &mut rng);
                        let view: UserView = relev_user_view_builder(&w.spec, &relevant)
                            .expect("builds")
                            .view;
                        for (kind, runs) in &w.runs {
                            let Some(&rid) = runs.first() else { continue };
                            let run = corpus.zoom.warehouse().run(rid).expect("loaded");
                            let vr = ViewRun::new(run, &view);
                            let target = run.final_outputs()[0];
                            let size = zoom_warehouse::deep_provenance(run, &vr, target)
                                .expect("run is well-formed")
                                .expect("final output visible")
                                .tuples() as f64;
                            samples.push((w.class, *kind, percent, size));
                        }
                    }
                }
                samples
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker succeeds"))
            .collect()
    })
    .expect("scope completes");

    percents
        .iter()
        .map(|&percent| {
            let kind_mean = |kind: RunKind| {
                Summary::of(
                    &all.iter()
                        .filter(|(_, k, p, _)| *k == kind && *p == percent)
                        .map(|&(_, _, _, v)| v)
                        .collect::<Vec<_>>(),
                )
                .mean
            };
            let class4 = Summary::of(
                &all.iter()
                    .filter(|(c, _, p, _)| *c == WorkflowClass::Loop && *p == percent)
                    .map(|&(_, _, _, v)| v)
                    .collect::<Vec<_>>(),
            )
            .mean;
            Point {
                percent,
                tuples: [
                    kind_mean(RunKind::Small),
                    kind_mean(RunKind::Medium),
                    kind_mean(RunKind::Large),
                ],
                class4,
            }
        })
        .collect()
}

/// Renders Figure 11.
pub fn report(corpus: &Corpus, scale: Scale, seed: u64) -> String {
    let points = run(corpus, scale, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 11 — result size vs. % relevant modules (mean tuples, scale: {scale:?})"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>12} {:>12} {:>14}",
        "percent", "run1 small", "run2 medium", "run3 large", "Class4 (all)"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>8}% {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            p.percent, p.tuples[0], p.tuples[1], p.tuples[2], p.class4
        );
    }
    // Super-linearity indicator for Class 4: compare second-half growth to
    // first-half growth.
    let c4 = |i: usize| points[i].class4;
    let n = points.len();
    let first_half = c4(n / 2) - c4(0);
    let second_half = c4(n - 1) - c4(n / 2);
    let _ = writeln!(
        out,
        "\nClass4 growth: first half +{first_half:.1}, second half +{second_half:.1} tuples \
         (paper: more than linear — loop iterations surface as granularity increases)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn result_size_grows_with_granularity() {
        let corpus = build_corpus(Scale::Quick, 40);
        let points = run(&corpus, Scale::Quick, 41);
        assert_eq!(points.len(), 11);
        for kind_idx in 0..3 {
            // Endpoints: 100% relevant (UAdmin-equivalent) must exceed 0%.
            assert!(
                points.last().unwrap().tuples[kind_idx] > points.first().unwrap().tuples[kind_idx],
                "kind {kind_idx}"
            );
        }
        // Weak monotonicity within noise: each curve's max is at >= 70%.
        for kind_idx in 0..3 {
            let max_at = points
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.tuples[kind_idx]
                        .partial_cmp(&b.1.tuples[kind_idx])
                        .expect("no NaN")
                })
                .expect("nonempty")
                .0;
            assert!(max_at >= 7, "kind {kind_idx} peaked too early: {max_at}");
        }
    }
}
