//! Table II — classes of runs: the generator parameters and the measured
//! size distributions of the loaded run battery.

use crate::workloads::{Corpus, Scale};
use std::fmt::Write as _;
use zoom_gen::{infer_loop_iterations, run_stats, RunGenConfig, RunKind, Summary};

/// Renders Table II for the given corpus.
pub fn report(corpus: &Corpus, scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE II — CLASSES OF RUNS (scale: {scale:?})");
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>11} {:>10} {:>9} | {:>11} {:>11} {:>10}",
        "kind", "user-input", "data/step", "loop-iter", "cap", "steps", "edges", "data objs"
    );
    for kind in RunKind::ALL {
        let cfg = RunGenConfig::for_kind(kind);
        let mut steps = Vec::new();
        let mut edges = Vec::new();
        let mut data = Vec::new();
        let mut iters = Vec::new();
        for w in &corpus.workflows {
            for (k, runs) in &w.runs {
                if *k != kind {
                    continue;
                }
                for &rid in runs {
                    let st = run_stats(corpus.zoom.warehouse().run(rid).expect("loaded"));
                    steps.push(st.steps as f64);
                    edges.push(st.edges as f64);
                    data.push(st.data_objects as f64);
                    let run = corpus.zoom.warehouse().run(rid).expect("loaded");
                    for (_, n) in infer_loop_iterations(run) {
                        iters.push(n as f64);
                    }
                }
            }
        }
        let (s, e, d) = (Summary::of(&steps), Summary::of(&edges), Summary::of(&data));
        let it = Summary::of(&iters);
        let _ = writeln!(
            out,
            "{:<16} {:>6}-{:<3} {:>7}-{:<3} {:>6}-{:<3} {:>9} | {:>4.0}-{:<6.0} {:>4.0}-{:<6.0} {:>10.0} | iters {:.1}",
            kind.label(),
            cfg.user_input.0,
            cfg.user_input.1,
            cfg.data_per_step.0,
            cfg.data_per_step.1,
            cfg.loop_iterations.0,
            cfg.loop_iterations.1,
            cfg.max_nodes,
            s.min,
            s.max,
            e.min,
            e.max,
            d.mean,
            it.mean
        );
    }
    let _ = writeln!(
        out,
        "(left: Table II generator parameters; right: measured over {} runs)",
        corpus
            .workflows
            .iter()
            .map(|w| w.runs.iter().map(|(_, r)| r.len()).sum::<usize>())
            .sum::<usize>()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn renders_three_kinds_with_caps() {
        let corpus = build_corpus(Scale::Quick, 2);
        let r = report(&corpus, Scale::Quick);
        for kind in RunKind::ALL {
            assert!(r.contains(kind.label()), "{r}");
        }
        assert!(r.contains("10000"));
    }

    #[test]
    fn measured_sizes_respect_caps() {
        let corpus = build_corpus(Scale::Quick, 3);
        for w in &corpus.workflows {
            for (kind, runs) in &w.runs {
                let cap = RunGenConfig::for_kind(*kind).max_nodes;
                for &rid in runs {
                    let st = run_stats(corpus.zoom.warehouse().run(rid).unwrap());
                    assert!(st.steps + 2 <= cap + 2, "{kind}: {} steps", st.steps);
                }
            }
        }
    }
}
