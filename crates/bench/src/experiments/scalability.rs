//! Scalability of `RelevUserViewBuilder` (Section V-B): "we evaluated the
//! scalability … by running the algorithm on 1000, increasingly large,
//! randomized workflow specifications. Each execution of the algorithm took
//! less than 80ms."

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;
use zoom_gen::{generate_random_spec, Summary};
use zoom_views::relev_user_view_builder;

/// Number of specifications, as in the paper.
pub const SPEC_COUNT: usize = 1000;

/// Largest specification size (modules). The paper plots up to ~1000-node
/// specifications.
pub const MAX_MODULES: usize = 1000;

/// One timing sample.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Modules in the specification.
    pub modules: usize,
    /// Relevant modules drawn.
    pub relevant: usize,
    /// Builder wall time in milliseconds.
    pub millis: f64,
}

/// Runs the experiment and returns the samples.
pub fn run(count: usize, max_modules: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(count);
    for i in 0..count {
        // Increasingly large: size grows linearly across the batch.
        let target = 3 + (max_modules - 3) * i / count.max(1);
        let spec = generate_random_spec(&format!("scal-{i}"), target, &mut rng);
        let percent = rng.random_range(5..50u32);
        let relevant: Vec<_> = spec
            .module_ids()
            .filter(|_| rng.random_range(0..100) < percent)
            .collect();
        let start = Instant::now();
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(built.view.size());
        samples.push(Sample {
            modules: spec.module_count(),
            relevant: relevant.len(),
            millis,
        });
    }
    samples
}

/// Renders the scalability report.
pub fn report(count: usize, max_modules: usize, seed: u64) -> String {
    let samples = run(count, max_modules, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SCALABILITY — RelevUserViewBuilder on {count} randomized specs (3..{max_modules} modules)"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>12}",
        "modules", "specs", "avg ms", "max ms"
    );
    let buckets = 8usize;
    for b in 0..buckets {
        let lo = max_modules * b / buckets;
        let hi = max_modules * (b + 1) / buckets;
        let times: Vec<f64> = samples
            .iter()
            .filter(|s| s.modules > lo && s.modules <= hi)
            .map(|s| s.millis)
            .collect();
        if times.is_empty() {
            continue;
        }
        let sum = Summary::of(&times);
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>12.3} {:>12.3}",
            format!("{}..{}", lo + 1, hi),
            sum.n,
            sum.mean,
            sum.max
        );
    }
    let overall = Summary::of(&samples.iter().map(|s| s.millis).collect::<Vec<_>>());
    let _ = writeln!(
        out,
        "overall: mean {:.3} ms, max {:.3} ms (paper: every execution < 80 ms on 2007 hardware)",
        overall.mean, overall.max
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_is_fast_and_reported() {
        let samples = run(30, 120, 7);
        assert_eq!(samples.len(), 30);
        // Debug builds are slow, but even there the builder should finish a
        // 120-module spec well under the paper's 80 ms.
        assert!(samples.iter().all(|s| s.millis < 80.0));
        let r = report(30, 120, 7);
        assert!(r.contains("SCALABILITY"));
        assert!(r.contains("overall"));
    }
}
