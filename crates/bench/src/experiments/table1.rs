//! Table I — classes of workflows: configured pattern frequencies and the
//! measured structure of the generated corpus.

use crate::workloads::{Corpus, Scale};
use std::fmt::Write as _;
use zoom_gen::{infer_patterns, spec_stats, Summary, WorkflowClass};

/// Renders Table I for the given corpus.
pub fn report(corpus: &Corpus, scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I — CLASSES OF WORKFLOWS (scale: {scale:?})");
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>9} {:>7} {:>7} {:>7}  pattern frequencies",
        "class", "#wfs", "avg size", "loops", "splits", "joins"
    );
    for class in WorkflowClass::ALL {
        let specs: Vec<_> = corpus
            .workflows
            .iter()
            .filter(|w| w.class == class)
            .collect();
        let stats: Vec<_> = specs.iter().map(|w| spec_stats(&w.spec)).collect();
        let avg = |f: &dyn Fn(&zoom_gen::SpecStats) -> f64| {
            Summary::of(&stats.iter().map(f).collect::<Vec<_>>()).mean
        };
        let freqs = match class {
            WorkflowClass::Real => "collected corpus (curated library)".to_string(),
            _ => class
                .pattern_weights()
                .iter()
                .map(|(p, w)| format!("{p} {w}%"))
                .collect::<Vec<_>>()
                .join(", "),
        };
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>9.1} {:>7.1} {:>7.1} {:>7.1}  {}",
            class.label(),
            specs.len(),
            avg(&|s| s.modules as f64),
            avg(&|s| s.loops as f64),
            avg(&|s| s.splits as f64),
            avg(&|s| s.joins as f64),
            freqs
        );
        // The inference direction of the methodology: measured pattern
        // frequencies over the same corpus.
        let mut inferred = [0.0f64; 5];
        for w in &specs {
            let f = infer_patterns(&w.spec).frequencies();
            for (a, b) in inferred.iter_mut().zip(f) {
                *a += b / specs.len() as f64;
            }
        }
        let _ = writeln!(
            out,
            "{:<20} inferred: seq {:.0}% loop {:.0}% split {:.0}% par-in {:.0}% sync {:.0}%",
            "",
            100.0 * inferred[0],
            100.0 * inferred[1],
            100.0 * inferred[2],
            100.0 * inferred[3],
            100.0 * inferred[4],
        );
    }
    let _ = writeln!(
        out,
        "(paper: Class 1 = 30 real workflows, avg ~12 modules; synthetic \
         classes generated at ~{} modules)",
        crate::workloads::SYNTH_MODULES
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn renders_all_classes() {
        let corpus = build_corpus(Scale::Quick, 1);
        let r = report(&corpus, Scale::Quick);
        for class in WorkflowClass::ALL {
            assert!(r.contains(class.label()), "{r}");
        }
        assert!(r.contains("sequence 80%"));
    }
}
