//! Streaming replay throughput — the load-generator half of the trace
//! capture/replay harness.
//!
//! The experiment records a realistic ingestion session into an in-memory
//! trace: register a Loop-class workflow, attach the UAdmin and UBlackBox
//! views, stream a causally shuffled event log one event at a time with
//! deep-provenance probes interleaved mid-stream, seal, then fire a query
//! battery over the committed run. The trace is then replayed twice into
//! fresh warehouses at unpaced speed and the two runs must (a) reproduce
//! every recorded per-op digest (clean), (b) agree with each other on the
//! chained session digest (deterministic), and (c) finish at ≥ 2× the
//! recorded real-time pace — the `replay_throughput` acceptance bar of the
//! `BENCH_<date>.json` scorecard.

use crate::workloads::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use zoom_gen::{
    generate_run, generate_spec, interleaved_log, RunGenConfig, SpecGenConfig, WorkflowClass,
};
use zoom_model::{EventLog, LogEvent, UserView};
use zoom_warehouse::{
    ReplayOptions, RunId, SpecId, TraceOp, TraceRecorder, TraceReplayer, ViewId, Warehouse,
};

/// Every measurement the scorecard needs from one record + double-replay
/// session.
#[derive(Clone, Debug)]
pub struct ReplayBench {
    /// Stream events pushed (the `PushEvent` ops).
    pub events: usize,
    /// Total trace ops, queries and registrations included.
    pub ops: usize,
    /// Encoded trace size in bytes.
    pub trace_bytes: usize,
    /// Virtual duration of the recorded session (logical clock × tick).
    pub recorded_nanos: u64,
    /// Wall-clock nanoseconds of the two replay runs.
    pub elapsed_nanos: [u64; 2],
    /// Chained session digests of the two replay runs.
    pub digests: [u64; 2],
    /// Recorded-digest mismatches across both runs (0 when clean).
    pub mismatches: usize,
}

impl ReplayBench {
    /// Both replays reproduced every recorded per-op digest.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0
    }

    /// The two replays agreed on the chained session digest.
    pub fn is_deterministic(&self) -> bool {
        self.digests[0] == self.digests[1]
    }

    /// Recorded virtual time over the *slower* replay's wall time — the
    /// conservative side of the ≥ 2× real-time acceptance bar.
    pub fn speedup(&self) -> f64 {
        let worst = self.elapsed_nanos.iter().copied().max().unwrap_or(0);
        self.recorded_nanos as f64 / (worst as f64).max(1.0)
    }

    /// Stream events replayed per wall-clock second (slower run).
    pub fn events_per_sec(&self) -> f64 {
        let worst = self.elapsed_nanos.iter().copied().max().unwrap_or(0);
        self.events as f64 * 1e9 / (worst as f64).max(1.0)
    }

    /// The scorecard acceptance verdict.
    pub fn pass(&self) -> bool {
        self.is_clean() && self.is_deterministic() && self.speedup() >= 2.0
    }
}

/// Generates the benchmark session and records it into trace bytes,
/// returning `(trace, stream_events)`. Shared with the `daemon_throughput`
/// experiment, which replays the *same* session over the wire so the two
/// scorecard entries measure the same workload through different paths.
pub fn recorded_trace(scale: Scale, seed: u64) -> (Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = generate_spec(
        "replay-bench",
        &SpecGenConfig::new(WorkflowClass::Loop, 16),
        &mut rng,
    );
    let cfg = match scale {
        Scale::Paper => RunGenConfig {
            user_input: (1, 8),
            data_per_step: (1, 2),
            loop_iterations: (100, 200),
            max_nodes: 20_000,
            max_edges: 20_000,
        },
        Scale::Quick => RunGenConfig {
            user_input: (1, 8),
            data_per_step: (1, 2),
            loop_iterations: (20, 40),
            max_nodes: 2_000,
            max_edges: 2_000,
        },
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid");
    let log = interleaved_log(&spec, &run, &mut rng);
    let events = log.len();
    (record_session(&spec, &log), events)
}

/// Records the ingestion session and replays it twice.
///
/// `seed` drives both the synthetic run and the causal shuffle of its
/// event log, so the whole benchmark is reproducible end to end.
pub fn run(scale: Scale, seed: u64) -> ReplayBench {
    let (bytes, events) = recorded_trace(scale, seed);

    let replayer = TraceReplayer::from_bytes(&bytes).expect("recorder output parses");
    let mut reports = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut fresh = Warehouse::new();
        let started = Instant::now();
        let report = replayer.replay(&mut fresh, &ReplayOptions::default());
        let elapsed = started.elapsed().as_nanos() as u64;
        reports.push((report, elapsed));
    }

    ReplayBench {
        events,
        ops: reports[0].0.ops,
        trace_bytes: bytes.len(),
        recorded_nanos: reports[0].0.recorded_nanos,
        elapsed_nanos: [reports[0].1, reports[1].1],
        digests: [reports[0].0.digest, reports[1].0.digest],
        mismatches: reports[0].0.mismatches.len() + reports[1].0.mismatches.len(),
    }
}

/// Streams `log` into a fresh warehouse under a [`TraceRecorder`]: views,
/// one `PushEvent` per event with a deep-provenance probe every 16th
/// `Wrote` (some answer, some reject — both digest deterministically),
/// seal, then a deep/immediate/forward battery over the finals per view.
fn record_session(spec: &zoom_model::WorkflowSpec, log: &EventLog) -> Vec<u8> {
    let sid = SpecId(0);
    let rid = RunId(0);
    let (admin, black_box) = (ViewId(0), ViewId(1));
    let mut wh = Warehouse::new();
    let mut rec = TraceRecorder::default();
    rec.record(&mut wh, TraceOp::RegisterSpec(spec.clone()));
    rec.record(&mut wh, TraceOp::RegisterView(sid, UserView::admin(spec)));
    rec.record(
        &mut wh,
        TraceOp::RegisterView(sid, UserView::black_box(spec)),
    );
    rec.record(&mut wh, TraceOp::BeginStream(sid));
    for (i, ev) in log.events.iter().enumerate() {
        rec.record(&mut wh, TraceOp::PushEvent(rid, ev.clone()));
        if i % 16 == 0 {
            if let LogEvent::Wrote { data, .. } = ev {
                rec.record(&mut wh, TraceOp::DeepProvenance(rid, admin, *data));
            }
        }
    }
    rec.record(&mut wh, TraceOp::SealStream(rid));
    let finals = wh.run(rid).expect("sealed").final_outputs().to_vec();
    let inputs = wh.run(rid).expect("sealed").user_inputs().to_vec();
    for view in [admin, black_box] {
        for &d in finals.iter().take(2) {
            rec.record(&mut wh, TraceOp::DeepProvenance(rid, view, d));
            rec.record(&mut wh, TraceOp::ImmediateProvenance(rid, view, d));
        }
        if let Some(&d) = inputs.first() {
            rec.record(&mut wh, TraceOp::DependentsOf(rid, view, d));
        }
    }
    rec.to_bytes().expect("bench trace under frame cap")
}

/// Renders the human half of the result.
pub fn report(scale: Scale, seed: u64) -> String {
    let b = run(scale, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "REPLAY THROUGHPUT — record a streaming ingestion session, replay it \
         twice unpaced (scale: {scale:?}, seed {seed})"
    );
    let _ = writeln!(
        out,
        "  trace: {} ops ({} stream events), {:.1} KiB, {:.1} s recorded \
         virtual time",
        b.ops,
        b.events,
        b.trace_bytes as f64 / 1024.0,
        b.recorded_nanos as f64 / 1e9,
    );
    let _ = writeln!(
        out,
        "  replay: {:.1} ms / {:.1} ms wall, digest {:016x} / {:016x} \
         ({}, {})",
        b.elapsed_nanos[0] as f64 / 1e6,
        b.elapsed_nanos[1] as f64 / 1e6,
        b.digests[0],
        b.digests[1],
        if b.is_deterministic() {
            "deterministic"
        } else {
            "NON-DETERMINISTIC"
        },
        if b.is_clean() { "clean" } else { "MISMATCHED" },
    );
    let _ = writeln!(
        out,
        "  throughput: {:.0} events/s, {:.0}x real-time (bar: ≥ 2x) — {}",
        b.events_per_sec(),
        b.speedup(),
        if b.pass() { "PASS" } else { "FAIL" },
    );
    out
}

/// Renders the scorecard object appended to `BENCH_<date>.json`.
pub fn scorecard_json(b: &ReplayBench, scale: Scale, date: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"replay_throughput\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(out, "  \"ops\": {},", b.ops);
    let _ = writeln!(out, "  \"stream_events\": {},", b.events);
    let _ = writeln!(out, "  \"trace_bytes\": {},", b.trace_bytes);
    let _ = writeln!(out, "  \"recorded_nanos\": {},", b.recorded_nanos);
    let _ = writeln!(
        out,
        "  \"replay_nanos\": [{}, {}],",
        b.elapsed_nanos[0], b.elapsed_nanos[1]
    );
    let _ = writeln!(
        out,
        "  \"digest\": \"{:016x}\",\n  \"deterministic\": {},\n  \"clean\": {},",
        b.digests[0],
        b.is_deterministic(),
        b.is_clean()
    );
    let _ = writeln!(out, "  \"events_per_sec\": {:.0},", b.events_per_sec());
    let _ = writeln!(
        out,
        "  \"acceptance\": {{\"speedup\": {:.1}, \"bar\": 2.0, \"pass\": {}}}",
        b.speedup(),
        b.pass()
    );
    out.push('}');
    out
}

/// Appends `obj` (a JSON object) to the scorecard file `existing`: a
/// missing or empty file becomes `[obj]`-less plain `obj`; a single object
/// becomes a two-element array; an array gets one more element. Returns
/// the new file contents.
pub fn append_scorecard(existing: &str, obj: &str) -> String {
    let trimmed = existing.trim();
    if trimmed.is_empty() {
        return format!("{obj}\n");
    }
    if let Some(body) = trimmed.strip_prefix('[') {
        let inner = body.strip_suffix(']').unwrap_or(body).trim_end();
        let sep = if inner.trim().is_empty() { "" } else { ",\n" };
        return format!("[{inner}{sep}{obj}\n]\n");
    }
    format!("[\n{trimmed},\n{obj}\n]\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_holds_the_bar() {
        let b = run(Scale::Quick, 2008);
        assert!(b.events > 100, "workload too small: {} events", b.events);
        assert!(b.ops > b.events, "queries were not interleaved");
        assert!(b.is_clean(), "{} digest mismatches", b.mismatches);
        assert!(
            b.is_deterministic(),
            "digests diverged: {:016x} vs {:016x}",
            b.digests[0],
            b.digests[1]
        );
        assert!(
            b.speedup() >= 2.0,
            "replay too slow: {:.2}x real-time",
            b.speedup()
        );
        let json = scorecard_json(&b, Scale::Quick, "2026-01-01");
        assert!(json.contains("\"experiment\": \"replay_throughput\""));
        assert!(json.contains("\"pass\": true"));
    }

    #[test]
    fn scorecard_append_grows_object_then_array() {
        let one = append_scorecard("", "{\"a\":1}");
        assert_eq!(one.trim(), "{\"a\":1}");
        let two = append_scorecard(&one, "{\"b\":2}");
        assert!(two.trim_start().starts_with('['), "{two}");
        assert!(two.contains("\"a\":1") && two.contains("\"b\":2"));
        let three = append_scorecard(&two, "{\"c\":3}");
        assert!(three.trim_end().ends_with(']'), "{three}");
        assert_eq!(three.matches("\"experiment\"").count(), 0);
        assert!(three.contains("\"a\":1") && three.contains("\"c\":3"));
        // Still exactly one opening bracket — no nesting on repeat appends.
        assert_eq!(three.matches('[').count(), 1, "{three}");
    }
}
