//! Shard recovery — the supervision half of the daemon benchmark story.
//!
//! Where `daemon_throughput` measures a healthy `zoomd`, this experiment
//! measures the daemon *getting sick and better*, and what the supervision
//! machinery costs when nothing is wrong:
//!
//! 1. **No-fault overhead.** The same in-memory load workload runs with
//!    the shard supervisor ticking and without it, interleaved over
//!    several trials with medians taken; the throughput delta is the
//!    price every healthy deployment pays for supervision (the per-write
//!    guard check plus the supervisor's periodic per-shard locking).
//!    In-process on purpose — fsync and TCP jitter would bury a
//!    nanosecond-scale guard. The acceptance bar is < 1% at Paper scale.
//! 2. **Quarantine/repair cycles.** Round-robin over the shards: arm a
//!    persistent write fault under one shard's [`FaultFs`], quarantine
//!    it, heal the disk, and repair it online while the other shards keep
//!    serving. Every repair is timed (fsck + journal replay + atomic
//!    swap) and verified: the repaired shard must answer a pre-fault
//!    query identically.
//! 3. **Recovery histograms.** Repair times accumulate per shard into
//!    power-of-two millisecond buckets; the scorecard carries one
//!    histogram per shard, so a shard whose recovery time grows out of
//!    line with its siblings shows up in the diff between two
//!    `BENCH_<date>.json` files.

use crate::workloads::Scale;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use zoom_core::{Daemon, DaemonConfig, RemoteZoom};
use zoom_gen::library::{figure2_run, phylogenomic};
use zoom_model::EventLog;
use zoom_warehouse::{FaultFs, RunId, ShardRouter, StorageIo};

/// Per-shard repair-time samples folded into power-of-two ms buckets.
#[derive(Clone, Debug, Default)]
pub struct RecoveryHistogram {
    /// Raw repair durations, nanos, in cycle order.
    pub samples: Vec<u64>,
}

impl RecoveryHistogram {
    fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Minimum repair time in nanos (0 when no sample).
    pub fn min_nanos(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Median repair time in nanos (0 when no sample).
    pub fn p50_nanos(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Maximum repair time in nanos (0 when no sample).
    pub fn max_nanos(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// `(bucket_ms, count)` pairs: bucket `b` counts repairs that took
    /// less than `b` ms and at least `b/2` ms. Buckets are powers of two;
    /// empty buckets are omitted.
    pub fn buckets(&self) -> Vec<(u64, usize)> {
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for &nanos in &self.samples {
            let ms = nanos / 1_000_000;
            let bucket = (ms + 1).next_power_of_two();
            match counts.iter_mut().find(|(b, _)| *b == bucket) {
                Some((_, c)) => *c += 1,
                None => counts.push((bucket, 1)),
            }
        }
        counts.sort_unstable();
        counts
    }
}

/// Every measurement the scorecard needs from one recovery session.
#[derive(Clone, Debug)]
pub struct RecoveryBench {
    /// Warehouse shards the daemon ran with.
    pub shards: usize,
    /// Loads in each no-fault throughput pass.
    pub baseline_ops: usize,
    /// Wall-clock nanos for the loads with supervision disabled.
    pub unsupervised_nanos: u64,
    /// Wall-clock nanos for the same loads with the supervisor ticking.
    pub supervised_nanos: u64,
    /// Quarantine → heal → repair cycles driven.
    pub cycles: usize,
    /// Per-shard repair-time histograms.
    pub recovery: Vec<RecoveryHistogram>,
    /// Repairs whose post-repair probe answered byte-identically.
    pub verified_repairs: usize,
    /// Loads acknowledged while a shard was quarantined (isolation held).
    pub loads_during_fault: usize,
}

impl RecoveryBench {
    /// Supervision overhead on the no-fault write path, in percent
    /// (negative when the supervised pass happened to run faster).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.unsupervised_nanos as f64;
        (self.supervised_nanos as f64 - base) * 100.0 / base.max(1.0)
    }

    /// Slowest repair across every shard, in nanos.
    pub fn worst_repair_nanos(&self) -> u64 {
        self.recovery
            .iter()
            .map(|h| h.max_nanos())
            .max()
            .unwrap_or(0)
    }

    /// The acceptance verdict: every cycle repaired, every repair
    /// verified byte-identical, repairs bounded, and the no-fault
    /// overhead under the scale's bar.
    pub fn pass(&self, scale: Scale) -> bool {
        let repairs: usize = self.recovery.iter().map(|h| h.samples.len()).sum();
        repairs == self.cycles
            && self.verified_repairs == self.cycles
            && self.worst_repair_nanos() < 5_000_000_000
            && self.overhead_pct() < overhead_bar_pct(scale)
    }
}

/// The no-fault overhead bar: < 1%, held at Paper scale. The quick pass
/// is too short for scheduler noise to stay reliably inside 1%, so CI
/// gets a looser gate on the same measurement.
pub fn overhead_bar_pct(scale: Scale) -> f64 {
    match scale {
        Scale::Paper => 1.0,
        Scale::Quick => 10.0,
    }
}

fn dimensions(scale: Scale) -> (usize, usize, usize) {
    // (shards, baseline load ops, quarantine/repair cycles)
    match scale {
        Scale::Paper => (8, 20_000, 24),
        Scale::Quick => (3, 2_000, 4),
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zoom-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Times `ops` in-memory loads through the shard router, optionally with
/// a supervisor thread ticking at the 10 ms rate a `--supervise 10`
/// daemon would run. In-process and memory-backed on purpose: the
/// supervision tax is a per-write guard check plus the supervisor's
/// periodic per-shard locking, nanoseconds that fsync and TCP jitter
/// would otherwise bury.
fn timed_loads(shards: usize, ops: usize, supervise: bool) -> u64 {
    use std::sync::atomic::{AtomicBool, Ordering};

    let router = Arc::new(ShardRouter::in_memory(shards));
    let spec = phylogenomic();
    let log = EventLog::from_run(&figure2_run(&spec), &spec);
    let sid = router.register_spec(&spec).expect("spec registers");
    let stop = Arc::new(AtomicBool::new(false));
    // BOTH modes run a 10 ms ticker thread; only the supervised one does
    // supervision work. A sleeping control thread matters: an extra
    // periodically-runnable thread alone keeps cores out of deep idle
    // states and shifts timings by several percent — far more than the
    // effect being measured.
    let ticker = {
        let (router, stop) = (Arc::clone(&router), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if supervise {
                    router.supervise_once();
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };
    let started = Instant::now();
    for _ in 0..ops {
        router.load_log(sid, &log).expect("no-fault load succeeds");
    }
    let nanos = started.elapsed().as_nanos() as u64;
    stop.store(true, Ordering::Relaxed);
    ticker.join().expect("supervisor ticker exits");
    nanos
}

/// Runs the full recovery benchmark: overhead passes, then cycles.
pub fn run(scale: Scale, _seed: u64) -> RecoveryBench {
    let (shards, baseline_ops, cycles) = dimensions(scale);

    // 1. No-fault overhead: identical workloads, supervisor off then on,
    // interleaved over several trials. Each mode's *fastest* trial is its
    // noise floor — scheduler and allocator jitter only ever add time, so
    // min-of-trials compares the two modes' true costs, which is what a
    // 1% bar needs.
    let trials = match scale {
        Scale::Paper => 7,
        Scale::Quick => 3,
    };
    let floor = |v: Vec<u64>| v.into_iter().min().expect("at least one trial");
    let (mut base, mut sup) = (Vec::new(), Vec::new());
    // One discarded warmup, then alternating order per trial, so neither
    // mode systematically enjoys a warmer allocator and cache.
    let _ = timed_loads(shards, baseline_ops, false);
    for t in 0..trials {
        if t % 2 == 0 {
            base.push(timed_loads(shards, baseline_ops, false));
            sup.push(timed_loads(shards, baseline_ops, true));
        } else {
            sup.push(timed_loads(shards, baseline_ops, true));
            base.push(timed_loads(shards, baseline_ops, false));
        }
    }
    let unsupervised_nanos = floor(base);
    let supervised_nanos = floor(sup);

    // 2. Quarantine/repair cycles against a fault-injected daemon.
    let dir = tempdir("cycles");
    let ios: Vec<Arc<FaultFs>> = (0..shards).map(|_| Arc::new(FaultFs::counting())).collect();
    let config = DaemonConfig {
        shards,
        dir: Some(dir.clone()),
        shard_ios: ios
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn StorageIo>)
            .collect(),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn("127.0.0.1:0", config).expect("daemon binds");
    let mut rz = RemoteZoom::connect(daemon.addr(), "bench").expect("client connects");
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let probe = run.final_outputs()[0];
    let sid = rz.register_workflow(spec).expect("spec registers");
    let vid = rz.admin_view(sid).expect("admin view registers");

    // Seed every shard with at least one run so each repair replays data.
    let mapper = ShardRouter::in_memory(shards);
    let mut per_shard_run = vec![None::<RunId>; shards];
    while per_shard_run.iter().any(Option::is_none) {
        let rid = rz.load_log(sid, &log).expect("seed load succeeds");
        per_shard_run[mapper.shard_of(rid)].get_or_insert(rid);
    }

    let mut recovery = vec![RecoveryHistogram::default(); shards];
    let mut verified_repairs = 0;
    let mut loads_during_fault = 0;
    for cycle in 0..cycles {
        let sick = cycle % shards;
        let witness = per_shard_run[sick].expect("every shard is seeded");
        let expected = rz
            .deep_provenance(witness, vid, probe)
            .expect("pre-fault probe answers");

        // Disk goes dark; the shard leaves the write path.
        ios[sick].arm_failures(u64::MAX, false);
        assert!(daemon.quarantine_shard(sick), "shard was already out");

        // Isolation under fault: keep loading. Refusals burn no id, so
        // the loop stalls (rather than erring) only on the sick shard.
        for _ in 0..4 {
            if let Ok(rid) = rz.load_log(sid, &log) {
                loads_during_fault += 1;
                per_shard_run[mapper.shard_of(rid)].get_or_insert(rid);
            }
        }

        // Heal and repair online; the repair timer is the measurement.
        ios[sick].heal();
        let outcome = daemon.repair_shard(sick).expect("repair after heal");
        recovery[sick].record(outcome.nanos);
        let after = rz
            .deep_provenance(witness, vid, probe)
            .expect("post-repair probe answers");
        if after == expected {
            verified_repairs += 1;
        }
        // Grow the store between cycles so later repairs replay more.
        rz.load_log(sid, &log).expect("post-repair load succeeds");
    }

    drop(rz);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryBench {
        shards,
        baseline_ops,
        unsupervised_nanos,
        supervised_nanos,
        cycles,
        recovery,
        verified_repairs,
        loads_during_fault,
    }
}

/// Renders the human half of the result.
pub fn report(scale: Scale, seed: u64) -> String {
    let b = run(scale, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SHARD RECOVERY — zoomd quarantine/repair cycles, {} shard(s) \
         (scale: {scale:?}, seed {seed})",
        b.shards
    );
    let _ = writeln!(
        out,
        "  no-fault overhead: {} loads, {:.1} ms unsupervised vs {:.1} ms \
         supervised ({:+.2}%, bar {:.0}%)",
        b.baseline_ops,
        b.unsupervised_nanos as f64 / 1e6,
        b.supervised_nanos as f64 / 1e6,
        b.overhead_pct(),
        overhead_bar_pct(scale),
    );
    let _ = writeln!(
        out,
        "  {} cycles: {} repairs verified byte-identical, {} loads acked \
         while a shard was dark",
        b.cycles, b.verified_repairs, b.loads_during_fault,
    );
    for (sh, h) in b.recovery.iter().enumerate() {
        if h.samples.is_empty() {
            continue;
        }
        let buckets: Vec<String> = h
            .buckets()
            .iter()
            .map(|(ms, n)| format!("<{ms}ms:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "  shard {sh}: {} repairs, min/p50/max {:.1}/{:.1}/{:.1} ms  [{}]",
            h.samples.len(),
            h.min_nanos() as f64 / 1e6,
            h.p50_nanos() as f64 / 1e6,
            h.max_nanos() as f64 / 1e6,
            buckets.join(" "),
        );
    }
    let _ = writeln!(
        out,
        "  verdict: {}",
        if b.pass(scale) { "PASS" } else { "FAIL" }
    );
    out
}

/// Renders the scorecard object appended to `BENCH_<date>.json`.
pub fn scorecard_json(b: &RecoveryBench, scale: Scale, date: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"shard_recovery\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(out, "  \"shards\": {},", b.shards);
    let _ = writeln!(out, "  \"baseline_ops\": {},", b.baseline_ops);
    let _ = writeln!(out, "  \"unsupervised_nanos\": {},", b.unsupervised_nanos);
    let _ = writeln!(out, "  \"supervised_nanos\": {},", b.supervised_nanos);
    let _ = writeln!(out, "  \"overhead_pct\": {:.2},", b.overhead_pct());
    let _ = writeln!(out, "  \"cycles\": {},", b.cycles);
    let _ = writeln!(out, "  \"verified_repairs\": {},", b.verified_repairs);
    let _ = writeln!(out, "  \"loads_during_fault\": {},", b.loads_during_fault);
    let _ = writeln!(out, "  \"recovery\": [");
    for (sh, h) in b.recovery.iter().enumerate() {
        let buckets: Vec<String> = h
            .buckets()
            .iter()
            .map(|(ms, n)| format!("{{\"lt_ms\": {ms}, \"count\": {n}}}"))
            .collect();
        let _ = writeln!(
            out,
            "    {{\"shard\": {sh}, \"repairs\": {}, \"min_nanos\": {}, \
             \"p50_nanos\": {}, \"max_nanos\": {}, \"hist\": [{}]}}{}",
            h.samples.len(),
            h.min_nanos(),
            h.p50_nanos(),
            h.max_nanos(),
            buckets.join(", "),
            if sh + 1 < b.recovery.len() { "," } else { "" },
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"acceptance\": {{\"overhead_bar_pct\": {:.0}, \"repair_bar_nanos\": 5000000000, \
         \"pass\": {}}}",
        overhead_bar_pct(scale),
        b.pass(scale)
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_repairs_and_verifies_every_cycle() {
        let b = run(Scale::Quick, 2008);
        let repairs: usize = b.recovery.iter().map(|h| h.samples.len()).sum();
        assert_eq!(repairs, b.cycles);
        assert_eq!(b.verified_repairs, b.cycles, "a repair changed answers");
        assert!(b.loads_during_fault > 0, "isolation never exercised");
        assert!(b.worst_repair_nanos() > 0);
        let json = scorecard_json(&b, Scale::Quick, "2026-01-01");
        assert!(json.contains("\"experiment\": \"shard_recovery\""));
        assert!(json.contains("\"hist\": ["));
        assert!(json.contains("\"lt_ms\""));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = RecoveryHistogram::default();
        for nanos in [400_000, 1_600_000, 1_700_000, 9_000_000] {
            h.record(nanos);
        }
        assert_eq!(h.buckets(), vec![(1, 1), (2, 2), (16, 1)]);
        assert_eq!(h.min_nanos(), 400_000);
        assert_eq!(h.max_nanos(), 9_000_000);
    }
}
