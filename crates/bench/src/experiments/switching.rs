//! Effect of view granularity on response time (Section V-B): the cost of
//! *switching* user views while analyzing one data item's provenance.
//!
//! The paper keeps the base provenance in a temp table, so a switch costs
//! only the per-view projection: ≈13 ms on average, max ≈1 s at 90%
//! relevant on the largest runs. Here, the first touch of a view pays the
//! composite-execution materialization and revisits ride the cache.

use crate::workloads::{random_relevant, Corpus, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use zoom_core::ViewId;
use zoom_gen::{RunKind, Summary};
use zoom_model::UserView;
use zoom_views::relev_user_view_builder;

/// Aggregated switching costs.
#[derive(Clone, Copy, Debug)]
pub struct SwitchTiming {
    /// Mean first-touch switch (materialize + query), ms.
    pub first_ms: f64,
    /// Max first-touch switch, ms.
    pub first_max_ms: f64,
    /// Mean revisit switch (cached), ms.
    pub revisit_ms: f64,
    /// Number of switches measured.
    pub switches: usize,
}

/// For each workflow, registers a ladder of random views (10%..90%
/// relevant), then walks the ladder twice on one large run while tracking
/// the deep provenance of the final output.
pub fn run(corpus: &mut Corpus, scale: Scale, seed: u64) -> SwitchTiming {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut first = Vec::new();
    let mut revisit = Vec::new();

    // Pre-register the view ladders (registration is not what we measure).
    let ladders: Vec<(usize, Vec<UserView>)> = corpus
        .workflows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let views: Vec<UserView> = (1..=9)
                .step_by(if scale == Scale::Quick { 4 } else { 2 })
                .map(|d| {
                    let relevant = random_relevant(&w.spec, d * 10, &mut rng);
                    relev_user_view_builder(&w.spec, &relevant)
                        .expect("builds")
                        .view
                })
                .collect();
            (i, views)
        })
        .collect();
    let mut registered: Vec<(usize, Vec<ViewId>)> = Vec::new();
    for (i, views) in ladders {
        let spec_id = corpus.workflows[i].spec_id;
        let ids: Vec<ViewId> = views
            .into_iter()
            .enumerate()
            .map(|(j, v)| {
                // Random draws can collide with an already-registered view
                // name; suffix to keep registration infallible.
                let renamed = UserView::new(
                    format!("{}~L{j}", v.name()),
                    &corpus.workflows[i].spec,
                    v.composites().to_vec(),
                )
                .expect("same partition");
                corpus
                    .zoom
                    .register_view(spec_id, renamed)
                    .expect("registers")
            })
            .collect();
        registered.push((i, ids));
    }

    corpus.zoom.warehouse().clear_cache();
    for (i, ladder) in &registered {
        let w = &corpus.workflows[*i];
        let Some((_, runs)) = w.runs.iter().find(|(k, _)| *k == RunKind::Large) else {
            continue;
        };
        let Some(&rid) = runs.first() else { continue };
        let outs = corpus.zoom.final_outputs(rid).expect("loaded");
        let target = outs[0];
        for pass in 0..2 {
            for &view in ladder {
                let t = Instant::now();
                std::hint::black_box(
                    corpus
                        .zoom
                        .deep_provenance(rid, view, target)
                        .expect("final output visible"),
                );
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if pass == 0 {
                    first.push(ms);
                } else {
                    revisit.push(ms);
                }
            }
        }
    }
    let f = Summary::of(&first);
    SwitchTiming {
        first_ms: f.mean,
        first_max_ms: f.max,
        revisit_ms: Summary::of(&revisit).mean,
        switches: first.len() + revisit.len(),
    }
}

/// Renders the view-switch report.
pub fn report(corpus: &mut Corpus, scale: Scale, seed: u64) -> String {
    let t = run(corpus, scale, seed);
    let mut out = String::new();
    let _ = writeln!(out, "VIEW SWITCHING — large runs, ladder of random views");
    let _ = writeln!(out, "switches measured      : {}", t.switches);
    let _ = writeln!(
        out,
        "first touch of a view  : mean {:.3} ms, max {:.3} ms",
        t.first_ms, t.first_max_ms
    );
    let _ = writeln!(out, "revisit (cached)       : mean {:.3} ms", t.revisit_ms);
    let _ = writeln!(
        out,
        "(paper: ≈13 ms average per switch, max ≈1 s at 90% relevant on large runs)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_corpus;

    #[test]
    fn revisits_are_not_slower_than_first_touches() {
        let mut corpus = build_corpus(Scale::Quick, 30);
        let t = run(&mut corpus, Scale::Quick, 31);
        assert!(t.switches > 0);
        assert!(t.revisit_ms <= t.first_ms * 1.5 + 0.5);
    }
}
