//! Query response time (Section V-B): the deep provenance of the final
//! output, timed per run kind, plus the strategy ablation.
//!
//! The paper tested several strategies and settled on compute-the-base-
//! representation-once-then-project; with it, small runs answered in ≈23 ms,
//! medium ≈213 ms, large ≈1.1 s (Oracle 10g, 2007 hardware), always < 30 s.
//! Our embedded warehouse is orders of magnitude faster in absolute terms;
//! the *shape* to reproduce is (a) response time grows with run size and
//! (b) the materialize-once strategy beats rebuild-per-query as soon as a
//! run is queried more than once.

use crate::workloads::Corpus;
use std::fmt::Write as _;
use std::time::Instant;
use zoom_gen::{RunKind, Summary};

/// Timing for one run kind.
#[derive(Clone, Copy, Debug)]
pub struct KindTiming {
    /// The run kind.
    pub kind: RunKind,
    /// Mean cold time (materialize the view-run + query), ms.
    pub cold_ms: f64,
    /// Max cold time, ms.
    pub cold_max_ms: f64,
    /// Mean warm time (cached materialization), ms.
    pub warm_ms: f64,
}

/// Times deep provenance of the final output across the corpus, per kind.
/// Queries run against the UBio view (the representative user view).
pub fn run(corpus: &Corpus) -> Vec<KindTiming> {
    corpus.zoom.warehouse().clear_cache();
    let mut out = Vec::new();
    for kind in RunKind::ALL {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for w in &corpus.workflows {
            for (k, runs) in &w.runs {
                if *k != kind {
                    continue;
                }
                for &rid in runs {
                    let t0 = Instant::now();
                    let r1 = corpus
                        .zoom
                        .deep_provenance_of_final_output(rid, w.bio)
                        .expect("visible");
                    cold.push(t0.elapsed().as_secs_f64() * 1e3);
                    let t1 = Instant::now();
                    let r2 = corpus
                        .zoom
                        .deep_provenance_of_final_output(rid, w.bio)
                        .expect("visible");
                    warm.push(t1.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(r1.tuples(), r2.tuples());
                }
            }
        }
        let c = Summary::of(&cold);
        out.push(KindTiming {
            kind,
            cold_ms: c.mean,
            cold_max_ms: c.max,
            warm_ms: Summary::of(&warm).mean,
        });
    }
    out
}

/// Strategy ablation on the largest runs: rebuild-per-query vs. cached
/// materialization, over `queries_per_run` consecutive queries.
pub fn strategy_ablation(corpus: &Corpus, queries_per_run: usize) -> String {
    let mut rebuild = Vec::new();
    let mut cached = Vec::new();
    corpus.zoom.warehouse().clear_cache();
    for w in &corpus.workflows {
        for (k, runs) in &w.runs {
            if *k != RunKind::Large {
                continue;
            }
            let Some(&rid) = runs.first() else { continue };
            let outs = corpus.zoom.final_outputs(rid).expect("loaded");
            let target = outs[0];

            let t0 = Instant::now();
            for _ in 0..queries_per_run {
                let vr = corpus
                    .zoom
                    .warehouse()
                    .view_run_uncached(rid, w.bio)
                    .expect("valid pair");
                let run = corpus.zoom.warehouse().run(rid).expect("loaded");
                std::hint::black_box(
                    zoom_warehouse::deep_provenance(run, &vr, target).expect("visible"),
                );
            }
            rebuild.push(t0.elapsed().as_secs_f64() * 1e3 / queries_per_run as f64);

            let t1 = Instant::now();
            for _ in 0..queries_per_run {
                std::hint::black_box(
                    corpus
                        .zoom
                        .deep_provenance(rid, w.bio, target)
                        .expect("visible"),
                );
            }
            cached.push(t1.elapsed().as_secs_f64() * 1e3 / queries_per_run as f64);
        }
    }
    let (r, c) = (Summary::of(&rebuild), Summary::of(&cached));
    format!(
        "strategy ablation on large runs ({queries_per_run} queries/run):\n\
         rebuild-per-query : {:.3} ms/query (max {:.3})\n\
         materialize-once  : {:.3} ms/query (max {:.3})  -> {:.1}x faster\n\
         (the paper reached the same conclusion: compute the base once, then project)\n",
        r.mean,
        r.max,
        c.mean,
        c.max,
        r.mean / c.mean.max(1e-9)
    )
}

/// Renders the response-time report.
pub fn report(corpus: &Corpus) -> String {
    let timings = run(corpus);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "QUERY RESPONSE TIME — deep provenance of the final output (UBio view)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14}",
        "run kind", "cold mean ms", "cold max ms", "warm mean ms"
    );
    for t in &timings {
        let _ = writeln!(
            out,
            "{:<16} {:>14.3} {:>14.3} {:>14.3}",
            t.kind.label(),
            t.cold_ms,
            t.cold_max_ms,
            t.warm_ms
        );
    }
    let _ = writeln!(
        out,
        "(paper, Oracle 10g: small ≈23 ms, medium ≈213 ms, large ≈1.1 s, max < 30 s)"
    );
    out.push('\n');
    out.push_str(&strategy_ablation(corpus, 5));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{build_corpus, Scale};

    #[test]
    fn response_grows_with_run_size_and_warm_beats_cold() {
        let corpus = build_corpus(Scale::Quick, 20);
        let t = run(&corpus);
        assert_eq!(t.len(), 3);
        let small = t.iter().find(|x| x.kind == RunKind::Small).unwrap();
        let large = t.iter().find(|x| x.kind == RunKind::Large).unwrap();
        assert!(large.cold_ms > small.cold_ms);
        // Warm (cached) queries skip materialization.
        assert!(large.warm_ms <= large.cold_ms);
    }

    #[test]
    fn ablation_prefers_materialization() {
        let corpus = build_corpus(Scale::Quick, 21);
        let s = strategy_ablation(&corpus, 3);
        assert!(s.contains("faster"), "{s}");
    }
}
