#![warn(missing_docs)]

//! # zoom-bench
//!
//! The evaluation harness of the ZOOM*UserViews reproduction: regenerates
//! every table and figure of the paper's Section V.
//!
//! * [`workloads`] — the corpus builder (Table I classes × Table II runs ×
//!   the UAdmin/UBio/UBlackBox view families);
//! * [`experiments`] — one module per table/figure:
//!   [`experiments::table1`], [`experiments::table2`],
//!   [`experiments::scalability`], [`experiments::optimality`],
//!   [`experiments::fig10`], [`experiments::response`],
//!   [`experiments::switching`], [`experiments::fig11`],
//!   [`experiments::index_speedup`] (BFS vs. bitset base-closure index vs.
//!   interval labels, including the adversarial-shape scaling sweep behind
//!   the `BENCH_<date>.json` scorecard), [`experiments::replay`] (the
//!   trace capture/replay throughput load generator, the scorecard's
//!   second entry), plus the beyond-the-paper
//!   [`experiments::open_problem`] gap study.
//!
//! The `experiments` binary drives them:
//!
//! ```sh
//! cargo run --release -p zoom-bench --bin experiments -- all --scale quick
//! ```

pub mod experiments {
    //! One module per reproduced table/figure.
    pub mod daemon;
    pub mod fig10;
    pub mod fig11;
    pub mod index_speedup;
    pub mod open_problem;
    pub mod optimality;
    pub mod recovery;
    pub mod replay;
    pub mod response;
    pub mod scalability;
    pub mod switching;
    pub mod table1;
    pub mod table2;
}
pub mod workloads;

pub use workloads::{build_corpus, Corpus, Scale};
