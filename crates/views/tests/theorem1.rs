//! Property-based verification of Theorem 1: on arbitrary (generated)
//! workflow specifications and arbitrary relevant sets,
//! `RelevUserViewBuilder` produces a view that is well-formed, preserves
//! dataflow, is complete w.r.t. dataflow, and is minimal.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom_gen::{generate_random_spec, generate_spec, SpecGenConfig, WorkflowClass};
use zoom_graph::NodeId;
use zoom_model::WorkflowSpec;
use zoom_views::{check_view, is_minimal, relev_user_view_builder};

/// Builds a spec from a seed: random pattern mix, 3–20 modules.
fn spec_from(seed: u64, size: usize, class: u8) -> WorkflowSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    match class % 4 {
        0 => generate_random_spec("prop", size, &mut rng),
        1 => generate_spec(
            "prop",
            &SpecGenConfig::new(WorkflowClass::Linear, size),
            &mut rng,
        ),
        2 => generate_spec(
            "prop",
            &SpecGenConfig::new(WorkflowClass::Parallel, size),
            &mut rng,
        ),
        _ => generate_spec(
            "prop",
            &SpecGenConfig::new(WorkflowClass::Loop, size),
            &mut rng,
        ),
    }
}

/// Picks a relevant subset from a bitmask.
fn relevant_from(spec: &WorkflowSpec, mask: u64) -> Vec<NodeId> {
    spec.module_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
        .map(|(_, m)| m)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1, first half: the builder's view satisfies Properties 1-3.
    #[test]
    fn builder_satisfies_properties(
        seed in any::<u64>(),
        size in 3usize..20,
        class in any::<u8>(),
        mask in any::<u64>(),
    ) {
        let spec = spec_from(seed, size, class);
        let relevant = relevant_from(&spec, mask);
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        if let Err(v) = check_view(&spec, &built.view, &relevant) {
            panic!(
                "builder violated a property on spec with {} modules, R={:?}: {v}\n{}",
                spec.module_count(),
                relevant.iter().map(|&r| spec.label(r)).collect::<Vec<_>>(),
                spec.to_dot(&relevant)
            );
        }
    }

    /// Theorem 1, second half: the builder's view is minimal (no pair of
    /// composites can be merged while keeping Properties 1-3). Smaller
    /// sizes: minimality checking is quadratic in composites with a full
    /// property check per pair.
    #[test]
    fn builder_output_is_minimal(
        seed in any::<u64>(),
        size in 3usize..12,
        class in any::<u8>(),
        mask in any::<u64>(),
    ) {
        let spec = spec_from(seed, size, class);
        let relevant = relevant_from(&spec, mask);
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        prop_assert!(
            is_minimal(&spec, &built.view, &relevant),
            "non-minimal view on spec with {} modules, R={:?}",
            spec.module_count(),
            relevant.iter().map(|&r| spec.label(r)).collect::<Vec<_>>()
        );
    }

    /// The view size is bounded below by |R| (plus it contains exactly one
    /// composite per relevant module) and above by the module count.
    #[test]
    fn view_size_bounds(
        seed in any::<u64>(),
        size in 3usize..25,
        class in any::<u8>(),
        mask in any::<u64>(),
    ) {
        let spec = spec_from(seed, size, class);
        let relevant = relevant_from(&spec, mask);
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        prop_assert_eq!(built.relevant_composites, relevant.len());
        prop_assert!(built.view.size() >= relevant.len().max(1));
        prop_assert!(built.view.size() <= spec.module_count());
        prop_assert_eq!(
            built.view.size(),
            built.relevant_composites + built.non_relevant_composites
        );
    }

    /// Relevant composites are connected subgraphs of the specification
    /// (the paper: "Properties 1-3 guarantee that a relevant composite
    /// module will always be a connected partition").
    #[test]
    fn relevant_composites_are_connected(
        seed in any::<u64>(),
        size in 3usize..20,
        class in any::<u8>(),
        mask in any::<u64>(),
    ) {
        let spec = spec_from(seed, size, class);
        let relevant = relevant_from(&spec, mask);
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        for c in built.view.composite_ids() {
            let members = built.view.members(c);
            let has_relevant = members.iter().any(|m| relevant.contains(m));
            if !has_relevant || members.len() == 1 {
                continue;
            }
            // Weak connectivity over spec edges restricted to members.
            let mut reached = vec![false; members.len()];
            reached[0] = true;
            let mut frontier = vec![members[0]];
            while let Some(x) = frontier.pop() {
                let neighbors = spec
                    .graph()
                    .successors(x)
                    .chain(spec.graph().predecessors(x));
                for nb in neighbors {
                    if let Some(pos) = members.iter().position(|&m| m == nb) {
                        if !reached[pos] {
                            reached[pos] = true;
                            frontier.push(nb);
                        }
                    }
                }
            }
            prop_assert!(
                reached.iter().all(|&r| r),
                "relevant composite {:?} is disconnected",
                members.iter().map(|&m| spec.label(m)).collect::<Vec<_>>()
            );
        }
    }

    /// View-algebra laws on arbitrary built views: composing with UAdmin of
    /// the induced spec is the identity partition; composing with UBlackBox
    /// collapses to one composite; and every drill-down sub-workflow of a
    /// composite is a valid specification whose modules are the members.
    #[test]
    fn view_algebra_laws(
        seed in any::<u64>(),
        size in 3usize..16,
        class in any::<u8>(),
        mask in any::<u64>(),
    ) {
        let spec = spec_from(seed, size, class);
        let relevant = relevant_from(&spec, mask);
        let base = relev_user_view_builder(&spec, &relevant).expect("builds").view;
        let induced = zoom_model::induced_spec(&spec, &base);

        let id = zoom_views::compose(
            &spec,
            &base,
            &induced,
            &zoom_model::UserView::admin(&induced.spec),
        )
        .expect("composes");
        prop_assert_eq!(id.size(), base.size());
        for m in spec.module_ids() {
            let block = |v: &zoom_model::UserView| {
                let mut b = v.members(v.composite_of(m)).to_vec();
                b.sort();
                b
            };
            prop_assert_eq!(block(&id), block(&base));
        }

        let collapsed = zoom_views::compose(
            &spec,
            &base,
            &induced,
            &zoom_model::UserView::black_box(&induced.spec),
        )
        .expect("composes");
        prop_assert_eq!(collapsed.size(), 1);

        for c in base.composite_ids() {
            let sub = zoom_views::subworkflow(&spec, &base, c).expect("valid sub-workflow");
            prop_assert_eq!(sub.module_count(), base.members(c).len());
            for &m in base.members(c) {
                prop_assert!(sub.module(spec.label(m)).is_ok());
            }
        }
    }

    /// The induced workflow of a built view has no loops beyond those in
    /// the original specification: if the spec is acyclic, so is the
    /// induced workflow.
    #[test]
    fn no_new_loops(
        seed in any::<u64>(),
        size in 3usize..20,
        mask in any::<u64>(),
    ) {
        // Linear/parallel classes can still generate loops; filter to
        // acyclic specs.
        let spec = spec_from(seed, size, 2);
        prop_assume!(zoom_graph::algo::topo::is_acyclic(spec.graph()));
        let relevant = relevant_from(&spec, mask);
        let built = relev_user_view_builder(&spec, &relevant).expect("builder succeeds");
        let induced = zoom_model::induced_spec(&spec, &built.view);
        prop_assert!(
            zoom_graph::algo::topo::is_acyclic(induced.spec.graph()),
            "induced spec of an acyclic spec has a cycle"
        );
    }
}
