//! Searches random small specifications for a minimal-but-not-minimum
//! instance (the paper's Figure 7 phenomenon), printing the first few found.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom_gen::generate_random_spec;
use zoom_views::{minimum_view, relev_user_view_builder};

fn main() {
    let mut found = 0;
    for seed in 0..4000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_random_spec("gap", 5 + (seed % 4) as usize, &mut rng);
        if spec.module_count() > 9 {
            continue;
        }
        let modules: Vec<_> = spec.module_ids().collect();
        // Try each 2-subset of modules as the relevant set.
        for i in 0..modules.len() {
            for j in (i + 1)..modules.len() {
                let rel = vec![modules[i], modules[j]];
                let built = relev_user_view_builder(&spec, &rel).expect("ok");
                let min = minimum_view(&spec, &rel, 9).expect("small");
                if min.size() < built.view.size() {
                    println!(
                        "GAP seed={seed} modules={} builder={} minimum={} R={:?}",
                        spec.module_count(),
                        built.view.size(),
                        min.size(),
                        rel.iter().map(|&r| spec.label(r)).collect::<Vec<_>>()
                    );
                    println!("{}", spec.to_dot(&rel));
                    for c in min.composites() {
                        let ls: Vec<_> = c.members.iter().map(|&m| spec.label(m)).collect();
                        println!("  min part: {ls:?}");
                    }
                    for c in built.view.composites() {
                        let ls: Vec<_> = c.members.iter().map(|&m| spec.label(m)).collect();
                        println!("  builder part: {ls:?}");
                    }
                    found += 1;
                    if found >= 3 {
                        return;
                    }
                }
            }
        }
    }
    println!("no gap found in search space");
}
