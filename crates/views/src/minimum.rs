//! Exhaustive search for a *minimum* good view.
//!
//! Whether a polynomial-time algorithm exists that produces a good view of
//! the smallest possible size is the paper's open problem (Section III and
//! VII). For small specifications we can settle individual instances by
//! exhaustive search over set partitions, pruning on Property 1 and on the
//! best size found so far. This powers the Figure 7 reproduction (a minimal
//! view that is not minimum) and the `minimal_vs_minimum` ablation bench.

use crate::properties::PropertyChecker;
use zoom_graph::NodeId;
use zoom_model::{CompositeModule, UserView, WorkflowSpec};

/// Default cap on module count for the exhaustive search (Bell(12) ≈ 4.2M
/// partitions, still tractable with pruning; beyond that, refuse).
pub const DEFAULT_MAX_MODULES: usize = 12;

/// Searches for a good view of minimum size. Returns `None` if the
/// specification has more than `max_modules` modules.
///
/// A good view always exists (`RelevUserViewBuilder` produces one), so for
/// in-range inputs this always finds one.
pub fn minimum_view(
    spec: &WorkflowSpec,
    relevant: &[NodeId],
    max_modules: usize,
) -> Option<UserView> {
    let modules: Vec<NodeId> = spec.module_ids().collect();
    if modules.len() > max_modules {
        return None;
    }
    let mut relevant = relevant.to_vec();
    relevant.sort();
    relevant.dedup();
    let checker = PropertyChecker::new(spec, &relevant);

    // Upper bound from the polynomial algorithm.
    let built = crate::builder::relev_user_view_builder(spec, &relevant)
        .expect("builder succeeds on valid specs");
    let best_size = built.view.size();
    let best = built.view;

    // Enumerate set partitions via restricted-growth assignment. Parts that
    // would hold two relevant modules are pruned immediately (Property 1);
    // partitions already as large as the best known are pruned (part count
    // only grows as assignment proceeds).
    let is_rel: Vec<bool> = modules.iter().map(|m| relevant.contains(m)).collect();
    let mut search = Search {
        modules: &modules,
        is_rel: &is_rel,
        assignment: vec![usize::MAX; modules.len()],
        part_rel_count: Vec::new(),
        spec,
        checker: &checker,
        best_size,
        best,
    };
    search.recurse(0);
    Some(search.best)
}

/// Restricted-growth partition search state.
struct Search<'a> {
    modules: &'a [NodeId],
    is_rel: &'a [bool],
    assignment: Vec<usize>,
    part_rel_count: Vec<usize>,
    spec: &'a WorkflowSpec,
    checker: &'a PropertyChecker<'a>,
    best_size: usize,
    best: UserView,
}

impl Search<'_> {
    fn recurse(&mut self, idx: usize) {
        let parts_so_far = self.part_rel_count.len();
        if parts_so_far >= self.best_size {
            return; // cannot beat the best even without new parts
        }
        if idx == self.modules.len() {
            // Materialize and check Properties 2-3.
            let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); parts_so_far];
            for (i, &p) in self.assignment.iter().enumerate() {
                members[p].push(self.modules[i]);
            }
            let composites: Vec<CompositeModule> = members
                .into_iter()
                .enumerate()
                .map(|(i, m)| CompositeModule::new(format!("P{}", i + 1), m))
                .collect();
            let view = UserView::new("minimum-candidate", self.spec, composites)
                .expect("restricted-growth assignment is a partition");
            if self.checker.check(&view).is_ok() {
                self.best_size = view.size();
                self.best = view;
            }
            return;
        }
        // Place module idx into each existing part, then a fresh one.
        let rel = usize::from(self.is_rel[idx]);
        for p in 0..parts_so_far {
            if rel > 0 && self.part_rel_count[p] > 0 {
                continue; // Property 1 pruning
            }
            self.assignment[idx] = p;
            self.part_rel_count[p] += rel;
            self.recurse(idx + 1);
            self.part_rel_count[p] -= rel;
        }
        self.assignment[idx] = parts_so_far;
        self.part_rel_count.push(rel);
        self.recurse(idx + 1);
        self.part_rel_count.pop();
        self.assignment[idx] = usize::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::relev_user_view_builder;
    use crate::paper::figure6;
    use crate::properties::is_good_view;

    #[test]
    fn figure6_builder_is_already_minimum() {
        let (s, rel) = figure6();
        let built = relev_user_view_builder(&s, &rel).unwrap();
        let min = minimum_view(&s, &rel, DEFAULT_MAX_MODULES).unwrap();
        assert!(is_good_view(&s, &min, &rel));
        assert_eq!(min.size(), built.view.size());
    }

    #[test]
    fn refuses_large_specs() {
        let (s, rel) = figure6();
        assert!(minimum_view(&s, &rel, 3).is_none());
    }

    #[test]
    fn lower_bound_is_relevant_count() {
        let (s, rel) = figure6();
        let min = minimum_view(&s, &rel, DEFAULT_MAX_MODULES).unwrap();
        assert!(min.size() >= rel.len());
    }
}
