//! The three properties of a *good* user view (Section III).
//!
//! * **Property 1 (well-formed):** every composite contains at most one
//!   relevant module.
//! * **Property 2 (preserves dataflow):** every edge of `G_w` that induces
//!   an edge lying on an nr-path from `C(r)` to `C(r')` in `U(G_w)` itself
//!   lies on an nr-path from `r` to `r'` in `G_w` — the view fabricates no
//!   dataflow between relevant modules.
//! * **Property 3 (complete w.r.t. dataflow):** every edge of `G_w` lying on
//!   an nr-path from `r` to `r'` that induces an edge `e'` has `e'` on an
//!   nr-path from `C(r)` to `C(r')` — the view destroys no dataflow.
//!
//! Here `r` ranges over `R ∪ {input}` and `r'` over `R ∪ {output}`, and
//! `C(input) = input`, `C(output) = output`.

use crate::nrpath::NrContext;
use zoom_graph::NodeId;
use zoom_model::{induced_spec, InducedSpec, UserView, WorkflowSpec};

/// Which property a violation concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Property {
    /// Property 1.
    WellFormed,
    /// Property 2.
    PreservesDataflow,
    /// Property 3.
    CompleteDataflow,
}

/// A concrete property violation, with a human-readable witness.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated property.
    pub property: Property,
    /// Witness description (edge and endpoint pair).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} violated: {}", self.property, self.detail)
    }
}

/// Everything needed to evaluate Properties 2–3 for one `(spec, view, R)`
/// triple; build once, query many times (the minimality checker reuses the
/// spec-side context across candidate merges).
pub struct PropertyChecker<'a> {
    spec: &'a WorkflowSpec,
    relevant: Vec<NodeId>,
    ctx: NrContext,
}

impl<'a> PropertyChecker<'a> {
    /// Precomputes spec-side nr-path reachability.
    pub fn new(spec: &'a WorkflowSpec, relevant: &[NodeId]) -> Self {
        let mut relevant = relevant.to_vec();
        relevant.sort();
        relevant.dedup();
        let ctx = NrContext::of_spec(spec, &relevant);
        PropertyChecker {
            spec,
            relevant,
            ctx,
        }
    }

    /// The spec-side nr context.
    pub fn ctx(&self) -> &NrContext {
        &self.ctx
    }

    /// Checks Properties 1–3 for `view`, returning the first violation.
    pub fn check(&self, view: &UserView) -> Result<(), Violation> {
        if !view.is_well_formed(&self.relevant) {
            return Err(Violation {
                property: Property::WellFormed,
                detail: "some composite contains two relevant modules".to_string(),
            });
        }
        let induced = induced_spec(self.spec, view);
        self.check_dataflow(view, &induced)
    }

    /// Collects *every* violation (diagnostics for the GUI story: the
    /// prototype lets users see why a grouping is rejected, not just that
    /// it is). More expensive than [`PropertyChecker::check`]; use for
    /// explanation, not for hot-path validation.
    pub fn collect_violations(&self, view: &UserView) -> Vec<Violation> {
        let mut out = Vec::new();
        if !view.is_well_formed(&self.relevant) {
            for c in view.composite_ids() {
                let rel: Vec<&str> = view
                    .members(c)
                    .iter()
                    .filter(|m| self.relevant.contains(m))
                    .map(|&m| self.spec.label(m))
                    .collect();
                if rel.len() > 1 {
                    out.push(Violation {
                        property: Property::WellFormed,
                        detail: format!(
                            "composite `{}` contains {} relevant modules: {rel:?}",
                            view.composite_name(c),
                            rel.len()
                        ),
                    });
                }
            }
        }
        let induced = induced_spec(self.spec, view);
        self.collect_dataflow_violations(view, &induced, &mut out);
        out
    }

    fn collect_dataflow_violations(
        &self,
        view: &UserView,
        induced: &InducedSpec,
        out: &mut Vec<Violation>,
    ) {
        let spec = self.spec;
        let map = |n: NodeId| -> NodeId {
            if n == spec.input() {
                induced.spec.input()
            } else if n == spec.output() {
                induced.spec.output()
            } else {
                induced.node(view.composite_of(n))
            }
        };
        let rel_ind: Vec<NodeId> = self.relevant.iter().map(|&r| map(r)).collect();
        let ctx_ind = NrContext::of_spec(&induced.spec, &rel_ind);
        for (_, u, v, _) in spec.graph().edges() {
            let (iu, iv) = (map(u), map(v));
            let induces = iu != iv;
            for &(r, rp) in &self.ctx.endpoint_pairs() {
                let (ir, irp) = (map(r), map(rp));
                let on_spec = self.ctx.edge_on_nr_path(u, v, r, rp);
                let on_view = induces && ctx_ind.edge_on_nr_path(iu, iv, ir, irp);
                if on_view && !on_spec {
                    out.push(Violation {
                        property: Property::PreservesDataflow,
                        detail: format!(
                            "edge ({}, {}) fabricates dataflow between {} and {}",
                            spec.label(u),
                            spec.label(v),
                            spec.label(r),
                            spec.label(rp)
                        ),
                    });
                }
                if on_spec && induces && !on_view {
                    out.push(Violation {
                        property: Property::CompleteDataflow,
                        detail: format!(
                            "edge ({}, {}) loses dataflow between {} and {}",
                            spec.label(u),
                            spec.label(v),
                            spec.label(r),
                            spec.label(rp)
                        ),
                    });
                }
            }
        }
    }

    /// Checks Properties 2–3 only (callers that already know P1 holds).
    pub fn check_dataflow(&self, view: &UserView, induced: &InducedSpec) -> Result<(), Violation> {
        let spec = self.spec;
        // Map spec nodes into the induced graph.
        let map = |n: NodeId| -> NodeId {
            if n == spec.input() {
                induced.spec.input()
            } else if n == spec.output() {
                induced.spec.output()
            } else {
                induced.node(view.composite_of(n))
            }
        };
        let rel_ind: Vec<NodeId> = self.relevant.iter().map(|&r| map(r)).collect();
        let ctx_ind = NrContext::of_spec(&induced.spec, &rel_ind);
        let pairs = self.ctx.endpoint_pairs();

        for (_, u, v, _) in spec.graph().edges() {
            let (iu, iv) = (map(u), map(v));
            // An edge induces an edge iff its endpoints map to different
            // induced nodes. Edges internal to a composite (including
            // member self-loops) induce nothing; composite self-loops arise
            // from internal *cycles* (see `zoom_model::induced_spec`) and
            // are not attributed to any single edge.
            let induces = iu != iv;
            for &(r, rp) in &pairs {
                let (ir, irp) = (map(r), map(rp));
                let on_spec = self.ctx.edge_on_nr_path(u, v, r, rp);
                let on_view = induces && ctx_ind.edge_on_nr_path(iu, iv, ir, irp);
                if on_view && !on_spec {
                    return Err(Violation {
                        property: Property::PreservesDataflow,
                        detail: format!(
                            "edge ({}, {}) induces ({}, {}) on an nr-path from {} to {} \
                             in the view, but lies on no nr-path from {} to {} in the spec",
                            spec.label(u),
                            spec.label(v),
                            induced.spec.label(iu),
                            induced.spec.label(iv),
                            induced.spec.label(ir),
                            induced.spec.label(irp),
                            spec.label(r),
                            spec.label(rp),
                        ),
                    });
                }
                if on_spec && induces && !on_view {
                    return Err(Violation {
                        property: Property::CompleteDataflow,
                        detail: format!(
                            "edge ({}, {}) lies on an nr-path from {} to {} in the spec, \
                             but its induced edge ({}, {}) is on no nr-path from {} to {}",
                            spec.label(u),
                            spec.label(v),
                            spec.label(r),
                            spec.label(rp),
                            induced.spec.label(iu),
                            induced.spec.label(iv),
                            induced.spec.label(ir),
                            induced.spec.label(irp),
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One-shot check of Properties 1–3.
pub fn check_view(
    spec: &WorkflowSpec,
    view: &UserView,
    relevant: &[NodeId],
) -> Result<(), Violation> {
    PropertyChecker::new(spec, relevant).check(view)
}

/// `true` if `view` satisfies Properties 1–3 for `relevant`.
pub fn is_good_view(spec: &WorkflowSpec, view: &UserView, relevant: &[NodeId]) -> bool {
    check_view(spec, view, relevant).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::relev_user_view_builder;
    use crate::paper::{figure4, figure6};
    use zoom_model::{CompositeModule, SpecBuilder, UserView};

    #[test]
    fn figure4_bad_view_fails_p2_and_p3() {
        let (s, rel, parts) = figure4();
        let view = UserView::new(
            "bad",
            &s,
            parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| CompositeModule::new(format!("C{}", i + 1), p))
                .collect(),
        )
        .unwrap();
        // The paper: this view is well-formed but violates both Property 2
        // and Property 3.
        assert!(view.is_well_formed(&rel));
        let checker = PropertyChecker::new(&s, &rel);
        let err = checker.check(&view).unwrap_err();
        assert!(
            err.property == Property::PreservesDataflow
                || err.property == Property::CompleteDataflow
        );

        // Assert the two specific witnesses from the paper exist:
        // P2: edge (n1, r2) induces (C(r1), C(r2)) but there is no nr-path
        //     from r1 to r2 in the spec.
        let induced = zoom_model::induced_spec(&s, &view);
        let m = |l: &str| s.module(l).unwrap();
        let map = |n| induced.node(view.composite_of(n));
        let rel_ind: Vec<_> = rel.iter().map(|&r| map(r)).collect();
        let ctx_ind = NrContext::of_spec(&induced.spec, &rel_ind);
        let ctx = NrContext::of_spec(&s, &rel);
        assert!(ctx_ind.edge_on_nr_path(map(m("n1")), map(m("r2")), map(m("r1")), map(m("r2"))));
        assert!(!ctx.edge_on_nr_path(m("n1"), m("r2"), m("r1"), m("r2")));
        // P3: edge (r1, n2) is on an nr-path r1 -> output, but the induced
        //     (C(r1), C(r3)) is not on an nr-path C(r1) -> output.
        assert!(ctx.edge_on_nr_path(m("r1"), m("n2"), m("r1"), s.output()));
        assert!(!ctx_ind.edge_on_nr_path(
            map(m("r1")),
            map(m("n2")),
            map(m("r1")),
            induced.spec.output()
        ));
    }

    #[test]
    fn collect_violations_reports_all_witnesses() {
        let (s, rel, parts) = crate::paper::figure4();
        let view = UserView::new(
            "bad",
            &s,
            parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| CompositeModule::new(format!("C{}", i + 1), p))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let checker = PropertyChecker::new(&s, &rel);
        let vs = checker.collect_violations(&view);
        // Figure 4's view violates BOTH Property 2 and Property 3.
        assert!(
            vs.iter().any(|v| v.property == Property::PreservesDataflow),
            "{vs:?}"
        );
        assert!(
            vs.iter().any(|v| v.property == Property::CompleteDataflow),
            "{vs:?}"
        );
        // A good view yields no violations.
        let good = crate::builder::relev_user_view_builder(&s, &rel)
            .unwrap()
            .view;
        assert!(checker.collect_violations(&good).is_empty());
        // A doubly-relevant composite is reported under Property 1.
        let bb = UserView::black_box(&s);
        let vs = checker.collect_violations(&bb);
        assert!(vs.iter().any(|v| v.property == Property::WellFormed));
    }

    #[test]
    fn builder_output_is_good_on_figure6() {
        let (s, rel) = figure6();
        let built = relev_user_view_builder(&s, &rel).unwrap();
        assert!(is_good_view(&s, &built.view, &rel));
    }

    #[test]
    fn admin_view_is_always_good() {
        let (s, rel) = figure6();
        let admin = UserView::admin(&s);
        assert!(is_good_view(&s, &admin, &rel));
    }

    #[test]
    fn blackbox_good_only_without_relevant_modules() {
        let (s, rel) = figure6();
        let bb = UserView::black_box(&s);
        assert!(is_good_view(&s, &bb, &[]));
        // With two relevant modules in one composite, P1 fails.
        let err = check_view(&s, &bb, &rel).unwrap_err();
        assert_eq!(err.property, Property::WellFormed);
    }

    #[test]
    fn grouping_m1_m2_fabricates_dataflow() {
        // The introduction's example: in the phylogenomic workflow, grouping
        // M1 (formatting) with relevant M2 makes it look like M2 must run
        // before M3. Reduced shape: I -> M1 -> M2 -> O, M1 -> M3 -> O with
        // M2, M3 relevant; merging {M1, M2} violates Property 2.
        let mut b = SpecBuilder::new("intro");
        b.formatting("M1");
        b.analysis("M2");
        b.analysis("M3");
        b.from_input("M1")
            .edge("M1", "M2")
            .edge("M1", "M3")
            .to_output("M2")
            .to_output("M3");
        let s = b.build().unwrap();
        let (m1, m2, m3) = (
            s.module("M1").unwrap(),
            s.module("M2").unwrap(),
            s.module("M3").unwrap(),
        );
        let rel = vec![m2, m3];
        let bad = UserView::new(
            "bad",
            &s,
            vec![
                CompositeModule::new("M12", vec![m1, m2]),
                CompositeModule::new("M3", vec![m3]),
            ],
        )
        .unwrap();
        // Both Property 2 and Property 3 are genuinely violated here (the
        // checker reports whichever it finds first); assert the specific
        // Property-2 witness from the introduction: edge (M1, M3) induces
        // (M12, C(M3)) on an nr-path M12 -> C(M3) in the view, yet there is
        // no nr-path from M2 to M3 in the spec.
        assert!(check_view(&s, &bad, &rel).is_err());
        let induced = zoom_model::induced_spec(&s, &bad);
        let map = |n| induced.node(bad.composite_of(n));
        let rel_ind: Vec<_> = rel.iter().map(|&r| map(r)).collect();
        let ctx_ind = NrContext::of_spec(&induced.spec, &rel_ind);
        let ctx = NrContext::of_spec(&s, &rel);
        assert!(ctx_ind.edge_on_nr_path(map(m1), map(m3), map(m2), map(m3)));
        assert!(!ctx.edge_on_nr_path(m1, m3, m2, m3));
    }

    #[test]
    fn self_loop_edges_handled() {
        let mut b = SpecBuilder::new("reflexive");
        b.analysis("A");
        b.analysis("R");
        b.from_input("A")
            .edge("A", "A")
            .edge("A", "R")
            .to_output("R");
        let s = b.build().unwrap();
        let rel = vec![s.module("R").unwrap()];
        let built = relev_user_view_builder(&s, &rel).unwrap();
        assert!(is_good_view(&s, &built.view, &rel));
    }
}
