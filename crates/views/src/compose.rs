//! View algebra: composing and drilling into user views.
//!
//! The paper's conclusion sketches two operations beyond the core
//! algorithm: user views "can be used in conjunction with other composite
//! module construction techniques … by either marking relevant composite
//! modules in the existing workflow specification" — i.e. building a view
//! *of an induced specification* and flattening it back (composition) —
//! "or by viewing each composite module as itself being a workflow and
//! marking relevant atomic modules contained within it" — i.e. extracting
//! a composite as a sub-workflow (drill-down). Both are implemented here.

use zoom_graph::NodeId;
use zoom_model::{
    CompositeId, CompositeModule, InducedSpec, ModelError, Result, SpecBuilder, UserView,
    WorkflowSpec,
};

/// Flattens a view of an induced specification back onto the base
/// specification: composite `K` of `coarser` (whose members are composites
/// of `base`) becomes the union of those composites' members.
///
/// `UAdmin` of the induced spec composes to `base` itself; `UBlackBox` of
/// the induced spec composes to `UBlackBox` of the base.
///
/// ```
/// use zoom_views::{compose, relev_user_view_builder};
/// use zoom_model::{induced_spec, UserView};
/// let (spec, relevant) = zoom_views::paper::figure6();
/// let base = relev_user_view_builder(&spec, &relevant).unwrap().view;
/// let ind = induced_spec(&spec, &base);
/// let flat = compose(&spec, &base, &ind, &UserView::black_box(&ind.spec)).unwrap();
/// assert_eq!(flat.size(), 1);
/// ```
pub fn compose(
    spec: &WorkflowSpec,
    base: &UserView,
    induced: &InducedSpec,
    coarser: &UserView,
) -> Result<UserView> {
    if coarser.spec_name() != induced.spec.name() {
        return Err(ModelError::SpecMismatch(format!(
            "coarser view is over `{}`, not the induced spec `{}`",
            coarser.spec_name(),
            induced.spec.name()
        )));
    }
    let mut composites = Vec::with_capacity(coarser.size());
    for k in coarser.composite_ids() {
        let mut members: Vec<NodeId> = Vec::new();
        for &ind_node in coarser.members(k) {
            let c = induced.composite(ind_node).ok_or_else(|| {
                ModelError::SpecMismatch(format!(
                    "induced node {} is not a composite of the base view",
                    induced.spec.label(ind_node)
                ))
            })?;
            members.extend_from_slice(base.members(c));
        }
        composites.push(CompositeModule::new(
            coarser.composite_name(k).to_string(),
            members,
        ));
    }
    UserView::new(
        format!("{}∘{}", coarser.name(), base.name()),
        spec,
        composites,
    )
}

/// Extracts one composite module as a standalone workflow specification:
/// its members, the edges among them, with boundary edges redirected to the
/// sub-workflow's own input/output nodes — "viewing each composite module
/// as itself being a workflow".
///
/// Returns an error if the composite has no entry from or no exit to the
/// rest of the workflow (impossible for views over valid specifications).
pub fn subworkflow(
    spec: &WorkflowSpec,
    view: &UserView,
    composite: CompositeId,
) -> Result<WorkflowSpec> {
    let members = view.members(composite);
    let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let mut b = SpecBuilder::new(format!(
        "{}::{}",
        spec.name(),
        view.composite_name(composite)
    ));
    let mut map = std::collections::HashMap::with_capacity(members.len());
    for &m in members {
        map.insert(m, b.module(spec.label(m).to_string(), spec.kind(m)));
    }
    for (_, s, t, _) in spec.graph().edges() {
        match (member_set.contains(&s), member_set.contains(&t)) {
            (true, true) => {
                b.connect(map[&s], map[&t]);
            }
            (false, true) => {
                // Entry: anything outside (including the base input) feeds
                // the sub-workflow's input node.
                b.connect(NodeId::from_index(0), map[&t]);
            }
            (true, false) => {
                b.connect(map[&s], NodeId::from_index(1));
            }
            (false, false) => {}
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::relev_user_view_builder;
    use crate::paper::figure6;
    use zoom_model::induced_spec;

    #[test]
    fn compose_with_admin_is_identity() {
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let ind = induced_spec(&s, &base);
        let admin_of_induced = UserView::admin(&ind.spec);
        let composed = compose(&s, &base, &ind, &admin_of_induced).unwrap();
        assert_eq!(composed.size(), base.size());
        for m in s.module_ids() {
            // Same partition blocks (composite ids may be permuted).
            let block = |v: &UserView| {
                let mut b: Vec<NodeId> = v.members(v.composite_of(m)).to_vec();
                b.sort();
                b
            };
            assert_eq!(block(&composed), block(&base));
        }
    }

    #[test]
    fn compose_with_blackbox_is_blackbox() {
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let ind = induced_spec(&s, &base);
        let bb = UserView::black_box(&ind.spec);
        let composed = compose(&s, &base, &ind, &bb).unwrap();
        assert_eq!(composed.size(), 1);
        assert_eq!(composed.members(CompositeId(0)).len(), s.module_count());
    }

    #[test]
    fn compose_intermediate_grouping() {
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let ind = induced_spec(&s, &base);
        // Group the two non-relevant composites NR1 = {M1,M4,M5} and
        // NR2 = {M7} at the induced level.
        let nr1 = ind.spec.module("NR1").unwrap();
        let nr2 = ind.spec.module("NR2").unwrap();
        let others: Vec<NodeId> = ind
            .spec
            .module_ids()
            .filter(|&m| m != nr1 && m != nr2)
            .collect();
        let mut parts = vec![CompositeModule::new("NRC", vec![nr1, nr2])];
        parts.extend(
            others
                .iter()
                .map(|&m| CompositeModule::new(ind.spec.label(m).to_string(), vec![m])),
        );
        let coarser = UserView::new("coarse", &ind.spec, parts).unwrap();
        let composed = compose(&s, &base, &ind, &coarser).unwrap();
        assert_eq!(composed.size(), base.size() - 1);
        let m1 = s.module("M1").unwrap();
        let m7 = s.module("M7").unwrap();
        assert_eq!(composed.composite_of(m1), composed.composite_of(m7));
    }

    #[test]
    fn compose_rejects_foreign_views() {
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let ind = induced_spec(&s, &base);
        // A view of the *base* spec is not a view of the induced spec.
        let wrong = UserView::admin(&s);
        assert!(compose(&s, &base, &ind, &wrong).is_err());
    }

    #[test]
    fn subworkflow_of_joe_m10() {
        // Extract the alignment composite {M3, M4, M5} of the Figure 6...
        // use the phylogenomic-like shape from figure6's C(M3) = {M2, M3}.
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let c_m3 = base.composite_of(s.module("M3").unwrap());
        let sub = subworkflow(&s, &base, c_m3).unwrap();
        assert_eq!(sub.module_count(), 2); // {M2, M3}
        let m2 = sub.module("M2").unwrap();
        let m3 = sub.module("M3").unwrap();
        assert!(sub.graph().has_edge(m2, m3));
        // M2's external feed (input) became the sub-workflow input; M3's
        // edge to the base output became the sub-workflow output.
        assert!(sub.graph().has_edge(sub.input(), m2));
        assert!(sub.graph().has_edge(m3, sub.output()));
    }

    #[test]
    fn subworkflow_preserves_internal_loops() {
        // A composite containing a loop keeps it.
        let mut b = SpecBuilder::new("loopy");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("C", "B")
            .to_output("C");
        let s = b.build().unwrap();
        let (bb, cc) = (s.module("B").unwrap(), s.module("C").unwrap());
        let view = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("A", vec![s.module("A").unwrap()]),
                CompositeModule::new("BC", vec![bb, cc]),
            ],
        )
        .unwrap();
        let sub = subworkflow(&s, &view, CompositeId(1)).unwrap();
        assert_eq!(sub.module_count(), 2);
        let (sb, sc) = (sub.module("B").unwrap(), sub.module("C").unwrap());
        assert!(sub.graph().has_edge(sb, sc));
        assert!(sub.graph().has_edge(sc, sb));
        assert!(!zoom_graph::algo::topo::is_acyclic(sub.graph()));
    }

    #[test]
    fn drill_down_then_rebuild() {
        // The conclusion's workflow: extract a composite, flag an atomic
        // module inside it, and run the builder on the sub-workflow.
        let (s, rel) = figure6();
        let base = relev_user_view_builder(&s, &rel).unwrap().view;
        let m1 = s.module("M1").unwrap();
        let nrc = base.composite_of(m1); // {M1, M4, M5}
        let sub = subworkflow(&s, &base, nrc).unwrap();
        assert_eq!(sub.module_count(), 3);
        let sub_rel = vec![sub.module("M4").unwrap()];
        let refined = relev_user_view_builder(&sub, &sub_rel).unwrap();
        assert!(refined.view.size() >= 1);
        assert!(crate::properties::is_good_view(
            &sub,
            &refined.view,
            &sub_rel
        ));
    }
}
