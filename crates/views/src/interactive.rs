//! Interactive view construction, mirroring ZOOM's `UserViewBuilder` pane:
//! "algorithm RelevUserViewBuilder runs interactively, allowing the user to
//! visualize the new user view each time he flags or unflags a module as
//! relevant" (Section IV).

use crate::builder::{relev_user_view_builder, BuiltView};
use std::collections::BTreeSet;
use zoom_graph::NodeId;
use zoom_model::{Result, WorkflowSpec};

/// An interactive session over one specification. Flag and unflag modules;
/// [`InteractiveViewBuilder::current`] rebuilds the good view for the
/// current relevant set.
#[derive(Debug)]
pub struct InteractiveViewBuilder<'a> {
    spec: &'a WorkflowSpec,
    relevant: BTreeSet<NodeId>,
}

impl<'a> InteractiveViewBuilder<'a> {
    /// Starts a session with no relevant modules.
    pub fn new(spec: &'a WorkflowSpec) -> Self {
        InteractiveViewBuilder {
            spec,
            relevant: BTreeSet::new(),
        }
    }

    /// The specification being viewed.
    pub fn spec(&self) -> &WorkflowSpec {
        self.spec
    }

    /// Flags a module as relevant (by label). Returns whether it changed.
    pub fn flag(&mut self, label: &str) -> Result<bool> {
        let m = self.spec.module(label)?;
        Ok(self.relevant.insert(m))
    }

    /// Unflags a module (by label). Returns whether it changed.
    pub fn unflag(&mut self, label: &str) -> Result<bool> {
        let m = self.spec.module(label)?;
        Ok(self.relevant.remove(&m))
    }

    /// Toggles a module's relevance; returns the new state.
    pub fn toggle(&mut self, label: &str) -> Result<bool> {
        let m = self.spec.module(label)?;
        if self.relevant.remove(&m) {
            Ok(false)
        } else {
            self.relevant.insert(m);
            Ok(true)
        }
    }

    /// The currently flagged modules, sorted.
    pub fn relevant(&self) -> Vec<NodeId> {
        self.relevant.iter().copied().collect()
    }

    /// Whether `label` is currently flagged.
    pub fn is_flagged(&self, label: &str) -> bool {
        self.spec
            .node_by_label(label)
            .is_some_and(|m| self.relevant.contains(&m))
    }

    /// Rebuilds the good user view for the current relevant set.
    pub fn current(&self) -> Result<BuiltView> {
        relev_user_view_builder(self.spec, &self.relevant())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::figure6;

    #[test]
    fn flag_unflag_toggle() {
        let (s, _) = figure6();
        let mut ib = InteractiveViewBuilder::new(&s);
        assert!(ib.flag("M3").unwrap());
        assert!(!ib.flag("M3").unwrap());
        assert!(ib.toggle("M6").unwrap());
        assert!(ib.is_flagged("M6"));
        assert_eq!(ib.relevant().len(), 2);
        let v = ib.current().unwrap();
        assert_eq!(v.view.size(), 4); // the Figure 6 result

        assert!(!ib.toggle("M6").unwrap());
        assert!(ib.unflag("M3").unwrap());
        assert!(!ib.unflag("M3").unwrap());
        let v = ib.current().unwrap();
        assert_eq!(v.view.size(), 1); // nothing relevant: one composite
    }

    #[test]
    fn unknown_label_errors() {
        let (s, _) = figure6();
        let mut ib = InteractiveViewBuilder::new(&s);
        assert!(ib.flag("Mxx").is_err());
        assert!(!ib.is_flagged("Mxx"));
    }

    #[test]
    fn view_evolves_with_flags() {
        // Size grows as more modules become relevant (paper's Optimality
        // experiment: each added relevant module adds about one composite).
        let (s, _) = figure6();
        let mut ib = InteractiveViewBuilder::new(&s);
        let mut last = ib.current().unwrap().view.size();
        for l in ["M3", "M6", "M1", "M7"] {
            ib.flag(l).unwrap();
            let size = ib.current().unwrap().view.size();
            assert!(size >= last, "view size should not shrink as R grows");
            last = size;
        }
    }
}
