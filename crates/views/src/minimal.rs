//! Minimality of user views (Theorem 1): a view is *minimal* when no two of
//! its composite modules can be merged into one without violating
//! Properties 1–3.

use crate::properties::PropertyChecker;
use zoom_graph::NodeId;
use zoom_model::{CompositeId, CompositeModule, UserView, WorkflowSpec};

/// Builds the view obtained from `view` by merging composites `i` and `j`.
pub fn merge_composites(
    spec: &WorkflowSpec,
    view: &UserView,
    i: CompositeId,
    j: CompositeId,
) -> UserView {
    assert_ne!(i, j, "cannot merge a composite with itself");
    let mut composites: Vec<CompositeModule> = Vec::with_capacity(view.size() - 1);
    let mut merged_members: Vec<NodeId> = view.members(i).to_vec();
    merged_members.extend_from_slice(view.members(j));
    for c in view.composite_ids() {
        if c == i {
            composites.push(CompositeModule::new(
                format!("{}+{}", view.composite_name(i), view.composite_name(j)),
                merged_members.clone(),
            ));
        } else if c != j {
            composites.push(view.composites()[c.index()].clone());
        }
    }
    UserView::new(format!("{}~merged", view.name()), spec, composites)
        .expect("merging two parts of a partition yields a partition")
}

/// Finds a pair of composites whose merge still satisfies Properties 1–3,
/// if any (i.e. a witness that `view` is *not* minimal).
pub fn mergeable_pair(
    spec: &WorkflowSpec,
    view: &UserView,
    relevant: &[NodeId],
) -> Option<(CompositeId, CompositeId)> {
    let checker = PropertyChecker::new(spec, relevant);
    let ids: Vec<CompositeId> = view.composite_ids().collect();
    for (a, &i) in ids.iter().enumerate() {
        for &j in &ids[a + 1..] {
            // Cheap pre-filter: a merge of two relevant composites always
            // breaks Property 1.
            let rel_count = |c: CompositeId| {
                view.members(c)
                    .iter()
                    .filter(|m| relevant.contains(m))
                    .count()
            };
            if rel_count(i) + rel_count(j) > 1 {
                continue;
            }
            let merged = merge_composites(spec, view, i, j);
            if checker.check(&merged).is_ok() {
                return Some((i, j));
            }
        }
    }
    None
}

/// `true` if no pair of composites can be merged while preserving
/// Properties 1–3.
pub fn is_minimal(spec: &WorkflowSpec, view: &UserView, relevant: &[NodeId]) -> bool {
    mergeable_pair(spec, view, relevant).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::relev_user_view_builder;
    use crate::paper::figure6;
    use zoom_model::UserView;

    #[test]
    fn builder_output_is_minimal_on_figure6() {
        let (s, rel) = figure6();
        let built = relev_user_view_builder(&s, &rel).unwrap();
        assert!(is_minimal(&s, &built.view, &rel));
    }

    #[test]
    fn admin_view_is_not_minimal_when_things_can_merge() {
        let (s, rel) = figure6();
        let admin = UserView::admin(&s);
        // UAdmin keeps M2 separate from M3, but C(M3) = {M2, M3} is fine, so
        // UAdmin is not minimal for R = {M3, M6}.
        let pair = mergeable_pair(&s, &admin, &rel);
        assert!(pair.is_some());
    }

    #[test]
    fn merge_composites_shapes() {
        let (s, _) = figure6();
        let admin = UserView::admin(&s);
        let merged = merge_composites(&s, &admin, CompositeId(0), CompositeId(1));
        assert_eq!(merged.size(), admin.size() - 1);
        assert_eq!(merged.composites()[0].members.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_same_composite_panics() {
        let (s, _) = figure6();
        let admin = UserView::admin(&s);
        merge_composites(&s, &admin, CompositeId(0), CompositeId(0));
    }
}
