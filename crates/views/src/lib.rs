#![warn(missing_docs)]

//! # zoom-views
//!
//! User-view theory from *"Querying and Managing Provenance through User
//! Views in Scientific Workflows"* (ICDE 2008), Section III:
//!
//! * [`nrpath`] — nr-paths and the `rpred`/`rsucc` reachability functions;
//! * [`properties`] — Properties 1–3 of a *good* user view (well-formed,
//!   preserves dataflow, complete w.r.t. dataflow);
//! * [`builder`] — the paper's `RelevUserViewBuilder` algorithm (Figure 5);
//! * [`minimal`] — Theorem 1's minimality check (no pair of composites can
//!   be merged);
//! * [`minimum`] — exhaustive minimum-view search for small specifications
//!   (the paper's open problem, and its Figure 7 minimal-vs-minimum gap);
//! * [`mod@compose`] — view algebra: flattening a view of an induced spec back
//!   onto the base, and extracting a composite as a sub-workflow;
//! * [`interactive`] — flag/unflag-driven view building, as in the ZOOM
//!   prototype's GUI;
//! * [`paper`] — reconstructions of the paper's worked examples (Figures 4,
//!   6, 7), shared by tests, examples, and benches.

pub mod builder;
pub mod compose;
pub mod interactive;
pub mod minimal;
pub mod minimum;
pub mod nrpath;
pub mod paper;
pub mod properties;

pub use builder::{relev_user_view_builder, BuiltView};
pub use compose::{compose, subworkflow};
pub use interactive::InteractiveViewBuilder;
pub use minimal::{is_minimal, merge_composites, mergeable_pair};
pub use minimum::{minimum_view, DEFAULT_MAX_MODULES};
pub use nrpath::NrContext;
pub use properties::{check_view, is_good_view, Property, PropertyChecker, Violation};
