//! `RelevUserViewBuilder` (Section III, Figure 5): constructs a *good* user
//! view from a set of relevant modules.
//!
//! The algorithm has three steps:
//!
//! 1. **Relevant composites.** For each relevant module `r`, create
//!    `C(r) = in(r) ∪ out(r) ∪ {r}` where `in(r)` are the non-relevant
//!    modules whose only relevant successor (over nr-paths) is `r`, and
//!    `out(r)` the still-unmarked non-relevant modules whose only relevant
//!    predecessor is `r`.
//! 2. **Non-relevant composites.** Group the remaining non-relevant modules
//!    by equal `(rpred, rsucc)` pairs.
//! 3. **Merging.** Repeatedly merge two non-relevant composites `M1, M2`
//!    when doing so cannot fabricate or destroy nr-paths: writing
//!    `M = M1 ∪ M2`, every exit point of `M` must satisfy
//!    `rpred(n) = rpredM(M)` and every entry point `rsucc(n) = rsuccM(M)`.
//!
//! The result is well-formed, preserves and is complete w.r.t. dataflow
//! (Properties 1–3), and is minimal — no two of its composites can be merged
//! without breaking a property (Theorem 1). It is **not** guaranteed to be
//! *minimum*; finding a polynomial algorithm for minimum good views is the
//! paper's open problem (see [`crate::minimum`]).
//!
//! Complexity: `O(|R| · (V + E))` for the nr-path sweeps plus the merging
//! fixpoint — polynomial, and in practice well under the paper's 80 ms on
//! thousand-node specifications (see the `builder_scalability` bench).

use crate::nrpath::NrContext;
use zoom_graph::{BitSet, NodeId};
use zoom_model::{CompositeModule, Result, UserView, WorkflowSpec};

/// Output of [`relev_user_view_builder`], retaining which composites are
/// relevant (contain a relevant module) for the evaluation harness.
#[derive(Clone, Debug)]
pub struct BuiltView {
    /// The constructed user view.
    pub view: UserView,
    /// Number of relevant composites (= number of relevant modules).
    pub relevant_composites: usize,
    /// Number of non-relevant composites ("as few as possible").
    pub non_relevant_composites: usize,
}

/// Runs `RelevUserViewBuilder` on `spec` with the given relevant modules.
///
/// Relevant composites are named after their relevant module; non-relevant
/// composites are named `NR1, NR2, …` in order of their smallest member.
/// Passing an empty relevant set yields a single non-relevant composite
/// containing the whole workflow (the black-box view).
///
/// ```
/// use zoom_views::{relev_user_view_builder, is_good_view, is_minimal};
/// # fn main() -> zoom_model::Result<()> {
/// let (spec, relevant) = zoom_views::paper::figure6();
/// let built = relev_user_view_builder(&spec, &relevant)?;
/// assert_eq!(built.view.size(), 4); // the paper's result
/// assert!(is_good_view(&spec, &built.view, &relevant));
/// assert!(is_minimal(&spec, &built.view, &relevant));
///
/// // Boundary cases are total, not panics: an empty relevant set —
/// // the inverted-relevance form of "every module hidden" — yields
/// // the single black-box composite rather than unwrapping on an
/// // empty partition.
/// let black_box = relev_user_view_builder(&spec, &[])?;
/// assert_eq!(black_box.view.size(), 1);
/// # Ok(())
/// # }
/// ```
pub fn relev_user_view_builder(spec: &WorkflowSpec, relevant: &[NodeId]) -> Result<BuiltView> {
    let mut relevant: Vec<NodeId> = relevant.to_vec();
    relevant.sort();
    relevant.dedup();
    let ctx = NrContext::of_spec(spec, &relevant);
    let n = spec.graph().node_count();

    let singleton = |x: NodeId| -> BitSet {
        let mut s = BitSet::new(n);
        s.insert(x.index());
        s
    };

    // --- Step 1: relevant composite modules.
    let mut marked = BitSet::new(n);
    for &r in &relevant {
        marked.insert(r.index()); // relevant modules never join step 2
    }
    let mut relevant_parts: Vec<Vec<NodeId>> = vec![Vec::new(); relevant.len()];
    // in(r): non-relevant n with rsucc(n) = {r}.
    for (i, &r) in relevant.iter().enumerate() {
        let want = singleton(r);
        for m in spec.module_ids() {
            if !marked.contains(m.index()) && *ctx.rsucc(m) == want {
                relevant_parts[i].push(m);
                marked.insert(m.index());
            }
        }
    }
    // out(r): unmarked non-relevant n with rpred(n) = {r}.
    for (i, &r) in relevant.iter().enumerate() {
        let want = singleton(r);
        for m in spec.module_ids() {
            if !marked.contains(m.index()) && *ctx.rpred(m) == want {
                relevant_parts[i].push(m);
                marked.insert(m.index());
            }
        }
    }
    for (i, &r) in relevant.iter().enumerate() {
        relevant_parts[i].push(r);
    }

    // --- Step 2: group unmarked non-relevant modules by (rpred, rsucc).
    struct Nrc {
        members: Vec<NodeId>,
        rpred: BitSet,
        rsucc: BitSet,
    }
    let mut nrc: Vec<Nrc> = Vec::new();
    for m in spec.module_ids() {
        if marked.contains(m.index()) {
            continue;
        }
        let (rp, rs) = (ctx.rpred(m), ctx.rsucc(m));
        if let Some(g) = nrc.iter_mut().find(|g| g.rpred == *rp && g.rsucc == *rs) {
            g.members.push(m);
        } else {
            nrc.push(Nrc {
                members: vec![m],
                rpred: rp.clone(),
                rsucc: rs.clone(),
            });
        }
    }

    // --- Step 3: merge non-relevant composites while it is safe.
    //
    // Safety condition (Figure 5, line 23): with M = M1 ∪ M2,
    //   ∀n ∈ V+(M): rpred(n) = rpredM(M)   and
    //   ∀n ∈ V−(M): rsucc(n) = rsuccM(M),
    // where V−/V+ are the entry/exit points of M in the specification.
    let in_set = |members: &[NodeId]| -> BitSet {
        let mut s = BitSet::new(n);
        for &m in members {
            s.insert(m.index());
        }
        s
    };
    'merge: loop {
        for i in 0..nrc.len() {
            for j in (i + 1)..nrc.len() {
                let mut members = nrc[i].members.clone();
                members.extend_from_slice(&nrc[j].members);
                let mset = in_set(&members);
                let mut rpred_m = nrc[i].rpred.clone();
                rpred_m.union_with(&nrc[j].rpred);
                let mut rsucc_m = nrc[i].rsucc.clone();
                rsucc_m.union_with(&nrc[j].rsucc);

                let ok = members.iter().all(|&m| {
                    let exit = spec
                        .graph()
                        .successors(m)
                        .any(|s| !mset.contains(s.index()));
                    let entry = spec
                        .graph()
                        .predecessors(m)
                        .any(|p| !mset.contains(p.index()));
                    (!exit || *ctx.rpred(m) == rpred_m) && (!entry || *ctx.rsucc(m) == rsucc_m)
                });
                if ok {
                    let merged = Nrc {
                        members,
                        rpred: rpred_m,
                        rsucc: rsucc_m,
                    };
                    nrc.remove(j);
                    nrc[i] = merged;
                    continue 'merge;
                }
            }
        }
        break;
    }

    // --- Assemble the view (deterministic composite order: relevant
    // composites by relevant-module id, then non-relevant by smallest
    // member).
    let mut composites: Vec<CompositeModule> = Vec::with_capacity(relevant.len() + nrc.len());
    for (i, &r) in relevant.iter().enumerate() {
        composites.push(CompositeModule::new(
            format!("C({})", spec.label(r)),
            std::mem::take(&mut relevant_parts[i]),
        ));
    }
    let mut nrc_parts: Vec<Vec<NodeId>> = nrc
        .into_iter()
        .map(|g| {
            let mut m = g.members;
            m.sort();
            m
        })
        .collect();
    nrc_parts.sort_by_key(|g| g[0]);
    let non_relevant_composites = nrc_parts.len();
    for (k, part) in nrc_parts.into_iter().enumerate() {
        composites.push(CompositeModule::new(format!("NR{}", k + 1), part));
    }

    let view_name = format!("UV({})", {
        let labels: Vec<&str> = relevant.iter().map(|&r| spec.label(r)).collect();
        labels.join(",")
    });
    let view = UserView::new(view_name, spec, composites)?;
    Ok(BuiltView {
        view,
        relevant_composites: relevant.len(),
        non_relevant_composites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::figure6;
    use zoom_model::SpecBuilder;

    /// Member labels of the composite containing `label`, sorted.
    fn composite_labels(spec: &WorkflowSpec, view: &UserView, label: &str) -> Vec<String> {
        let m = spec.module(label).unwrap();
        let c = view.composite_of(m);
        let mut ls: Vec<String> = view
            .members(c)
            .iter()
            .map(|&x| spec.label(x).to_string())
            .collect();
        ls.sort();
        ls
    }

    #[test]
    fn figure6_produces_the_papers_view() {
        let (s, rel) = figure6();
        let built = relev_user_view_builder(&s, &rel).unwrap();
        let v = &built.view;
        // The paper's result: {M2,M3}, {M6,M8}, {M1,M4,M5}, {M7} — size 4.
        assert_eq!(v.size(), 4);
        assert_eq!(built.relevant_composites, 2);
        assert_eq!(built.non_relevant_composites, 2);
        assert_eq!(composite_labels(&s, v, "M3"), vec!["M2", "M3"]);
        assert_eq!(composite_labels(&s, v, "M6"), vec!["M6", "M8"]);
        assert_eq!(composite_labels(&s, v, "M1"), vec!["M1", "M4", "M5"]);
        assert_eq!(composite_labels(&s, v, "M7"), vec!["M7"]);
        assert!(v.is_well_formed(&rel));
    }

    #[test]
    fn empty_relevant_set_gives_one_composite() {
        let (s, _) = figure6();
        let built = relev_user_view_builder(&s, &[]).unwrap();
        assert_eq!(built.view.size(), 1);
        assert_eq!(built.relevant_composites, 0);
    }

    #[test]
    fn all_relevant_gives_admin_sized_view() {
        let (s, _) = figure6();
        let all: Vec<_> = s.module_ids().collect();
        let built = relev_user_view_builder(&s, &all).unwrap();
        assert_eq!(built.view.size(), s.module_count());
        assert!(built
            .view
            .composites()
            .iter()
            .all(zoom_model::CompositeModule::is_singleton));
    }

    #[test]
    fn linear_chain_absorbs_formatting() {
        // I -> F1 -> R -> F2 -> O with R relevant: everything joins C(R).
        let mut b = SpecBuilder::new("chain");
        b.formatting("F1");
        b.analysis("R");
        b.formatting("F2");
        b.from_input("F1")
            .edge("F1", "R")
            .edge("R", "F2")
            .to_output("F2");
        let s = b.build().unwrap();
        let rel = vec![s.module("R").unwrap()];
        let built = relev_user_view_builder(&s, &rel).unwrap();
        assert_eq!(built.view.size(), 1);
        assert_eq!(
            composite_labels(&s, &built.view, "R"),
            vec!["F1", "F2", "R"]
        );
    }

    #[test]
    fn in_r_takes_priority_over_out_r() {
        // I -> r1 -> n -> r2 -> O: n has rpred {r1} and rsucc {r2}; the
        // in-loop runs first, so n lands in in(r2), not out(r1).
        let mut b = SpecBuilder::new("prio");
        b.analysis("r1");
        b.formatting("n");
        b.analysis("r2");
        b.from_input("r1")
            .edge("r1", "n")
            .edge("n", "r2")
            .to_output("r2");
        let s = b.build().unwrap();
        let rel = vec![s.module("r1").unwrap(), s.module("r2").unwrap()];
        let built = relev_user_view_builder(&s, &rel).unwrap();
        assert_eq!(built.view.size(), 2);
        assert_eq!(composite_labels(&s, &built.view, "r2"), vec!["n", "r2"]);
        assert_eq!(composite_labels(&s, &built.view, "r1"), vec!["r1"]);
    }

    #[test]
    fn duplicate_relevant_input_tolerated() {
        let (s, rel) = figure6();
        let doubled: Vec<_> = rel.iter().chain(rel.iter()).copied().collect();
        let built = relev_user_view_builder(&s, &doubled).unwrap();
        assert_eq!(built.view.size(), 4);
    }

    #[test]
    fn view_names_are_deterministic() {
        let (s, rel) = figure6();
        let b1 = relev_user_view_builder(&s, &rel).unwrap();
        let b2 = relev_user_view_builder(&s, &rel).unwrap();
        assert_eq!(b1.view.name(), b2.view.name());
        assert_eq!(b1.view.name(), "UV(M3,M6)");
        let names: Vec<_> = b1
            .view
            .composites()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["C(M3)", "C(M6)", "NR1", "NR2"]);
    }
}
