//! The worked examples of the paper's Section III, reconstructed as
//! specifications.
//!
//! The 8-page paper describes Figures 4, 6, and 7 partly in prose; the
//! graphs here are reconstructions consistent with **every** value stated in
//! the text (the unit tests in this crate assert each one).

use zoom_graph::NodeId;
use zoom_model::{SpecBuilder, WorkflowSpec};

/// Figure 6 — the running example of `RelevUserViewBuilder`.
///
/// Relevant modules: `{M3, M6}`. The paper states:
/// `in(M3) = {M2}`, `out(M6) = {M8}`,
/// `rpred(M4) = rpred(M5) = {input}`, `rsucc(M4) = rsucc(M5) = {M3, output}`,
/// `rpred(M1) = {input}`, `rsucc(M1) = {M3, M6, output}`,
/// `rpred(M7) = {input, M6}`, `rsucc(M7) = {output}`;
/// step 3 merges `{M1}` with `{M4, M5}` but cannot merge the result with
/// `{M7}`. All of these hold on this reconstruction:
///
/// ```text
/// I→M1, I→M2, I→M7; M1→M4, M1→M6; M2→M3; M3→O; M4→M5, M4→O;
/// M5→M3, M5→O; M6→M7, M6→M8; M7→O; M8→O
/// ```
pub fn figure6() -> (WorkflowSpec, Vec<NodeId>) {
    let mut b = SpecBuilder::new("fig6");
    for i in 1..=8 {
        b.analysis(format!("M{i}"));
    }
    b.from_input("M1")
        .from_input("M2")
        .from_input("M7")
        .edge("M1", "M4")
        .edge("M1", "M6")
        .edge("M2", "M3")
        .to_output("M3")
        .edge("M4", "M5")
        .to_output("M4")
        .edge("M5", "M3")
        .to_output("M5")
        .edge("M6", "M7")
        .edge("M6", "M8")
        .to_output("M7")
        .to_output("M8");
    let s = b.build().expect("figure 6 reconstruction is a valid spec");
    let r = vec![
        s.module("M3").expect("exists"),
        s.module("M6").expect("exists"),
    ];
    (s, r)
}

/// Figure 4 — the counterexample for Properties 2 and 3.
///
/// Relevant modules `{r1, r2, r3}` and the (bad) view
/// `U = { {r1, n1}, {r2}, {r3, n2} }`:
/// the edge `(n1, r2)` induces `(C(r1), C(r2))` although there is no path
/// from `r1` to `r2` (Property 2 fails), and the edge `(r1, n2)` is on an
/// nr-path from `r1` to `output` while the induced `(C(r1), C(r3))` is not
/// on an nr-path from `C(r1)` to `output` (Property 3 fails).
///
/// ```text
/// I→n1, n1→r2, r2→O;  I→r1, r1→n2, n2→O;  I→r3, r3→O
/// ```
///
/// Returns `(spec, relevant, bad_view_parts)` where `bad_view_parts` are the
/// member lists of the ill-behaved view in the order `C(r1), C(r2), C(r3)`.
pub fn figure4() -> (WorkflowSpec, Vec<NodeId>, Vec<Vec<NodeId>>) {
    let mut b = SpecBuilder::new("fig4");
    b.analysis("r1");
    b.analysis("r2");
    b.analysis("r3");
    b.formatting("n1");
    b.formatting("n2");
    b.from_input("n1")
        .edge("n1", "r2")
        .to_output("r2")
        .from_input("r1")
        .edge("r1", "n2")
        .to_output("n2")
        .from_input("r3")
        .to_output("r3");
    let s = b.build().expect("figure 4 reconstruction is a valid spec");
    let m = |l: &str| s.module(l).expect("exists");
    let relevant = vec![m("r1"), m("r2"), m("r3")];
    let parts = vec![
        vec![m("r1"), m("n1")],
        vec![m("r2")],
        vec![m("r3"), m("n2")],
    ];
    (s, relevant, parts)
}

/// Figure 7 — a specification on which `RelevUserViewBuilder` produces a
/// *minimal* view that is not *minimum*. The paper's figure is not fully
/// specified in prose, so this is a verified surrogate exhibiting exactly
/// the phenomenon and the sizes the paper reports: the algorithm returns a
/// good view of **size 5**, while the exhaustive search finds a good view of
/// **size 4** — one that, as the paper remarks, "does not combine modules
/// with same rpred/rsucc".
///
/// ```text
/// I→M1, I→M2;  M1→M6, M1→M7;  M2→M3, M2→M5;  M3→M4;
/// M4→O, M5→O, M6→O, M7→O          relevant R = {M4, M6}
/// ```
///
/// `M5` and `M7` share `(rpred, rsucc) = ({input}, {output})`, so step 2
/// groups them; step 3 can merge nothing more, giving
/// `{M3,M4}, {M6}, {M1}, {M2}, {M5,M7}` (size 5, minimal). The minimum
/// solution `{M4}, {M6}, {M1,M7}, {M2,M3,M5}` (size 4) *separates* M5 from
/// M7, which the rpred/rsucc grouping heuristic can never do.
pub fn figure7() -> (WorkflowSpec, Vec<NodeId>) {
    let mut b = SpecBuilder::new("fig7");
    for i in 1..=7 {
        b.analysis(format!("M{i}"));
    }
    b.from_input("M1")
        .from_input("M2")
        .edge("M1", "M6")
        .edge("M1", "M7")
        .edge("M2", "M3")
        .edge("M2", "M5")
        .edge("M3", "M4")
        .to_output("M4")
        .to_output("M5")
        .to_output("M6")
        .to_output("M7");
    let s = b.build().expect("figure 7 surrogate is a valid spec");
    let r = vec![
        s.module("M4").expect("exists"),
        s.module("M6").expect("exists"),
    ];
    (s, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_build() {
        let (s6, r6) = figure6();
        assert_eq!(s6.module_count(), 8);
        assert_eq!(r6.len(), 2);
        let (s4, r4, parts) = figure4();
        assert_eq!(s4.module_count(), 5);
        assert_eq!(r4.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 5);
        let (s7, r7) = figure7();
        assert_eq!(s7.module_count(), 7);
        assert_eq!(r7.len(), 2);
    }

    #[test]
    fn figure7_exhibits_minimal_but_not_minimum() {
        let (s, rel) = figure7();
        let built = crate::builder::relev_user_view_builder(&s, &rel).unwrap();
        assert_eq!(built.view.size(), 5, "algorithm returns size 5");
        assert!(crate::properties::is_good_view(&s, &built.view, &rel));
        assert!(crate::minimal::is_minimal(&s, &built.view, &rel));
        let min = crate::minimum::minimum_view(&s, &rel, 9).unwrap();
        assert_eq!(min.size(), 4, "a good view of size 4 exists");
        assert!(crate::properties::is_good_view(&s, &min, &rel));
        // The minimum separates M5 from M7 although they share
        // (rpred, rsucc) — the grouping heuristic cannot find it.
        let (m5, m7) = (s.module("M5").unwrap(), s.module("M7").unwrap());
        assert_ne!(min.composite_of(m5), min.composite_of(m7));
        assert_eq!(built.view.composite_of(m5), built.view.composite_of(m7));
    }
}
