//! nr-paths and the `rpred` / `rsucc` functions (Section III).
//!
//! An *nr-path* is a path in the specification (or in an induced view graph)
//! that contains no **relevant** intermediate module; its endpoints are
//! unconstrained. For every node `n` the paper defines
//!
//! * `rpred(n) = { r ∈ R ∪ {input}  | there is an nr-path from r to n }`
//! * `rsucc(n) = { r ∈ R ∪ {output} | there is an nr-path from n to r }`
//!
//! Both are computed here with one constrained BFS per element of
//! `R ∪ {input}` (resp. `R ∪ {output}`), i.e. `O(|R| · (V + E))` total —
//! the bound that makes `RelevUserViewBuilder` polynomial.

use zoom_graph::{constrained_reachable_set, BitSet, Digraph, Direction, NodeId};
use zoom_model::WorkflowSpec;

/// Precomputed nr-path reachability over one graph and one relevant set.
///
/// Sets are bit sets over the graph's node indices; the `input` and `output`
/// special nodes participate with their own indices (0 and 1 in any
/// [`WorkflowSpec`]).
///
/// ```
/// use zoom_views::NrContext;
/// let (spec, relevant) = zoom_views::paper::figure6();
/// let ctx = NrContext::of_spec(&spec, &relevant);
/// // The paper's stated value: rpred(M7) = {input, M6}.
/// let m7 = spec.module("M7").unwrap();
/// let rpred = ctx.rpred_nodes(m7);
/// assert!(rpred.contains(&spec.input()));
/// assert!(rpred.contains(&spec.module("M6").unwrap()));
/// assert_eq!(rpred.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct NrContext {
    relevant: BitSet,
    relevant_list: Vec<NodeId>,
    input: NodeId,
    output: NodeId,
    rpred: Vec<BitSet>,
    rsucc: Vec<BitSet>,
}

impl NrContext {
    /// Builds the context for a workflow specification.
    pub fn of_spec(spec: &WorkflowSpec, relevant: &[NodeId]) -> Self {
        Self::new(spec.graph(), spec.input(), spec.output(), relevant)
    }

    /// Builds the context for an arbitrary graph with designated
    /// input/output nodes (used for induced view graphs, whose relevant
    /// nodes are the relevant composites).
    pub fn new<N, E>(
        graph: &Digraph<N, E>,
        input: NodeId,
        output: NodeId,
        relevant: &[NodeId],
    ) -> Self {
        let n = graph.node_count();
        let mut rel = BitSet::new(n);
        let mut relevant_list: Vec<NodeId> = relevant.to_vec();
        relevant_list.sort();
        relevant_list.dedup();
        for &r in &relevant_list {
            rel.insert(r.index());
        }

        let mut rpred = vec![BitSet::new(n); n];
        let mut rsucc = vec![BitSet::new(n); n];

        // Forward sweeps from each r ∈ R ∪ {input}: nodes reached by an
        // nr-path from r gain r in their rpred set. Intermediates must be
        // non-relevant (input/output cannot be intermediates structurally).
        for &r in relevant_list.iter().chain(std::iter::once(&input)) {
            let reached = constrained_reachable_set(graph, r, Direction::Forward, |m| {
                !rel.contains(m.index())
            });
            for i in reached.iter() {
                rpred[i].insert(r.index());
            }
        }

        // Backward sweeps from each r ∈ R ∪ {output}.
        for &r in relevant_list.iter().chain(std::iter::once(&output)) {
            let reached = constrained_reachable_set(graph, r, Direction::Backward, |m| {
                !rel.contains(m.index())
            });
            for i in reached.iter() {
                rsucc[i].insert(r.index());
            }
        }

        NrContext {
            relevant: rel,
            relevant_list,
            input,
            output,
            rpred,
            rsucc,
        }
    }

    /// The sorted relevant nodes.
    pub fn relevant(&self) -> &[NodeId] {
        &self.relevant_list
    }

    /// Whether `n` is relevant.
    pub fn is_relevant(&self, n: NodeId) -> bool {
        self.relevant.contains(n.index())
    }

    /// The graph's input node.
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// The graph's output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// `rpred(n)` as a bit set over node indices.
    pub fn rpred(&self, n: NodeId) -> &BitSet {
        &self.rpred[n.index()]
    }

    /// `rsucc(n)` as a bit set over node indices.
    pub fn rsucc(&self, n: NodeId) -> &BitSet {
        &self.rsucc[n.index()]
    }

    /// `rpred(n)` as a sorted node list (for display and tests).
    pub fn rpred_nodes(&self, n: NodeId) -> Vec<NodeId> {
        self.rpred[n.index()]
            .iter()
            .map(NodeId::from_index)
            .collect()
    }

    /// `rsucc(n)` as a sorted node list (for display and tests).
    pub fn rsucc_nodes(&self, n: NodeId) -> Vec<NodeId> {
        self.rsucc[n.index()]
            .iter()
            .map(NodeId::from_index)
            .collect()
    }

    /// Whether there is an nr-path from `r` to `n` (`r ∈ R ∪ {input}`).
    pub fn nr_reaches(&self, r: NodeId, n: NodeId) -> bool {
        self.rpred[n.index()].contains(r.index())
    }

    /// `rpredM(M) = ⋃_{n ∈ M} rpred(n)`.
    pub fn rpred_of_set(&self, members: &[NodeId]) -> BitSet {
        let mut acc = BitSet::new(self.rpred.len());
        for &m in members {
            acc.union_with(&self.rpred[m.index()]);
        }
        acc
    }

    /// `rsuccM(M) = ⋃_{n ∈ M} rsucc(n)`.
    pub fn rsucc_of_set(&self, members: &[NodeId]) -> BitSet {
        let mut acc = BitSet::new(self.rsucc.len());
        for &m in members {
            acc.union_with(&self.rsucc[m.index()]);
        }
        acc
    }

    /// Whether edge `(u, v)` lies on an nr-path from `r` to `r'`
    /// (`r ∈ R ∪ {input}`, `r' ∈ R ∪ {output}`): the prefix `r ⇝ u` and the
    /// suffix `v ⇝ r'` must both be nr-connectable, with `u`/`v` allowed to
    /// coincide with the endpoints.
    pub fn edge_on_nr_path(&self, u: NodeId, v: NodeId, r: NodeId, rp: NodeId) -> bool {
        let left = u == r || (!self.is_relevant(u) && self.nr_reaches(r, u));
        let right = v == rp || (!self.is_relevant(v) && self.rsucc[v.index()].contains(rp.index()));
        left && right
    }

    /// Iterates over the endpoint pairs `(r, r')` that Properties 2 and 3
    /// quantify over: `(R ∪ {input}) × (R ∪ {output})`.
    pub fn endpoint_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let lefts: Vec<NodeId> = self
            .relevant_list
            .iter()
            .copied()
            .chain(std::iter::once(self.input))
            .collect();
        let rights: Vec<NodeId> = self
            .relevant_list
            .iter()
            .copied()
            .chain(std::iter::once(self.output))
            .collect();
        let mut out = Vec::with_capacity(lefts.len() * rights.len());
        for &l in &lefts {
            for &r in &rights {
                out.push((l, r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::figure6;
    use zoom_model::SpecBuilder;

    #[test]
    fn figure6_rpred_rsucc_match_paper() {
        let (s, rel) = figure6();
        let ctx = NrContext::of_spec(&s, &rel);
        let m = |l: &str| s.module(l).unwrap();
        let (i, o) = (s.input(), s.output());

        // Values stated verbatim in Section III.
        assert_eq!(ctx.rpred_nodes(m("M4")), vec![i]);
        assert_eq!(ctx.rpred_nodes(m("M5")), vec![i]);
        let mut rs4 = ctx.rsucc_nodes(m("M4"));
        rs4.sort();
        let mut expected = vec![m("M3"), o];
        expected.sort();
        assert_eq!(rs4, expected);
        assert_eq!(ctx.rsucc_nodes(m("M5")), {
            let mut e = vec![m("M3"), o];
            e.sort();
            e
        });
        assert_eq!(ctx.rpred_nodes(m("M1")), vec![i]);
        assert_eq!(ctx.rsucc_nodes(m("M1")), {
            let mut e = vec![m("M3"), m("M6"), o];
            e.sort();
            e
        });
        assert_eq!(ctx.rpred_nodes(m("M7")), {
            let mut e = vec![i, m("M6")];
            e.sort();
            e
        });
        assert_eq!(ctx.rsucc_nodes(m("M7")), vec![o]);

        // "in(M3) = {M2}": rsucc(M2) = {M3}.
        assert_eq!(ctx.rsucc_nodes(m("M2")), vec![m("M3")]);
        // "out(M6) = {M8}": rpred(M8) = {M6}.
        assert_eq!(ctx.rpred_nodes(m("M8")), vec![m("M6")]);
    }

    #[test]
    fn relevant_nodes_block_paths() {
        // I -> A -> r -> B -> O: no nr-path from A to B (r intermediate).
        let mut b = SpecBuilder::new("block");
        b.analysis("A");
        b.analysis("r");
        b.analysis("B");
        b.from_input("A")
            .edge("A", "r")
            .edge("r", "B")
            .to_output("B");
        let s = b.build().unwrap();
        let rel = vec![s.module("r").unwrap()];
        let ctx = NrContext::of_spec(&s, &rel);
        let (a, r, bb) = (
            s.module("A").unwrap(),
            s.module("r").unwrap(),
            s.module("B").unwrap(),
        );
        // rsucc(A) = {r}: the path to output is blocked by r.
        assert_eq!(ctx.rsucc_nodes(a), vec![r]);
        // rpred(B) = {r}.
        assert_eq!(ctx.rpred_nodes(bb), vec![r]);
        // rpred of the relevant node itself: input reaches it through A.
        assert_eq!(ctx.rpred_nodes(r), vec![s.input()]);
        assert!(ctx.is_relevant(r));
        assert!(!ctx.is_relevant(a));
    }

    #[test]
    fn edge_on_nr_path_endpoints() {
        let mut b = SpecBuilder::new("e");
        b.analysis("A");
        b.analysis("r");
        b.from_input("A").edge("A", "r").to_output("r");
        let s = b.build().unwrap();
        let rel = vec![s.module("r").unwrap()];
        let ctx = NrContext::of_spec(&s, &rel);
        let (a, r) = (s.module("A").unwrap(), s.module("r").unwrap());
        // Edge (A, r) lies on an nr-path input -> r.
        assert!(ctx.edge_on_nr_path(a, r, s.input(), r));
        // Edge (input, A) lies on the same nr-path.
        assert!(ctx.edge_on_nr_path(s.input(), a, s.input(), r));
        // Edge (A, r) is NOT on an nr-path input -> output: r is relevant
        // and not the right endpoint.
        assert!(!ctx.edge_on_nr_path(a, r, s.input(), s.output()));
        // Edge (r, output) IS on an nr-path r -> output.
        assert!(ctx.edge_on_nr_path(r, s.output(), r, s.output()));
    }

    #[test]
    fn set_unions() {
        let (s, rel) = figure6();
        let ctx = NrContext::of_spec(&s, &rel);
        let m = |l: &str| s.module(l).unwrap();
        let set = vec![m("M1"), m("M4"), m("M5")];
        let rp = ctx.rpred_of_set(&set);
        assert_eq!(rp.iter().collect::<Vec<_>>(), vec![s.input().index()]);
        let rs = ctx.rsucc_of_set(&set);
        let mut expect: Vec<usize> = vec![m("M3").index(), m("M6").index(), s.output().index()];
        expect.sort();
        assert_eq!(rs.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn endpoint_pairs_cover_specials() {
        let (s, rel) = figure6();
        let ctx = NrContext::of_spec(&s, &rel);
        let pairs = ctx.endpoint_pairs();
        // (|R|+1)^2 pairs.
        assert_eq!(pairs.len(), 9);
        assert!(pairs.contains(&(s.input(), s.output())));
    }

    #[test]
    fn empty_relevant_set() {
        let (s, _) = figure6();
        let ctx = NrContext::of_spec(&s, &[]);
        // With R = ∅ every node has rpred = {input}, rsucc = {output}.
        for m in s.module_ids() {
            assert_eq!(ctx.rpred_nodes(m), vec![s.input()]);
            assert_eq!(ctx.rsucc_nodes(m), vec![s.output()]);
        }
    }
}
