//! Property-based tests of the model builders and derived structures,
//! using raw random inputs (not the workload generator, which lives
//! upstream of this crate): whatever the builders *accept* must satisfy
//! the structural invariants, and whatever violates them must be rejected.

use proptest::prelude::*;
use zoom_model::{
    induced_spec, CompositeModule, ModelError, RunBuilder, SpecBuilder, UserView, ViewRun,
    WorkflowSpec,
};

/// Random spec input: module count and raw edge commands.
#[derive(Debug, Clone)]
struct RawSpec {
    modules: usize,
    /// (from, to) indices into 0..modules+2 where 0=input, 1=output,
    /// 2..=modules+1 are modules M1..Mn.
    edges: Vec<(usize, usize)>,
}

fn arb_raw_spec() -> impl Strategy<Value = RawSpec> {
    (1usize..10).prop_flat_map(|modules| {
        let node = 0..modules + 2;
        proptest::collection::vec((node.clone(), node), 0..30)
            .prop_map(move |edges| RawSpec { modules, edges })
    })
}

fn build(raw: &RawSpec) -> Result<WorkflowSpec, ModelError> {
    let mut b = SpecBuilder::new("prop");
    let mut ids = vec![
        zoom_graph::NodeId::from_index(0),
        zoom_graph::NodeId::from_index(1),
    ];
    for i in 0..raw.modules {
        ids.push(b.analysis(format!("M{}", i + 1)));
    }
    for &(f, t) in &raw.edges {
        b.connect(ids[f], ids[t]);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: every spec the builder accepts passes the independent
    /// re-validator; every rejection is one of the documented error kinds.
    #[test]
    fn spec_builder_sound(raw in arb_raw_spec()) {
        match build(&raw) {
            Ok(spec) => {
                prop_assert!(spec.validate().is_ok());
                prop_assert_eq!(spec.module_count(), raw.modules);
            }
            Err(
                ModelError::BadEndpointEdge(_)
                | ModelError::NotOnInputOutputPath(_)
                | ModelError::EmptySpec,
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Completeness of rejection: a spec with an edge into `input` or out
    /// of `output` never builds.
    #[test]
    fn bad_endpoint_edges_always_rejected(raw in arb_raw_spec(), bad_into_input in any::<bool>()) {
        let mut raw = raw;
        if bad_into_input {
            raw.edges.push((2, 0));
        } else {
            raw.edges.push((1, 2));
        }
        prop_assert!(build(&raw).is_err());
    }

    /// UAdmin's induced specification is always isomorphic to the original
    /// (same module count, same deduplicated edge multiset by label).
    #[test]
    fn admin_induced_is_isomorphic(raw in arb_raw_spec()) {
        let Ok(spec) = build(&raw) else { return Ok(()); };
        let admin = UserView::admin(&spec);
        let ind = induced_spec(&spec, &admin);
        prop_assert_eq!(ind.spec.module_count(), spec.module_count());
        let edge_labels = |s: &WorkflowSpec| -> std::collections::BTreeSet<(String, String)> {
            s.graph()
                .edges()
                .map(|(_, a, b, _)| (s.label(a).to_string(), s.label(b).to_string()))
                .collect()
        };
        // Composite names equal module labels under UAdmin.
        prop_assert_eq!(edge_labels(&ind.spec), edge_labels(&spec));
    }

    /// Any two-block split of the modules is accepted as a partition, and
    /// the resulting composite-of map is total and consistent.
    #[test]
    fn arbitrary_bipartitions_are_views(raw in arb_raw_spec(), mask in any::<u32>()) {
        let Ok(spec) = build(&raw) else { return Ok(()); };
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, m) in spec.module_ids().enumerate() {
            if mask & (1 << (i % 32)) != 0 {
                left.push(m);
            } else {
                right.push(m);
            }
        }
        let mut parts = Vec::new();
        if !left.is_empty() {
            parts.push(CompositeModule::new("L", left.clone()));
        }
        if !right.is_empty() {
            parts.push(CompositeModule::new("R", right.clone()));
        }
        let view = UserView::new("bi", &spec, parts).expect("partition");
        for m in spec.module_ids() {
            let c = view.composite_of(m);
            prop_assert!(view.members(c).contains(&m));
        }
        prop_assert!(view.refines(&UserView::black_box(&spec)));
        prop_assert!(UserView::admin(&spec).refines(&view));
    }

    /// Run builder: a random linear run over a random spec path either
    /// builds and validates, or fails with a documented error.
    #[test]
    fn linear_runs_validate(raw in arb_raw_spec(), reps in 1usize..4) {
        let Ok(spec) = build(&raw) else { return Ok(()); };
        // Follow an actual path input -> ... -> output if one exists with
        // at least one module.
        let g = spec.graph();
        let paths = zoom_graph::algo::paths::simple_paths(g, spec.input(), spec.output(), 5);
        let Some(path) = paths.iter().find(|p| p.len() > 2) else { return Ok(()); };
        let modules = &path[1..path.len() - 1];

        let mut rb = RunBuilder::new(&spec);
        let mut d = 1u64;
        let mut steps = Vec::new();
        for _ in 0..reps {
            for &m in modules {
                steps.push(rb.step(m));
            }
        }
        // Wire them in sequence; repetitions of the path are legal only if
        // the spec lets the last module loop back to the first, so only
        // wire reps > 1 when that edge exists.
        let loops_back = g.has_edge(*modules.last().expect("nonempty"), modules[0]);
        let reps = if loops_back { reps } else { 1 };
        let used = &steps[..reps * modules.len()];
        rb.input_edge(used[0], [d]);
        for w in used.windows(2) {
            d += 1;
            rb.data_edge(w[0], w[1], [d]);
        }
        d += 1;
        rb.output_edge(*used.last().expect("nonempty"), [d]);
        // Steps beyond `used` are unwired; drop them from the run by
        // rebuilding when necessary.
        if used.len() != steps.len() {
            let mut rb2 = RunBuilder::new(&spec);
            let mut d = 1u64;
            let steps2: Vec<_> = (0..used.len())
                .map(|i| rb2.step(modules[i % modules.len()]))
                .collect();
            rb2.input_edge(steps2[0], [d]);
            for w in steps2.windows(2) {
                d += 1;
                rb2.data_edge(w[0], w[1], [d]);
            }
            d += 1;
            rb2.output_edge(*steps2.last().expect("nonempty"), [d]);
            let run = rb2.build().expect("linear run over a real path");
            prop_assert!(run.validate(&spec).is_ok());
            return Ok(());
        }
        let run = rb.build().expect("linear run over a real path");
        prop_assert!(run.validate(&spec).is_ok());
        prop_assert_eq!(run.step_count(), used.len());

        // Its UAdmin view-run mirrors it 1:1.
        let vr = ViewRun::new(&run, &UserView::admin(&spec));
        prop_assert_eq!(vr.execs().len(), run.step_count());
        prop_assert_eq!(vr.visible_data().len(), run.data_count());
    }
}
