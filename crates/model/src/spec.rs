//! Workflow specifications (Section II of the paper).
//!
//! A specification is a directed graph `G_w(N, E)` whose nodes are uniquely
//! labeled modules plus two special nodes, `input` and `output`; every node
//! must lie on some path from `input` to `output`. Edges represent precedence
//! and potential dataflow. The graph may contain cycles (loops are unrolled
//! at execution time).

use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use zoom_graph::algo::paths::all_nodes_on_paths;
use zoom_graph::{Digraph, NodeId};

/// Coarse classification of a module's role. The paper motivates user views
/// by the observation that scientific workflows are dominated by formatting
/// tasks that are "unimportant in terms of the scientific goal"; the
/// synthetic-workflow generator uses this tag to model the biologist's choice
/// of relevant modules (UBio views flag the analysis modules).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// A scientifically meaningful task (alignment, tree building, curation…).
    #[default]
    Analysis,
    /// A formatting / plumbing task.
    Formatting,
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleKind::Analysis => write!(f, "analysis"),
            ModuleKind::Formatting => write!(f, "formatting"),
        }
    }
}

/// A node of the specification graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecNode {
    /// The distinguished source node `I`.
    Input,
    /// The distinguished sink node `O`.
    Output,
    /// A workflow module with a unique label.
    Module {
        /// Unique label, e.g. `"M3"` or `"Run alignment"`.
        label: String,
        /// Analysis vs. formatting classification.
        kind: ModuleKind,
    },
}

impl fmt::Display for SpecNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecNode::Input => write!(f, "input"),
            SpecNode::Output => write!(f, "output"),
            SpecNode::Module { label, .. } => write!(f, "{label}"),
        }
    }
}

/// A validated workflow specification.
///
/// Node ids are dense and stable: `input` is always node 0 and `output` node
/// 1, followed by the modules in insertion order. Modules are addressed by
/// [`NodeId`] in the rest of the workspace; labels are for humans.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowSpec {
    name: String,
    graph: Digraph<SpecNode, ()>,
    by_label: HashMap<String, NodeId>,
}

impl WorkflowSpec {
    /// The specification's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph (nodes: input, output, modules).
    pub fn graph(&self) -> &Digraph<SpecNode, ()> {
        &self.graph
    }

    /// The distinguished `input` node (always node 0).
    pub fn input(&self) -> NodeId {
        NodeId::from_index(0)
    }

    /// The distinguished `output` node (always node 1).
    pub fn output(&self) -> NodeId {
        NodeId::from_index(1)
    }

    /// Returns `true` if `n` is a module (not `input`/`output`).
    pub fn is_module(&self, n: NodeId) -> bool {
        matches!(self.graph.node(n), SpecNode::Module { .. })
    }

    /// Iterates over the module nodes in insertion order.
    pub fn module_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.node_ids().filter(move |&n| self.is_module(n))
    }

    /// Number of modules (excluding input/output).
    pub fn module_count(&self) -> usize {
        self.graph.node_count() - 2
    }

    /// The label of a node (`"input"` / `"output"` for the special nodes).
    pub fn label(&self, n: NodeId) -> &str {
        match self.graph.node(n) {
            SpecNode::Input => "input",
            SpecNode::Output => "output",
            SpecNode::Module { label, .. } => label,
        }
    }

    /// The kind of a module node.
    ///
    /// # Panics
    /// Panics if `n` is the input or output node.
    pub fn kind(&self, n: NodeId) -> ModuleKind {
        match self.graph.node(n) {
            SpecNode::Module { kind, .. } => *kind,
            other => panic!("kind() called on special node {other}"),
        }
    }

    /// Looks a module (or `"input"`/`"output"`) up by label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        match label {
            "input" => Some(self.input()),
            "output" => Some(self.output()),
            _ => self.by_label.get(label).copied(),
        }
    }

    /// Looks a module up by label, erroring if absent.
    pub fn module(&self, label: &str) -> Result<NodeId> {
        self.by_label
            .get(label)
            .copied()
            .ok_or_else(|| ModelError::UnknownModule(label.to_string()))
    }

    /// Re-validates the structural invariants — used when a specification
    /// arrives from untrusted bytes (snapshot/journal deserialization)
    /// rather than through [`SpecBuilder`].
    pub fn validate(&self) -> Result<()> {
        if self.graph.node_count() < 2
            || !matches!(self.graph.node(NodeId::from_index(0)), SpecNode::Input)
            || !matches!(self.graph.node(NodeId::from_index(1)), SpecNode::Output)
        {
            return Err(ModelError::BadEndpointEdge(
                "missing input/output nodes".to_string(),
            ));
        }
        if self.module_count() == 0 {
            return Err(ModelError::EmptySpec);
        }
        // Labels: unique, consistent with the index, no extra specials.
        let mut seen = std::collections::HashSet::new();
        for n in self.graph.node_ids().skip(2) {
            let SpecNode::Module { label, .. } = self.graph.node(n) else {
                return Err(ModelError::BadEndpointEdge(format!(
                    "extra special node at {n:?}"
                )));
            };
            if label == "input" || label == "output" || !seen.insert(label.clone()) {
                return Err(ModelError::DuplicateModule(label.clone()));
            }
            if self.by_label.get(label) != Some(&n) {
                return Err(ModelError::UnknownModule(format!(
                    "label index out of sync for `{label}`"
                )));
            }
        }
        if self.by_label.len() != self.module_count() {
            return Err(ModelError::NotAPartition(
                "label index size mismatch".to_string(),
            ));
        }
        for (_, s, t, _) in self.graph.edges() {
            if t == self.input() || s == self.output() {
                return Err(ModelError::BadEndpointEdge(format!(
                    "edge {} -> {}",
                    self.label(s),
                    self.label(t)
                )));
            }
        }
        if !all_nodes_on_paths(&self.graph, self.input(), self.output()) {
            return Err(ModelError::NotOnInputOutputPath(
                "some node is off the input-output paths".to_string(),
            ));
        }
        Ok(())
    }

    /// Renders the specification as GraphViz DOT, shading the given set of
    /// relevant modules (as in the paper's Figure 1).
    pub fn to_dot(&self, relevant: &[NodeId]) -> String {
        use zoom_graph::dot::{to_dot, DotStyle};
        let style = DotStyle {
            node_label: Box::new(|_, n: &SpecNode| n.to_string()),
            node_attrs: Box::new(move |id, n: &SpecNode| match n {
                SpecNode::Input | SpecNode::Output => "shape=circle".to_string(),
                SpecNode::Module { .. } if relevant.contains(&id) => {
                    "shape=box,style=filled,fillcolor=gray".to_string()
                }
                SpecNode::Module { .. } => "shape=box".to_string(),
            }),
            edge_label: Box::new(|_, _| String::new()),
            graph_attrs: vec!["rankdir=LR".to_string()],
        };
        to_dot(&self.graph, &self.name, &style)
    }
}

/// Incremental builder for [`WorkflowSpec`].
///
/// Errors (duplicate labels, unknown endpoints) are deferred to
/// [`SpecBuilder::build`] so that construction code can chain calls freely.
///
/// ```
/// use zoom_model::SpecBuilder;
/// let mut b = SpecBuilder::new("align-and-report");
/// b.formatting("Format");
/// b.analysis("Align");
/// b.from_input("Format")
///     .edge("Format", "Align")
///     .edge("Align", "Align") // a reflexive refinement loop
///     .to_output("Align");
/// let spec = b.build().unwrap();
/// assert_eq!(spec.module_count(), 2);
/// ```
#[derive(Debug)]
pub struct SpecBuilder {
    name: String,
    graph: Digraph<SpecNode, ()>,
    by_label: HashMap<String, NodeId>,
    deferred: Vec<ModelError>,
}

impl SpecBuilder {
    /// Starts a new specification named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        let mut graph = Digraph::new();
        graph.add_node(SpecNode::Input);
        graph.add_node(SpecNode::Output);
        SpecBuilder {
            name: name.into(),
            graph,
            by_label: HashMap::new(),
            deferred: Vec::new(),
        }
    }

    /// Adds a module with the given label and kind; returns its node id.
    pub fn module(&mut self, label: impl Into<String>, kind: ModuleKind) -> NodeId {
        let label = label.into();
        if self.by_label.contains_key(&label) || label == "input" || label == "output" {
            self.deferred
                .push(ModelError::DuplicateModule(label.clone()));
        }
        let id = self.graph.add_node(SpecNode::Module {
            label: label.clone(),
            kind,
        });
        self.by_label.insert(label, id);
        id
    }

    /// Adds an analysis module (shorthand).
    pub fn analysis(&mut self, label: impl Into<String>) -> NodeId {
        self.module(label, ModuleKind::Analysis)
    }

    /// Adds a formatting module (shorthand).
    pub fn formatting(&mut self, label: impl Into<String>) -> NodeId {
        self.module(label, ModuleKind::Formatting)
    }

    fn resolve(&mut self, label: &str) -> Option<NodeId> {
        let id = match label {
            "input" => Some(NodeId::from_index(0)),
            "output" => Some(NodeId::from_index(1)),
            _ => self.by_label.get(label).copied(),
        };
        if id.is_none() {
            self.deferred
                .push(ModelError::UnknownModule(label.to_string()));
        }
        id
    }

    /// Adds an edge between two labeled nodes (labels `"input"`/`"output"`
    /// denote the special nodes). Duplicate edges are ignored.
    pub fn edge(&mut self, from: &str, to: &str) -> &mut Self {
        let (Some(a), Some(b)) = (self.resolve(from), self.resolve(to)) else {
            return self;
        };
        self.connect(a, b)
    }

    /// Adds an edge between two node ids. Duplicate edges are ignored.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        if to == NodeId::from_index(0) {
            self.deferred.push(ModelError::BadEndpointEdge(format!(
                "edge into input from {}",
                self.graph.node(from)
            )));
            return self;
        }
        if from == NodeId::from_index(1) {
            self.deferred.push(ModelError::BadEndpointEdge(format!(
                "edge out of output to {}",
                self.graph.node(to)
            )));
            return self;
        }
        if !self.graph.has_edge(from, to) {
            self.graph.add_edge(from, to, ());
        }
        self
    }

    /// Shorthand for `edge("input", m)`.
    pub fn from_input(&mut self, m: &str) -> &mut Self {
        self.edge("input", m)
    }

    /// Shorthand for `edge(m, "output")`.
    pub fn to_output(&mut self, m: &str) -> &mut Self {
        self.edge(m, "output")
    }

    /// Validates and finalizes the specification.
    pub fn build(self) -> Result<WorkflowSpec> {
        if let Some(e) = self.deferred.into_iter().next() {
            return Err(e);
        }
        if self.graph.node_count() <= 2 {
            return Err(ModelError::EmptySpec);
        }
        let input = NodeId::from_index(0);
        let output = NodeId::from_index(1);
        if !all_nodes_on_paths(&self.graph, input, output) {
            // Identify one offending node for the error message.
            let on = zoom_graph::algo::paths::nodes_on_paths(&self.graph, input, output);
            let bad = self
                .graph
                .node_ids()
                .find(|n| !on.contains(n.index()))
                .expect("some node is off the input-output paths");
            return Err(ModelError::NotOnInputOutputPath(
                self.graph.node(bad).to_string(),
            ));
        }
        Ok(WorkflowSpec {
            name: self.name,
            graph: self.graph,
            by_label: self.by_label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear3() -> WorkflowSpec {
        let mut b = SpecBuilder::new("linear");
        b.analysis("A");
        b.formatting("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .to_output("C");
        b.build().unwrap()
    }

    #[test]
    fn build_linear_spec() {
        let s = linear3();
        assert_eq!(s.name(), "linear");
        assert_eq!(s.module_count(), 3);
        let a = s.module("A").unwrap();
        assert_eq!(s.label(a), "A");
        assert_eq!(s.kind(a), ModuleKind::Analysis);
        let b = s.module("B").unwrap();
        assert_eq!(s.kind(b), ModuleKind::Formatting);
        assert!(s.graph().has_edge(s.input(), a));
        assert!(s.is_module(a));
        assert!(!s.is_module(s.input()));
        assert_eq!(s.node_by_label("input"), Some(s.input()));
        assert_eq!(s.node_by_label("nope"), None);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = SpecBuilder::new("dup");
        b.analysis("A");
        b.analysis("A");
        b.from_input("A").to_output("A");
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::DuplicateModule("A".into())
        );
    }

    #[test]
    fn reserved_labels_rejected() {
        let mut b = SpecBuilder::new("bad");
        b.analysis("input");
        assert!(matches!(b.build(), Err(ModelError::DuplicateModule(_))));
    }

    #[test]
    fn unknown_module_in_edge() {
        let mut b = SpecBuilder::new("bad");
        b.analysis("A");
        b.from_input("A").edge("A", "Z").to_output("A");
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownModule("Z".into())
        );
    }

    #[test]
    fn dangling_module_rejected() {
        let mut b = SpecBuilder::new("dangling");
        b.analysis("A");
        b.analysis("Z");
        b.from_input("A").to_output("A").edge("A", "Z");
        // Z has no path to output.
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::NotOnInputOutputPath("Z".into())
        );
    }

    #[test]
    fn empty_spec_rejected() {
        assert_eq!(
            SpecBuilder::new("empty").build().unwrap_err(),
            ModelError::EmptySpec
        );
    }

    #[test]
    fn edges_into_input_or_out_of_output_rejected() {
        let mut b = SpecBuilder::new("bad");
        b.analysis("A");
        b.from_input("A").to_output("A").edge("A", "input");
        assert!(matches!(b.build(), Err(ModelError::BadEndpointEdge(_))));

        let mut b = SpecBuilder::new("bad2");
        b.analysis("A");
        b.from_input("A").to_output("A").edge("output", "A");
        assert!(matches!(b.build(), Err(ModelError::BadEndpointEdge(_))));
    }

    #[test]
    fn loops_are_allowed() {
        // A <-> B loop, as in the paper's M3-M5 alignment loop.
        let mut b = SpecBuilder::new("loopy");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "A")
            .to_output("A");
        let s = b.build().unwrap();
        assert_eq!(s.module_count(), 2);
    }

    #[test]
    fn self_loop_allowed() {
        let mut b = SpecBuilder::new("reflexive");
        b.analysis("A");
        b.from_input("A").edge("A", "A").to_output("A");
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_edges_deduped() {
        let mut b = SpecBuilder::new("dedup");
        b.analysis("A");
        b.from_input("A").from_input("A").to_output("A");
        let s = b.build().unwrap();
        assert_eq!(s.graph().edge_count(), 2);
    }

    #[test]
    fn dot_renders_relevant_shading() {
        let s = linear3();
        let a = s.module("A").unwrap();
        let dot = s.to_dot(&[a]);
        assert!(dot.contains("fillcolor=gray"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"input\""));
    }
}
