//! Error types for workflow-model validation.

use std::fmt;

/// Errors raised while constructing or validating workflow specifications,
/// runs, logs, and user views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A module label was used twice in one specification.
    DuplicateModule(String),
    /// A referenced module label does not exist in the specification.
    UnknownModule(String),
    /// A specification or run node is not on any path from input to output
    /// (violates the paper's well-formedness condition, Section II).
    NotOnInputOutputPath(String),
    /// The specification has no modules.
    EmptySpec,
    /// An edge was drawn into the input node or out of the output node.
    BadEndpointEdge(String),
    /// A run graph contains a directed cycle (runs must be DAGs; loops in the
    /// specification are unrolled into distinct steps).
    RunHasCycle,
    /// A step id was used twice in one run.
    DuplicateStep(u32),
    /// A referenced step id does not exist in the run.
    UnknownStep(u32),
    /// A data object appears as the output of two different steps. The paper
    /// assumes data is never overwritten: each object is produced by at most
    /// one step.
    DataProducedTwice {
        /// The doubly-produced data id.
        data: u64,
        /// The first producing step.
        first: u32,
        /// The second producing step.
        second: u32,
    },
    /// An edge in a run carries no data ids.
    EmptyDataEdge {
        /// Source node description.
        from: String,
        /// Target node description.
        to: String,
    },
    /// The user view is not a partition of the specification's modules.
    NotAPartition(String),
    /// A user view composite is empty.
    EmptyComposite(String),
    /// A composite module name was used twice in one view.
    DuplicateComposite(String),
    /// A log could not be reconstructed into a run.
    BadLog(String),
    /// A run refers to a specification it does not match.
    SpecMismatch(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateModule(m) => write!(f, "duplicate module label `{m}`"),
            ModelError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            ModelError::NotOnInputOutputPath(m) => {
                write!(f, "node `{m}` is not on any path from input to output")
            }
            ModelError::EmptySpec => write!(f, "workflow specification has no modules"),
            ModelError::BadEndpointEdge(d) => {
                write!(f, "edge violates input/output node constraints: {d}")
            }
            ModelError::RunHasCycle => write!(f, "workflow run graph contains a cycle"),
            ModelError::DuplicateStep(s) => write!(f, "duplicate step id S{s}"),
            ModelError::UnknownStep(s) => write!(f, "unknown step id S{s}"),
            ModelError::DataProducedTwice {
                data,
                first,
                second,
            } => write!(
                f,
                "data object d{data} produced by two steps: S{first} and S{second}"
            ),
            ModelError::EmptyDataEdge { from, to } => {
                write!(f, "edge {from} -> {to} carries no data")
            }
            ModelError::NotAPartition(d) => write!(f, "user view is not a partition: {d}"),
            ModelError::EmptyComposite(c) => write!(f, "composite module `{c}` is empty"),
            ModelError::DuplicateComposite(c) => {
                write!(f, "duplicate composite module name `{c}`")
            }
            ModelError::BadLog(d) => write!(f, "cannot reconstruct run from log: {d}"),
            ModelError::SpecMismatch(d) => write!(f, "run does not match specification: {d}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
