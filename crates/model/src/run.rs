//! Workflow runs (Section II): executions of a specification.
//!
//! A run is a DAG whose nodes are *steps* labeled with unique step ids and
//! the modules they execute (module labels repeat when loops are unrolled),
//! plus distinguished input/output nodes. Edges carry the ids of the data
//! objects output by the source step and input to the target step. Every
//! node lies on some path from input to output, and — because data is never
//! overwritten — every data object is produced by at most one node.

use crate::error::{ModelError, Result};
use crate::ids::{DataId, StepId, Timestamp};
use crate::spec::WorkflowSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use zoom_graph::algo::paths::all_nodes_on_paths;
use zoom_graph::algo::topo::is_acyclic;
use zoom_graph::{Digraph, NodeId};

/// Metadata recorded when a data object is input by the user rather than
/// produced by a step: "who input the data and the time at which the input
/// occurred" (Section II).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserInputMeta {
    /// Who provided the data.
    pub user: String,
    /// When it was provided.
    pub time: Timestamp,
}

/// A node of a run graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunNode {
    /// Beginning of the execution.
    Input,
    /// End of the execution.
    Output,
    /// One execution of a module.
    Step {
        /// Unique step id (`S1`, `S2`, …).
        id: StepId,
        /// The module (a node of the specification) this step executes.
        module: NodeId,
    },
}

/// Who produced a data object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Producer {
    /// Produced by a step of the run.
    Step(StepId),
    /// Input by the user (provenance is the recorded metadata).
    UserInput,
}

/// One committed step of a streaming ingestion, ready to be appended to a
/// prefix run: the step's identity plus its inputs grouped by producer
/// (`None` = user input) — exactly the grouping [`crate::EventLog::to_run`]
/// derives for batch logs, so a streamed prefix and a batch-loaded prefix
/// are structurally identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepAppend {
    /// The step id.
    pub id: StepId,
    /// The module (a specification node) the step executes.
    pub module: NodeId,
    /// Inputs grouped by producing step (`None` = user input).
    pub inputs: Vec<(Option<StepId>, Vec<DataId>)>,
    /// Parameters recorded for the step.
    pub params: BTreeMap<String, String>,
    /// Metadata for user-input data first read by this step.
    pub user_meta: Vec<(DataId, UserInputMeta)>,
}

/// A validated workflow run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowRun {
    spec_name: String,
    graph: Digraph<RunNode, Vec<DataId>>,
    node_of_step: HashMap<StepId, NodeId>,
    /// For every data object: the run-graph node that produced it (the input
    /// node for user-provided data).
    producer: HashMap<DataId, NodeId>,
    user_input_meta: HashMap<DataId, UserInputMeta>,
    /// Parameters passed to each step ("what data objects and parameters
    /// were input to that step", Section II). Sparse: steps without
    /// parameters have no entry.
    params: HashMap<StepId, BTreeMap<String, String>>,
}

impl WorkflowRun {
    /// The name of the specification this run executes.
    pub fn spec_name(&self) -> &str {
        &self.spec_name
    }

    /// The underlying run graph. Edge weights are the (sorted) data ids
    /// passed along the edge.
    pub fn graph(&self) -> &Digraph<RunNode, Vec<DataId>> {
        &self.graph
    }

    /// The run's input node (always node 0).
    pub fn input(&self) -> NodeId {
        NodeId::from_index(0)
    }

    /// The run's output node (always node 1).
    pub fn output(&self) -> NodeId {
        NodeId::from_index(1)
    }

    /// Number of steps (excluding input/output).
    pub fn step_count(&self) -> usize {
        self.graph.node_count() - 2
    }

    /// Iterates over `(step id, module)` in node order.
    pub fn steps(&self) -> impl Iterator<Item = (StepId, NodeId)> + '_ {
        self.graph.nodes().filter_map(|(_, n)| match n {
            RunNode::Step { id, module } => Some((*id, *module)),
            _ => None,
        })
    }

    /// The run-graph node of a step.
    pub fn node_of_step(&self, s: StepId) -> Result<NodeId> {
        self.node_of_step
            .get(&s)
            .copied()
            .ok_or(ModelError::UnknownStep(s.0))
    }

    /// The step at a run-graph node, if it is one.
    pub fn step_at(&self, n: NodeId) -> Option<(StepId, NodeId)> {
        match self.graph.node(n) {
            RunNode::Step { id, module } => Some((*id, *module)),
            _ => None,
        }
    }

    /// The module a step executes.
    pub fn module_of(&self, s: StepId) -> Result<NodeId> {
        let n = self.node_of_step(s)?;
        match self.graph.node(n) {
            RunNode::Step { module, .. } => Ok(*module),
            _ => unreachable!("node_of_step always returns a step node"),
        }
    }

    /// Who produced `d`, or `None` if `d` does not occur in this run.
    pub fn producer_of(&self, d: DataId) -> Option<Producer> {
        let &n = self.producer.get(&d)?;
        Some(match self.graph.node(n) {
            RunNode::Input => Producer::UserInput,
            RunNode::Step { id, .. } => Producer::Step(*id),
            RunNode::Output => unreachable!("output node never produces data"),
        })
    }

    /// The run-graph node that produced `d`.
    pub fn producer_node(&self, d: DataId) -> Option<NodeId> {
        self.producer.get(&d).copied()
    }

    /// User-input metadata for `d`, if `d` was input by the user.
    pub fn user_input_meta(&self, d: DataId) -> Option<&UserInputMeta> {
        self.user_input_meta.get(&d)
    }

    /// All data ids occurring in the run, sorted.
    pub fn all_data(&self) -> Vec<DataId> {
        let mut v: Vec<DataId> = self.producer.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of distinct data objects in the run.
    pub fn data_count(&self) -> usize {
        self.producer.len()
    }

    /// The set of data input by the user, sorted.
    pub fn user_inputs(&self) -> Vec<DataId> {
        let mut v: Vec<DataId> = self
            .graph
            .out_edges(self.input())
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The final outputs of the run (data on edges into the output node),
    /// sorted.
    pub fn final_outputs(&self) -> Vec<DataId> {
        let mut v: Vec<DataId> = self
            .graph
            .in_edges(self.output())
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The data objects input to a step: the union of the data on its
    /// incoming edges, sorted.
    pub fn inputs_of(&self, s: StepId) -> Result<Vec<DataId>> {
        let n = self.node_of_step(s)?;
        let mut v: Vec<DataId> = self
            .graph
            .in_edges(n)
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        Ok(v)
    }

    /// The data objects output by a step: the union of the data on its
    /// outgoing edges, sorted.
    pub fn outputs_of(&self, s: StepId) -> Result<Vec<DataId>> {
        let n = self.node_of_step(s)?;
        let mut v: Vec<DataId> = self
            .graph
            .out_edges(n)
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        Ok(v)
    }

    /// Whether this run is a streaming *prefix*: no data has reached the
    /// output node yet. Complete runs always have final outputs, so an
    /// untouched output node is the structural signature of a run still
    /// being ingested (see [`WorkflowRun::empty_prefix`]).
    pub fn is_prefix(&self) -> bool {
        self.graph.in_edges(self.output()).next().is_none()
    }

    /// An empty streaming prefix of `spec`: input and output nodes only.
    /// Steps arrive through [`WorkflowRun::append_step`] and the run is
    /// completed by [`WorkflowRun::add_final_outputs`].
    pub fn empty_prefix(spec: &WorkflowSpec) -> Self {
        let mut graph = Digraph::new();
        graph.add_node(RunNode::Input);
        graph.add_node(RunNode::Output);
        WorkflowRun {
            spec_name: spec.name().to_string(),
            graph,
            node_of_step: HashMap::new(),
            producer: HashMap::new(),
            user_input_meta: HashMap::new(),
            params: HashMap::new(),
        }
    }

    /// Appends one committed step to a prefix run, in place.
    ///
    /// The step's node is added *after* every existing node and only edges
    /// *into* it are created, so incremental reachability indexes can
    /// extend rather than rebuild ([`append_node`]'s pure-extension
    /// contract: every endpoint of a new edge precedes the new node).
    /// Every referenced producer must already be present — streaming
    /// ingestion guarantees this by committing a step only after all of
    /// its producers.
    ///
    /// [`append_node`]: https://en.wikipedia.org/wiki/Reachability
    pub fn append_step(&mut self, spec: &WorkflowSpec, step: &StepAppend) -> Result<()> {
        if self.node_of_step.contains_key(&step.id) {
            return Err(ModelError::DuplicateStep(step.id.0));
        }
        if !spec.is_module(step.module) {
            return Err(ModelError::SpecMismatch(format!(
                "step {} executes a non-module node",
                step.id
            )));
        }
        // Validate every group before mutating anything, so a rejected
        // append leaves the prefix untouched.
        for (producer, data) in &step.inputs {
            if data.is_empty() {
                return Err(ModelError::EmptyDataEdge {
                    from: format!("{producer:?}"),
                    to: format!("{}", step.id),
                });
            }
            let (src, spec_src) = match producer {
                None => (self.input(), spec.input()),
                Some(p) => {
                    let n = self.node_of_step(*p)?;
                    match self.graph.node(n) {
                        RunNode::Step { module, .. } => (n, *module),
                        _ => unreachable!("node_of_step always returns a step node"),
                    }
                }
            };
            if !spec.graph().has_edge(spec_src, step.module) {
                return Err(ModelError::SpecMismatch(format!(
                    "run edge {} -> {} has no specification edge",
                    self.graph.node(src),
                    step.id
                )));
            }
            for &d in data {
                if let Some(&prev) = self.producer.get(&d) {
                    if prev != src {
                        let step_of = |n: NodeId| match self.graph.node(n) {
                            RunNode::Step { id, .. } => id.0,
                            _ => 0,
                        };
                        return Err(ModelError::DataProducedTwice {
                            data: d.0,
                            first: step_of(prev),
                            second: step_of(src),
                        });
                    }
                }
            }
        }
        let node = self.graph.add_node(RunNode::Step {
            id: step.id,
            module: step.module,
        });
        self.node_of_step.insert(step.id, node);
        for (producer, data) in &step.inputs {
            let src = match producer {
                None => self.input(),
                Some(p) => self.node_of_step[p],
            };
            let mut ds = data.clone();
            ds.sort();
            ds.dedup();
            for &d in &ds {
                self.producer.entry(d).or_insert(src);
            }
            self.graph.add_edge(src, node, ds);
        }
        for (d, meta) in &step.user_meta {
            self.user_input_meta
                .entry(*d)
                .or_insert_with(|| meta.clone());
        }
        if !step.params.is_empty() {
            self.params
                .entry(step.id)
                .or_default()
                .extend(step.params.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        Ok(())
    }

    /// Completes a prefix run: adds the final-output edges (grouped by
    /// producing step) into the output node. After this the run is a
    /// complete run and [`WorkflowRun::validate`] applies the full
    /// every-node-on-an-input-output-path invariant again.
    pub fn add_final_outputs(
        &mut self,
        spec: &WorkflowSpec,
        finals: &[(StepId, Vec<DataId>)],
    ) -> Result<()> {
        for (p, data) in finals {
            if data.is_empty() {
                return Err(ModelError::EmptyDataEdge {
                    from: format!("{p}"),
                    to: "output".to_string(),
                });
            }
            let n = self.node_of_step(*p)?;
            let module = match self.graph.node(n) {
                RunNode::Step { module, .. } => *module,
                _ => unreachable!("node_of_step always returns a step node"),
            };
            if !spec.graph().has_edge(module, spec.output()) {
                return Err(ModelError::SpecMismatch(format!(
                    "final outputs of {p} have no specification edge to output"
                )));
            }
            for &d in data {
                if let Some(&src) = self.producer.get(&d) {
                    if src != n {
                        let step_of = |m: NodeId| match self.graph.node(m) {
                            RunNode::Step { id, .. } => id.0,
                            _ => 0,
                        };
                        return Err(ModelError::DataProducedTwice {
                            data: d.0,
                            first: step_of(src),
                            second: p.0,
                        });
                    }
                }
            }
        }
        let output = self.output();
        for (p, data) in finals {
            let n = self.node_of_step[p];
            let mut ds = data.clone();
            ds.sort();
            ds.dedup();
            for &d in &ds {
                self.producer.entry(d).or_insert(n);
            }
            self.graph.add_edge(n, output, ds);
        }
        Ok(())
    }

    /// Re-validates the structural invariants against `spec` — used when a
    /// run arrives from untrusted bytes (snapshot/journal deserialization)
    /// rather than through [`RunBuilder`]. Streaming prefixes (runs whose
    /// output node is still untouched) relax the path invariant to
    /// reachable-from-input; everything else is checked identically.
    pub fn validate(&self, spec: &WorkflowSpec) -> Result<()> {
        if spec.name() != self.spec_name {
            return Err(ModelError::SpecMismatch(format!(
                "run is of `{}`, spec is `{}`",
                self.spec_name,
                spec.name()
            )));
        }
        if !is_acyclic(&self.graph) {
            return Err(ModelError::RunHasCycle);
        }
        if self.is_prefix() {
            // Committed streaming steps always hang off the input node
            // through their (already committed) producers; the output node
            // is legitimately unreachable until the stream seals.
            let reach = zoom_graph::reachable_set(
                &self.graph,
                self.input(),
                zoom_graph::Direction::Forward,
            );
            let output = self.output();
            if self
                .graph
                .node_ids()
                .any(|n| n != output && !reach.contains(n.index()))
            {
                return Err(ModelError::NotOnInputOutputPath(
                    "prefix run node".to_string(),
                ));
            }
        } else if !all_nodes_on_paths(&self.graph, self.input(), self.output()) {
            return Err(ModelError::NotOnInputOutputPath("run node".to_string()));
        }
        // Step index consistency and module existence.
        for (&sid, &node) in &self.node_of_step {
            match self.graph.node(node) {
                RunNode::Step { id, module } if *id == sid => {
                    if !spec.is_module(*module) {
                        return Err(ModelError::SpecMismatch(format!(
                            "step {sid} executes a non-module node"
                        )));
                    }
                }
                _ => return Err(ModelError::UnknownStep(sid.0)),
            }
        }
        // Producers: unique and consistent with edge labels.
        let mut producer_check: HashMap<DataId, NodeId> = HashMap::new();
        for (e, src, _, _) in self.graph.edges() {
            for &d in self.graph.edge(e) {
                if let Some(&prev) = producer_check.get(&d) {
                    if prev != src {
                        return Err(ModelError::DataProducedTwice {
                            data: d.0,
                            first: 0,
                            second: 0,
                        });
                    }
                } else {
                    producer_check.insert(d, src);
                }
            }
        }
        if producer_check != self.producer {
            return Err(ModelError::SpecMismatch(
                "producer index out of sync with edges".to_string(),
            ));
        }
        // Spec conformance of every edge.
        for (_, src, tgt, _) in self.graph.edges() {
            let map = |n: NodeId| match self.graph.node(n) {
                RunNode::Input => spec.input(),
                RunNode::Output => spec.output(),
                RunNode::Step { module, .. } => *module,
            };
            if !spec.graph().has_edge(map(src), map(tgt)) {
                return Err(ModelError::SpecMismatch(format!(
                    "run edge {} -> {} has no specification edge",
                    self.graph.node(src),
                    self.graph.node(tgt)
                )));
            }
        }
        // Params refer to existing steps.
        for sid in self.params.keys() {
            if !self.node_of_step.contains_key(sid) {
                return Err(ModelError::UnknownStep(sid.0));
            }
        }
        Ok(())
    }

    /// The parameters recorded for a step (empty map if none).
    pub fn params_of(&self, s: StepId) -> &BTreeMap<String, String> {
        static EMPTY: std::sync::OnceLock<BTreeMap<String, String>> = std::sync::OnceLock::new();
        self.params
            .get(&s)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeMap::new))
    }

    /// The largest step id in the run (0 if there are none). Virtual
    /// composite executions are numbered after this.
    pub fn max_step_id(&self) -> u32 {
        self.node_of_step.keys().map(|s| s.0).max().unwrap_or(0)
    }

    /// Renders the run as GraphViz DOT (steps labeled `S1:M3`, edges labeled
    /// with compact data ranges), as in the paper's Figure 2.
    pub fn to_dot(&self, spec: &WorkflowSpec) -> String {
        use zoom_graph::dot::{to_dot, DotStyle};
        let style = DotStyle {
            node_label: Box::new(move |_, n: &RunNode| match n {
                RunNode::Input => "input".to_string(),
                RunNode::Output => "output".to_string(),
                RunNode::Step { id, module } => format!("{id}:{}", spec.label(*module)),
            }),
            node_attrs: Box::new(|_, n: &RunNode| match n {
                RunNode::Input | RunNode::Output => "shape=circle".to_string(),
                RunNode::Step { .. } => "shape=box".to_string(),
            }),
            edge_label: Box::new(|_, data: &Vec<DataId>| format_data_range(data)),
            graph_attrs: vec!["rankdir=LR".to_string()],
        };
        to_dot(&self.graph, &format!("run of {}", self.spec_name), &style)
    }
}

/// Formats a sorted data-id list compactly, e.g. `d1..d100` or `d410`.
pub fn format_data_range(data: &[DataId]) -> String {
    if data.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::new();
    let mut start = data[0].0;
    let mut prev = start;
    for &DataId(d) in &data[1..] {
        if d == prev + 1 {
            prev = d;
            continue;
        }
        parts.push(if start == prev {
            format!("d{start}")
        } else {
            format!("d{start}..d{prev}")
        });
        start = d;
        prev = d;
    }
    parts.push(if start == prev {
        format!("d{start}")
    } else {
        format!("d{start}..d{prev}")
    });
    parts.join(",")
}

/// Incremental builder for [`WorkflowRun`]. Validates the run against its
/// specification at [`RunBuilder::build`].
#[derive(Debug)]
pub struct RunBuilder<'a> {
    spec: &'a WorkflowSpec,
    graph: Digraph<RunNode, Vec<DataId>>,
    node_of_step: HashMap<StepId, NodeId>,
    next_step: u32,
    default_user: String,
    clock: Timestamp,
    user_input_meta: HashMap<DataId, UserInputMeta>,
    params: HashMap<StepId, BTreeMap<String, String>>,
    deferred: Vec<ModelError>,
}

impl<'a> RunBuilder<'a> {
    /// Starts building a run of `spec`.
    pub fn new(spec: &'a WorkflowSpec) -> Self {
        let mut graph = Digraph::new();
        graph.add_node(RunNode::Input);
        graph.add_node(RunNode::Output);
        RunBuilder {
            spec,
            graph,
            node_of_step: HashMap::new(),
            next_step: 1,
            default_user: "user".to_string(),
            clock: Timestamp(0),
            user_input_meta: HashMap::new(),
            params: HashMap::new(),
            deferred: Vec::new(),
        }
    }

    /// Sets the user name recorded for subsequent user inputs.
    pub fn user(&mut self, name: impl Into<String>) -> &mut Self {
        self.default_user = name.into();
        self
    }

    /// Adds a step executing `module` with an auto-assigned id.
    pub fn step(&mut self, module: NodeId) -> StepId {
        while self.node_of_step.contains_key(&StepId(self.next_step)) {
            self.next_step += 1;
        }
        let id = StepId(self.next_step);
        self.next_step += 1;
        self.step_with_id(id, module);
        id
    }

    /// Adds a step with an explicit id (to mirror the paper's `S1..S10`).
    pub fn step_with_id(&mut self, id: StepId, module: NodeId) -> StepId {
        if !self.spec.is_module(module) {
            self.deferred.push(ModelError::SpecMismatch(format!(
                "step {id} executes non-module node `{}`",
                self.spec.label(module)
            )));
        }
        if self.node_of_step.contains_key(&id) {
            self.deferred.push(ModelError::DuplicateStep(id.0));
            return id;
        }
        let n = self.graph.add_node(RunNode::Step { id, module });
        self.node_of_step.insert(id, n);
        id
    }

    fn step_node(&mut self, s: StepId) -> Option<NodeId> {
        let n = self.node_of_step.get(&s).copied();
        if n.is_none() {
            self.deferred.push(ModelError::UnknownStep(s.0));
        }
        n
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, data: Vec<DataId>) {
        if data.is_empty() {
            self.deferred.push(ModelError::EmptyDataEdge {
                from: format!("{:?}", self.graph.node(from)),
                to: format!("{:?}", self.graph.node(to)),
            });
            return;
        }
        let mut data = data;
        data.sort();
        data.dedup();
        self.graph.add_edge(from, to, data);
    }

    /// Records that `from` passed the given data objects to `to`.
    pub fn data_edge(
        &mut self,
        from: StepId,
        to: StepId,
        data: impl IntoIterator<Item = u64>,
    ) -> &mut Self {
        let (Some(a), Some(b)) = (self.step_node(from), self.step_node(to)) else {
            return self;
        };
        let data: Vec<DataId> = data.into_iter().map(DataId).collect();
        self.push_edge(a, b, data);
        self
    }

    /// Records a parameter passed to a step, e.g. an alignment tool's
    /// gap-penalty setting.
    pub fn param(
        &mut self,
        step: StepId,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> &mut Self {
        if self.step_node(step).is_some() {
            self.params
                .entry(step)
                .or_default()
                .insert(key.into(), value.into());
        }
        self
    }

    /// Records user-provided data flowing from the run's input node to `to`.
    pub fn input_edge(&mut self, to: StepId, data: impl IntoIterator<Item = u64>) -> &mut Self {
        let Some(b) = self.step_node(to) else {
            return self;
        };
        let data: Vec<DataId> = data.into_iter().map(DataId).collect();
        self.clock = self.clock.tick();
        for &d in &data {
            self.user_input_meta
                .entry(d)
                .or_insert_with(|| UserInputMeta {
                    user: self.default_user.clone(),
                    time: self.clock,
                });
        }
        self.push_edge(NodeId::from_index(0), b, data);
        self
    }

    /// Overrides the recorded metadata of one user-input object. Log
    /// reconstruction uses this to restore the log's who/when — the actual
    /// provenance of user-input data — in place of the builder's own
    /// default user and logical clock.
    pub fn input_meta(&mut self, data: u64, user: impl Into<String>, time: Timestamp) -> &mut Self {
        self.user_input_meta.insert(
            DataId(data),
            UserInputMeta {
                user: user.into(),
                time,
            },
        );
        self
    }

    /// Records final outputs flowing from `from` to the run's output node.
    pub fn output_edge(&mut self, from: StepId, data: impl IntoIterator<Item = u64>) -> &mut Self {
        let Some(a) = self.step_node(from) else {
            return self;
        };
        let data: Vec<DataId> = data.into_iter().map(DataId).collect();
        self.push_edge(a, NodeId::from_index(1), data);
        self
    }

    /// Validates and finalizes the run.
    pub fn build(self) -> Result<WorkflowRun> {
        self.finish(false)
    }

    /// Validates and finalizes a streaming *prefix*: final outputs may be
    /// absent and nodes only need to be reachable from the input node
    /// (the seal will connect them to the output). All other invariants —
    /// acyclicity, unique producers, spec conformance — hold unchanged.
    pub fn build_prefix(self) -> Result<WorkflowRun> {
        self.finish(true)
    }

    fn finish(self, prefix: bool) -> Result<WorkflowRun> {
        if let Some(e) = self.deferred.into_iter().next() {
            return Err(e);
        }
        let graph = self.graph;
        let input = NodeId::from_index(0);
        let output = NodeId::from_index(1);

        if !is_acyclic(&graph) {
            return Err(ModelError::RunHasCycle);
        }
        if prefix {
            let reach = zoom_graph::reachable_set(&graph, input, zoom_graph::Direction::Forward);
            if let Some(bad) = graph
                .node_ids()
                .find(|&n| n != output && !reach.contains(n.index()))
            {
                return Err(ModelError::NotOnInputOutputPath(format!(
                    "{:?}",
                    graph.node(bad)
                )));
            }
        } else if !all_nodes_on_paths(&graph, input, output) {
            let on = zoom_graph::algo::paths::nodes_on_paths(&graph, input, output);
            let bad = graph
                .node_ids()
                .find(|n| !on.contains(n.index()))
                .expect("some node is off the input-output paths");
            return Err(ModelError::NotOnInputOutputPath(format!(
                "{:?}",
                graph.node(bad)
            )));
        }

        // Unique producer per data object; the producer is the source node of
        // every edge carrying the object.
        let mut producer: HashMap<DataId, NodeId> = HashMap::new();
        for (e, src, _, _) in graph.edges() {
            for &d in graph.edge(e) {
                if let Some(&prev) = producer.get(&d) {
                    if prev != src {
                        let step_of = |n: NodeId| match graph.node(n) {
                            RunNode::Step { id, .. } => id.0,
                            _ => 0,
                        };
                        return Err(ModelError::DataProducedTwice {
                            data: d.0,
                            first: step_of(prev),
                            second: step_of(src),
                        });
                    }
                } else {
                    producer.insert(d, src);
                }
            }
        }

        // Spec conformance: every run edge must follow a specification edge.
        for (_, src, tgt, _) in graph.edges() {
            let spec_node = |n: NodeId| match graph.node(n) {
                RunNode::Input => Some(self.spec.input()),
                RunNode::Output => Some(self.spec.output()),
                RunNode::Step { module, .. } => Some(*module),
            };
            let (a, b) = (
                spec_node(src).expect("total"),
                spec_node(tgt).expect("total"),
            );
            if !self.spec.graph().has_edge(a, b) {
                return Err(ModelError::SpecMismatch(format!(
                    "run edge {} -> {} has no specification edge {} -> {}",
                    graph.node(src),
                    graph.node(tgt),
                    self.spec.label(a),
                    self.spec.label(b)
                )));
            }
        }

        // Keep metadata only for data actually input by the user.
        let user_input_meta = self
            .user_input_meta
            .into_iter()
            .filter(|(d, _)| producer.get(d) == Some(&input))
            .collect();

        Ok(WorkflowRun {
            spec_name: self.spec.name().to_string(),
            graph,
            node_of_step: self.node_of_step,
            producer,
            user_input_meta,
            params: self.params,
        })
    }
}

impl std::fmt::Display for RunNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunNode::Input => write!(f, "input"),
            RunNode::Output => write!(f, "output"),
            RunNode::Step { id, .. } => write!(f, "{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    /// input -> A -> B -> output with a loop B -> A
    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "A")
            .to_output("B");
        b.build().unwrap()
    }

    #[test]
    fn build_simple_run() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.input_edge(s1, [1, 2])
            .data_edge(s1, s2, [3])
            .output_edge(s2, [4]);
        let run = rb.build().unwrap();
        assert_eq!(run.step_count(), 2);
        assert_eq!(run.data_count(), 4);
        assert_eq!(run.user_inputs(), vec![DataId(1), DataId(2)]);
        assert_eq!(run.final_outputs(), vec![DataId(4)]);
        assert_eq!(run.producer_of(DataId(1)), Some(Producer::UserInput));
        assert_eq!(run.producer_of(DataId(3)), Some(Producer::Step(s1)));
        assert_eq!(run.producer_of(DataId(99)), None);
        assert_eq!(run.inputs_of(s2).unwrap(), vec![DataId(3)]);
        assert_eq!(run.outputs_of(s1).unwrap(), vec![DataId(3)]);
        assert!(run.user_input_meta(DataId(1)).is_some());
        assert!(run.user_input_meta(DataId(3)).is_none());
        assert_eq!(run.module_of(s2).unwrap(), b);
        assert_eq!(run.max_step_id(), 2);
    }

    #[test]
    fn loop_unrolling_allows_repeated_modules() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        let s3 = rb.step(a); // second execution of A (loop unrolled)
        let s4 = rb.step(b);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s2, s3, [3])
            .data_edge(s3, s4, [4])
            .output_edge(s4, [5]);
        let run = rb.build().unwrap();
        assert_eq!(run.step_count(), 4);
        assert_eq!(run.module_of(s3).unwrap(), a);
    }

    #[test]
    fn cyclic_run_rejected() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s2, s1, [3])
            .output_edge(s2, [4]);
        assert_eq!(rb.build().unwrap_err(), ModelError::RunHasCycle);
    }

    #[test]
    fn data_produced_twice_rejected() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [2]); // d2 also "produced" by s2
        let err = rb.build().unwrap_err();
        assert!(matches!(err, ModelError::DataProducedTwice { data: 2, .. }));
    }

    #[test]
    fn fanout_of_same_datum_is_fine() {
        // d2 produced by s1 flows to two consumers.
        let mut sb = SpecBuilder::new("fan");
        sb.analysis("A");
        sb.analysis("B");
        sb.analysis("C");
        sb.from_input("A")
            .edge("A", "B")
            .edge("A", "C")
            .to_output("B")
            .to_output("C");
        let s = sb.build().unwrap();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        let s3 = rb.step(c);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s1, s3, [2])
            .output_edge(s2, [3])
            .output_edge(s3, [4]);
        let run = rb.build().unwrap();
        assert_eq!(run.producer_of(DataId(2)), Some(Producer::Step(s1)));
    }

    #[test]
    fn run_must_follow_spec_edges() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        // Spec has no edge input -> B.
        rb.input_edge(s1, [1])
            .input_edge(s2, [9])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        assert!(matches!(
            rb.build().unwrap_err(),
            ModelError::SpecMismatch(_)
        ));
    }

    #[test]
    fn disconnected_step_rejected() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        let _s3 = rb.step(a); // never wired up
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        assert!(matches!(
            rb.build().unwrap_err(),
            ModelError::NotOnInputOutputPath(_)
        ));
    }

    #[test]
    fn duplicate_and_unknown_steps() {
        let s = spec();
        let a = s.module("A").unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        rb.step_with_id(s1, a);
        assert_eq!(rb.build().unwrap_err(), ModelError::DuplicateStep(1));

        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        rb.input_edge(s1, [1]).data_edge(s1, StepId(42), [2]);
        assert_eq!(rb.build().unwrap_err(), ModelError::UnknownStep(42));
    }

    #[test]
    fn empty_edge_rejected() {
        let s = spec();
        let a = s.module("A").unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        rb.input_edge(s1, std::iter::empty::<u64>());
        assert!(matches!(
            rb.build().unwrap_err(),
            ModelError::EmptyDataEdge { .. }
        ));
    }

    #[test]
    fn explicit_ids_and_auto_ids_coexist() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s5 = rb.step_with_id(StepId(5), a);
        let s1 = rb.step(b); // auto: S1
        assert_eq!(s1, StepId(1));
        rb.input_edge(s5, [1])
            .data_edge(s5, s1, [2])
            .output_edge(s1, [3]);
        let run = rb.build().unwrap();
        assert_eq!(run.max_step_id(), 5);
    }

    #[test]
    fn step_parameters() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.param(s1, "gap-penalty", "0.5")
            .param(s1, "matrix", "BLOSUM62")
            .param(StepId(99), "ignored", "x") // unknown step: recorded error later
            .input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        let err_or_run = rb.build();
        // The unknown step surfaced as an error.
        assert!(matches!(err_or_run, Err(ModelError::UnknownStep(99))));

        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.param(s1, "gap-penalty", "0.5")
            .param(s1, "matrix", "BLOSUM62")
            .input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        let run = rb.build().unwrap();
        assert_eq!(run.params_of(s1).len(), 2);
        assert_eq!(run.params_of(s1)["matrix"], "BLOSUM62");
        assert!(run.params_of(s2).is_empty());
    }

    #[test]
    fn data_range_formatting() {
        let d = |v: &[u64]| v.iter().copied().map(DataId).collect::<Vec<_>>();
        assert_eq!(format_data_range(&d(&[1, 2, 3, 4])), "d1..d4");
        assert_eq!(format_data_range(&d(&[5])), "d5");
        assert_eq!(format_data_range(&d(&[1, 3, 4, 9])), "d1,d3..d4,d9");
        assert_eq!(format_data_range(&[]), "");
    }

    #[test]
    fn dot_rendering() {
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.input_edge(s1, [1, 2, 3])
            .data_edge(s1, s2, [4])
            .output_edge(s2, [5]);
        let run = rb.build().unwrap();
        let dot = run.to_dot(&s);
        assert!(dot.contains("S1:A"));
        assert!(dot.contains("S2:B"));
        assert!(dot.contains("d1..d3"));
    }
}
