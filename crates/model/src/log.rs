//! Event logs (Section II): the raw material of provenance.
//!
//! "We assume that each workflow run generates a log of events, which tells
//! what module a step is an instance of, what data objects and parameters
//! were input to that step, and what data objects were output from that
//! step." ZOOM is workflow-system-agnostic: anything that can produce this
//! log can be loaded into the provenance warehouse. This module defines the
//! log format, synthesizes logs from runs (our simulated executions), and —
//! the direction real deployments use — reconstructs runs from logs.

use crate::error::{ModelError, Result};
use crate::ids::{DataId, StepId, Timestamp};
use crate::run::{RunBuilder, WorkflowRun};
use crate::spec::WorkflowSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One event in a workflow-system log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// The user provided a data object (recorded with who/when — this *is*
    /// the provenance of user-input data).
    UserInput {
        /// The provided object.
        data: DataId,
        /// Who provided it.
        user: String,
        /// When.
        time: Timestamp,
    },
    /// A parameter was passed to a step.
    Param {
        /// The receiving step.
        step: StepId,
        /// Parameter name.
        key: String,
        /// Parameter value.
        value: String,
        /// When.
        time: Timestamp,
    },
    /// A step began, as an instance of the named module.
    StepStarted {
        /// The step.
        step: StepId,
        /// Label of the module it instantiates.
        module: String,
        /// Start time.
        time: Timestamp,
    },
    /// A step read a data object.
    Read {
        /// The reading step.
        step: StepId,
        /// The object read.
        data: DataId,
        /// When.
        time: Timestamp,
    },
    /// A step wrote a data object.
    Wrote {
        /// The writing step.
        step: StepId,
        /// The object written.
        data: DataId,
        /// When.
        time: Timestamp,
    },
    /// A step finished.
    StepFinished {
        /// The step.
        step: StepId,
        /// When.
        time: Timestamp,
    },
    /// A data object was designated a final output of the run.
    Finalized {
        /// The object.
        data: DataId,
        /// When.
        time: Timestamp,
    },
}

impl LogEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Timestamp {
        match self {
            LogEvent::UserInput { time, .. }
            | LogEvent::Param { time, .. }
            | LogEvent::StepStarted { time, .. }
            | LogEvent::Read { time, .. }
            | LogEvent::Wrote { time, .. }
            | LogEvent::StepFinished { time, .. }
            | LogEvent::Finalized { time, .. } => *time,
        }
    }
}

/// A log of one workflow run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    /// Name of the executed specification.
    pub spec_name: String,
    /// Events in time order.
    pub events: Vec<LogEvent>,
}

impl EventLog {
    /// Synthesizes the event log a workflow system would have produced for
    /// `run`: user inputs first, then — in a topological order of the run —
    /// one `StepStarted`, the step's `Read`s, its `Wrote`s, and a
    /// `StepFinished` per step, and finally `Finalized` events for the run's
    /// final outputs. Timestamps are a logical clock.
    pub fn from_run(run: &WorkflowRun, spec: &WorkflowSpec) -> Self {
        let mut events = Vec::new();
        let mut clock = Timestamp(0);
        let mut tick = || {
            clock = clock.tick();
            clock
        };

        for d in run.user_inputs() {
            let meta = run
                .user_input_meta(d)
                .expect("user inputs always carry metadata");
            events.push(LogEvent::UserInput {
                data: d,
                user: meta.user.clone(),
                time: tick(),
            });
        }

        let order = zoom_graph::algo::topo::topological_sort(run.graph())
            .expect("validated runs are acyclic");
        for node in order {
            let Some((sid, module)) = run.step_at(node) else {
                continue;
            };
            events.push(LogEvent::StepStarted {
                step: sid,
                module: spec.label(module).to_string(),
                time: tick(),
            });
            for (key, value) in run.params_of(sid) {
                events.push(LogEvent::Param {
                    step: sid,
                    key: key.clone(),
                    value: value.clone(),
                    time: tick(),
                });
            }
            for d in run.inputs_of(sid).expect("step exists") {
                events.push(LogEvent::Read {
                    step: sid,
                    data: d,
                    time: tick(),
                });
            }
            for d in run.outputs_of(sid).expect("step exists") {
                events.push(LogEvent::Wrote {
                    step: sid,
                    data: d,
                    time: tick(),
                });
            }
            events.push(LogEvent::StepFinished {
                step: sid,
                time: tick(),
            });
        }

        for d in run.final_outputs() {
            events.push(LogEvent::Finalized {
                data: d,
                time: tick(),
            });
        }

        EventLog {
            spec_name: spec.name().to_string(),
            events,
        }
    }

    /// Reconstructs the run from this log: the step that wrote an object is
    /// its producer; an edge `A -> B` carries every object written by `A`
    /// and read by `B`; objects read but never written are user inputs;
    /// `Finalized` objects flow to the run's output node.
    pub fn to_run(&self, spec: &WorkflowSpec) -> Result<WorkflowRun> {
        self.reconstruct(spec, false)
    }

    /// Reconstructs a streaming *prefix* run from this log: like
    /// [`EventLog::to_run`], but `Finalized` events are ignored (the stream
    /// has not sealed yet) and the resulting run satisfies only the prefix
    /// invariants ([`RunBuilder::build_prefix`]). This is the batch oracle
    /// the differential streaming tests compare against.
    pub fn to_run_prefix(&self, spec: &WorkflowSpec) -> Result<WorkflowRun> {
        self.reconstruct(spec, true)
    }

    fn reconstruct(&self, spec: &WorkflowSpec, prefix: bool) -> Result<WorkflowRun> {
        if spec.name() != self.spec_name {
            return Err(ModelError::SpecMismatch(format!(
                "log is for spec `{}`, got `{}`",
                self.spec_name,
                spec.name()
            )));
        }

        let mut rb = RunBuilder::new(spec);
        let mut writer: HashMap<DataId, StepId> = HashMap::new();
        // BTreeMaps keep edge insertion deterministic.
        let mut reads: BTreeMap<StepId, Vec<DataId>> = BTreeMap::new();
        let mut user_meta: HashMap<DataId, (String, Timestamp)> = HashMap::new();
        let mut finals: Vec<DataId> = Vec::new();
        let mut steps_seen: Vec<StepId> = Vec::new();
        // Applied after the scan so Param events may precede StepStarted in
        // foreign logs.
        let mut params: Vec<(StepId, String, String)> = Vec::new();

        for ev in &self.events {
            match ev {
                LogEvent::StepStarted { step, module, .. } => {
                    let m = spec
                        .node_by_label(module)
                        .filter(|&n| spec.is_module(n))
                        .ok_or_else(|| {
                            ModelError::BadLog(format!("unknown module `{module}` in log"))
                        })?;
                    rb.step_with_id(*step, m);
                    steps_seen.push(*step);
                }
                LogEvent::Read { step, data, .. } => {
                    reads.entry(*step).or_default().push(*data);
                }
                LogEvent::Wrote { step, data, .. } => {
                    if let Some(prev) = writer.insert(*data, *step) {
                        if prev != *step {
                            return Err(ModelError::DataProducedTwice {
                                data: data.0,
                                first: prev.0,
                                second: step.0,
                            });
                        }
                    }
                }
                LogEvent::UserInput { data, user, time } => {
                    user_meta.insert(*data, (user.clone(), *time));
                }
                LogEvent::Param {
                    step, key, value, ..
                } => {
                    params.push((*step, key.clone(), value.clone()));
                }
                LogEvent::Finalized { data, .. } => {
                    if !prefix {
                        finals.push(*data);
                    }
                }
                LogEvent::StepFinished { .. } => {}
            }
        }

        for (step, key, value) in params {
            rb.param(step, key, value);
        }

        // Group the data flowing into each step by producer.
        for (&step, data) in &reads {
            let mut by_producer: BTreeMap<Option<StepId>, Vec<u64>> = BTreeMap::new();
            for &d in data {
                by_producer
                    .entry(writer.get(&d).copied())
                    .or_default()
                    .push(d.0);
            }
            for (producer, ds) in by_producer {
                match producer {
                    Some(p) => {
                        rb.data_edge(p, step, ds);
                    }
                    None => {
                        // Read but never written: user input. Restore the
                        // recorded who/when — the streaming ingestor keeps
                        // the log's own metadata, and batch reconstruction
                        // must agree with it exactly.
                        rb.input_edge(step, ds.iter().copied());
                        for &d in &ds {
                            if let Some((user, time)) = user_meta.get(&DataId(d)) {
                                rb.input_meta(d, user.clone(), *time);
                            }
                        }
                    }
                }
            }
        }

        // Final outputs, grouped by producing step.
        let mut finals_by_producer: BTreeMap<StepId, Vec<u64>> = BTreeMap::new();
        for d in finals {
            let p = writer.get(&d).copied().ok_or_else(|| {
                ModelError::BadLog(format!("finalized object {d} was never written"))
            })?;
            finals_by_producer.entry(p).or_default().push(d.0);
        }
        for (p, ds) in finals_by_producer {
            rb.output_edge(p, ds);
        }

        if prefix {
            rb.build_prefix()
        } else {
            rb.build()
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Producer;
    use crate::spec::SpecBuilder;

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn run(spec: &WorkflowSpec) -> WorkflowRun {
        let (a, b) = (spec.module("A").unwrap(), spec.module("B").unwrap());
        let mut rb = RunBuilder::new(spec);
        rb.user("joe");
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.param(s1, "threshold", "0.05")
            .input_edge(s1, [1, 2])
            .data_edge(s1, s2, [3, 4])
            .output_edge(s2, [5]);
        rb.build().unwrap()
    }

    #[test]
    fn log_contains_expected_events() {
        let s = spec();
        let r = run(&s);
        let log = EventLog::from_run(&r, &s);
        assert_eq!(log.spec_name, "s");
        assert!(!log.is_empty());
        // 2 user inputs + (start [+ params] + reads + writes + finish) per
        // step + 1 final. S1: start + 1 param + 2 reads + 2 writes + finish
        // = 7; S2: start + 2 reads + 1 write + finish = 5.
        assert_eq!(log.len(), 2 + 7 + 5 + 1);
        // Times strictly increase.
        for w in log.events.windows(2) {
            assert!(w[0].time() < w[1].time());
        }
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e, LogEvent::UserInput { user, .. } if user == "joe")));
        assert!(log.events.iter().any(|e| matches!(
            e,
            LogEvent::Finalized {
                data: DataId(5),
                ..
            }
        )));
    }

    #[test]
    fn roundtrip_run_log_run() {
        let s = spec();
        let r = run(&s);
        let log = EventLog::from_run(&r, &s);
        let r2 = log.to_run(&s).unwrap();
        assert_eq!(r2.step_count(), r.step_count());
        assert_eq!(r2.all_data(), r.all_data());
        assert_eq!(r2.user_inputs(), r.user_inputs());
        assert_eq!(r2.final_outputs(), r.final_outputs());
        for (sid, m) in r.steps() {
            assert_eq!(r2.module_of(sid).unwrap(), m);
            assert_eq!(r2.inputs_of(sid).unwrap(), r.inputs_of(sid).unwrap());
            assert_eq!(r2.outputs_of(sid).unwrap(), r.outputs_of(sid).unwrap());
        }
        assert_eq!(r2.producer_of(DataId(3)), Some(Producer::Step(StepId(1))));
        assert_eq!(
            r2.user_input_meta(DataId(1)).map(|m| m.user.as_str()),
            Some("joe")
        );
        // Parameters survive the roundtrip.
        assert_eq!(r2.params_of(StepId(1))["threshold"], "0.05");
    }

    #[test]
    fn spec_name_mismatch_rejected() {
        let s = spec();
        let r = run(&s);
        let log = EventLog::from_run(&r, &s);
        let mut other = SpecBuilder::new("other");
        other.analysis("A");
        other.from_input("A").to_output("A");
        let other = other.build().unwrap();
        assert!(matches!(
            log.to_run(&other).unwrap_err(),
            ModelError::SpecMismatch(_)
        ));
    }

    #[test]
    fn unknown_module_in_log_rejected() {
        let s = spec();
        let log = EventLog {
            spec_name: "s".into(),
            events: vec![LogEvent::StepStarted {
                step: StepId(1),
                module: "ZZZ".into(),
                time: Timestamp(1),
            }],
        };
        assert!(matches!(log.to_run(&s).unwrap_err(), ModelError::BadLog(_)));
    }

    #[test]
    fn finalized_unwritten_rejected() {
        let s = spec();
        let log = EventLog {
            spec_name: "s".into(),
            events: vec![LogEvent::Finalized {
                data: DataId(9),
                time: Timestamp(1),
            }],
        };
        assert!(matches!(log.to_run(&s).unwrap_err(), ModelError::BadLog(_)));
    }

    #[test]
    fn double_write_rejected() {
        let s = spec();
        let log = EventLog {
            spec_name: "s".into(),
            events: vec![
                LogEvent::StepStarted {
                    step: StepId(1),
                    module: "A".into(),
                    time: Timestamp(1),
                },
                LogEvent::StepStarted {
                    step: StepId(2),
                    module: "B".into(),
                    time: Timestamp(2),
                },
                LogEvent::Wrote {
                    step: StepId(1),
                    data: DataId(7),
                    time: Timestamp(3),
                },
                LogEvent::Wrote {
                    step: StepId(2),
                    data: DataId(7),
                    time: Timestamp(4),
                },
            ],
        };
        assert!(matches!(
            log.to_run(&s).unwrap_err(),
            ModelError::DataProducedTwice { data: 7, .. }
        ));
    }
}
