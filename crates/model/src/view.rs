//! User views (Section II): partitions of a specification's modules into
//! composite modules.

use crate::error::{ModelError, Result};
use crate::ids::CompositeId;
use crate::spec::WorkflowSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zoom_graph::NodeId;

/// A composite module: a named, nonempty set of specification modules.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositeModule {
    /// Display name, e.g. `"M10"` or `"Run alignment"`.
    pub name: String,
    /// Member modules, sorted by node id.
    pub members: Vec<NodeId>,
}

impl CompositeModule {
    /// Creates a composite, sorting and deduplicating the members.
    pub fn new(name: impl Into<String>, mut members: Vec<NodeId>) -> Self {
        members.sort();
        members.dedup();
        CompositeModule {
            name: name.into(),
            members,
        }
    }

    /// Returns `true` if this composite contains exactly one module.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// A user view `U` of a workflow specification: a partition of its modules
/// (excluding input and output) into composite modules.
///
/// The *size* of the view, `|U|`, is the number of composite modules — e.g.
/// Joe's view of the paper's phylogenomic workflow has size 4 and Mary's
/// size 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UserView {
    name: String,
    spec_name: String,
    composites: Vec<CompositeModule>,
    /// Indexed by module node id: which composite contains it.
    of_module: HashMap<NodeId, CompositeId>,
}

impl UserView {
    /// Builds a view from named composites, validating that they partition
    /// the specification's modules.
    pub fn new(
        name: impl Into<String>,
        spec: &WorkflowSpec,
        composites: Vec<CompositeModule>,
    ) -> Result<Self> {
        let mut of_module: HashMap<NodeId, CompositeId> = HashMap::new();
        let mut names: HashMap<&str, ()> = HashMap::new();
        for (i, c) in composites.iter().enumerate() {
            if c.members.is_empty() {
                return Err(ModelError::EmptyComposite(c.name.clone()));
            }
            if names.insert(&c.name, ()).is_some() {
                return Err(ModelError::DuplicateComposite(c.name.clone()));
            }
            for &m in &c.members {
                if !spec.is_module(m) {
                    return Err(ModelError::NotAPartition(format!(
                        "composite `{}` contains non-module node {}",
                        c.name,
                        spec.label(m)
                    )));
                }
                if of_module.insert(m, CompositeId(i as u32)).is_some() {
                    return Err(ModelError::NotAPartition(format!(
                        "module `{}` appears in two composites",
                        spec.label(m)
                    )));
                }
            }
        }
        if of_module.len() != spec.module_count() {
            let missing = spec
                .module_ids()
                .find(|m| !of_module.contains_key(m))
                .expect("some module uncovered");
            return Err(ModelError::NotAPartition(format!(
                "module `{}` is not covered by any composite",
                spec.label(missing)
            )));
        }
        Ok(UserView {
            name: name.into(),
            spec_name: spec.name().to_string(),
            composites,
            of_module,
        })
    }

    /// The finest view: one singleton composite per module (the paper's
    /// *UAdmin*, "each step class is relevant — no composite modules").
    pub fn admin(spec: &WorkflowSpec) -> Self {
        let composites = spec
            .module_ids()
            .map(|m| CompositeModule::new(spec.label(m).to_string(), vec![m]))
            .collect();
        UserView::new("UAdmin", spec, composites).expect("admin view is always a valid partition")
    }

    /// The coarsest view: one composite containing the entire workflow (the
    /// paper's *UBlackBox*).
    pub fn black_box(spec: &WorkflowSpec) -> Self {
        let composites = vec![CompositeModule::new(
            format!("{}-blackbox", spec.name()),
            spec.module_ids().collect(),
        )];
        UserView::new("UBlackBox", spec, composites)
            .expect("black-box view is always a valid partition")
    }

    /// The view's name (e.g. `"UAdmin"`, `"Joe"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the specification this view partitions.
    pub fn spec_name(&self) -> &str {
        &self.spec_name
    }

    /// `|U|`: the number of composite modules.
    pub fn size(&self) -> usize {
        self.composites.len()
    }

    /// The composite modules, in id order.
    pub fn composites(&self) -> &[CompositeModule] {
        &self.composites
    }

    /// The composite containing module `m` — the paper's `C(n)`.
    ///
    /// # Panics
    /// Panics if `m` is not a module of the underlying specification.
    pub fn composite_of(&self, m: NodeId) -> CompositeId {
        self.of_module[&m]
    }

    /// The composite containing `m`, or `None` for unknown nodes
    /// (input/output).
    pub fn try_composite_of(&self, m: NodeId) -> Option<CompositeId> {
        self.of_module.get(&m).copied()
    }

    /// The members of composite `c`.
    pub fn members(&self, c: CompositeId) -> &[NodeId] {
        &self.composites[c.index()].members
    }

    /// The name of composite `c`.
    pub fn composite_name(&self, c: CompositeId) -> &str {
        &self.composites[c.index()].name
    }

    /// Iterates over composite ids.
    pub fn composite_ids(&self) -> impl ExactSizeIterator<Item = CompositeId> {
        (0..self.composites.len()).map(|i| CompositeId(i as u32))
    }

    /// Re-validates a deserialized view against `spec`.
    ///
    /// Snapshot/journal bytes bypass [`UserView::new`], so a stored view
    /// must be re-checked before it reaches query time: the composites must
    /// partition `spec`'s modules, and the serialized member→composite
    /// index must agree with the composites (a doctored index would
    /// silently change visibility).
    pub fn validate(&self, spec: &WorkflowSpec) -> Result<()> {
        if self.spec_name != spec.name() {
            return Err(ModelError::SpecMismatch(format!(
                "view `{}` is of `{}`, spec is `{}`",
                self.name,
                self.spec_name,
                spec.name()
            )));
        }
        let rebuilt = UserView::new(self.name.clone(), spec, self.composites.clone())?;
        if rebuilt.of_module != self.of_module {
            return Err(ModelError::NotAPartition(format!(
                "view `{}`: member index diverges from its composites",
                self.name
            )));
        }
        Ok(())
    }

    /// Property 1 (well-formedness): every composite contains at most one
    /// module from `relevant`.
    pub fn is_well_formed(&self, relevant: &[NodeId]) -> bool {
        self.composites
            .iter()
            .all(|c| c.members.iter().filter(|m| relevant.contains(m)).count() <= 1)
    }

    /// Returns `true` if every composite of `self` is contained in some
    /// composite of `other` (i.e. `self` is a refinement of `other`).
    ///
    /// UAdmin refines every view; every view refines UBlackBox.
    pub fn refines(&self, other: &UserView) -> bool {
        self.composites.iter().all(|c| {
            let Some(target) = other.try_composite_of(c.members[0]) else {
                return false;
            };
            c.members
                .iter()
                .all(|&m| other.try_composite_of(m) == Some(target))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .to_output("C");
        b.build().unwrap()
    }

    #[test]
    fn admin_and_blackbox() {
        let s = spec();
        let admin = UserView::admin(&s);
        assert_eq!(admin.size(), 3);
        assert!(admin.composites().iter().all(CompositeModule::is_singleton));
        let bb = UserView::black_box(&s);
        assert_eq!(bb.size(), 1);
        assert_eq!(bb.members(CompositeId(0)).len(), 3);
        assert!(admin.refines(&bb));
        assert!(!bb.refines(&admin));
        assert!(admin.refines(&admin));
    }

    #[test]
    fn custom_partition() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("AB", vec![b, a]),
                CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        assert_eq!(v.size(), 2);
        assert_eq!(v.composite_of(a), v.composite_of(b));
        assert_ne!(v.composite_of(a), v.composite_of(c));
        // Members are sorted.
        assert_eq!(v.members(CompositeId(0)), &[a, b]);
        assert_eq!(v.composite_name(CompositeId(0)), "AB");
        assert!(v.try_composite_of(s.input()).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let err = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("X", vec![a, b]),
                CompositeModule::new("Y", vec![b, c]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::NotAPartition(_)));
    }

    #[test]
    fn uncovered_module_rejected() {
        let s = spec();
        let a = s.module("A").unwrap();
        let err = UserView::new("v", &s, vec![CompositeModule::new("X", vec![a])]).unwrap_err();
        assert!(matches!(err, ModelError::NotAPartition(_)));
    }

    #[test]
    fn special_nodes_rejected() {
        let s = spec();
        let err = UserView::new(
            "v",
            &s,
            vec![CompositeModule::new(
                "X",
                vec![s.input(), s.module("A").unwrap()],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::NotAPartition(_)));
    }

    #[test]
    fn empty_composite_rejected() {
        let s = spec();
        let err = UserView::new("v", &s, vec![CompositeModule::new("X", vec![])]).unwrap_err();
        assert_eq!(err, ModelError::EmptyComposite("X".into()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let err = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("X", vec![a, b]),
                CompositeModule::new("X", vec![c]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateComposite("X".into()));
    }

    #[test]
    fn validate_accepts_built_views_and_rejects_doctored_ones() {
        let s = spec();
        let admin = UserView::admin(&s);
        admin.validate(&s).unwrap();
        UserView::black_box(&s).validate(&s).unwrap();

        // Same view against a different spec (name mismatch).
        let mut b = SpecBuilder::new("other");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let other = b.build().unwrap();
        assert!(matches!(
            admin.validate(&other),
            Err(ModelError::SpecMismatch(_))
        ));

        // A view built against a *different* spec that shares the name: the
        // partition does not cover this spec's modules.
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let impostor_spec = b.build().unwrap();
        let impostor = UserView::admin(&impostor_spec);
        assert_eq!(impostor.spec_name(), "s");
        assert!(matches!(
            impostor.validate(&s),
            Err(ModelError::NotAPartition(_))
        ));

        // A doctored member index (as decoded bytes could carry) diverging
        // from the composites.
        let mut doctored = UserView::black_box(&s);
        let a = s.module("A").unwrap();
        let b_mod = s.module("B").unwrap();
        let wrong = CompositeId(doctored.of_module[&b_mod].0 + 1);
        doctored.of_module.insert(a, wrong);
        assert!(matches!(
            doctored.validate(&s),
            Err(ModelError::NotAPartition(_))
        ));
    }

    #[test]
    fn well_formedness() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("AB", vec![a, b]),
                CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        assert!(v.is_well_formed(&[a, c]));
        assert!(!v.is_well_formed(&[a, b]));
        assert!(v.is_well_formed(&[]));
    }
}
