//! Composite executions (Section II): the run as seen through a user view.
//!
//! "The execution of consecutive steps within the same composite module
//! causes a virtual execution of the composite step." We materialize this as
//! a [`ViewRun`]: the run graph whose nodes are *composite executions* —
//! weakly-connected groups of steps belonging to the same composite module —
//! and whose edges carry only the data passed **between** composite
//! executions. Data passed between steps inside one composite execution is
//! hidden, which is exactly how user views restrict provenance.
//!
//! On the paper's Figure 2 with Joe's view, the three steps of `M10`'s loop
//! collapse into one virtual execution `S13` (input `{d308..d408}`, output
//! `{d413}`); with Mary's view, `M11` yields two virtual executions `S11`
//! and `S12` because the loop leaves the composite through `M5` and
//! re-enters.
//!
//! Design note: a *singleton* composite (one module, as every composite of
//! UAdmin) whose execution group is a single step keeps the original step
//! id, so UAdmin's view-run is the run itself. Virtual executions get fresh
//! ids numbered after the run's largest step id, in order of their smallest
//! member step.

use crate::ids::{CompositeId, DataId, StepId};
use crate::run::{RunNode, WorkflowRun};
use crate::spec::WorkflowSpec;
use crate::view::UserView;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zoom_graph::{Digraph, NodeId};

/// One (possibly virtual) execution of a composite module.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositeExecution {
    /// The execution's step id — original for singleton groups of singleton
    /// composites, fresh ("virtual") otherwise.
    pub id: StepId,
    /// The composite module this is an execution of.
    pub composite: CompositeId,
    /// The member steps, sorted.
    pub members: Vec<StepId>,
    /// Whether the id is virtual (constructed, not present in the log).
    pub is_virtual: bool,
}

/// A node of a view-run graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewRunNode {
    /// Beginning of the execution.
    Input,
    /// End of the execution.
    Output,
    /// A composite execution (index into [`ViewRun::execs`]).
    Exec(u32),
}

/// A workflow run projected through a user view.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViewRun {
    spec_name: String,
    view_name: String,
    execs: Vec<CompositeExecution>,
    graph: Digraph<ViewRunNode, Vec<DataId>>,
    exec_of_step: HashMap<StepId, u32>,
    /// Producing view-graph node for every *visible* data object.
    producer: HashMap<DataId, NodeId>,
}

impl ViewRun {
    /// Projects `run` through `view`.
    ///
    /// # Panics
    /// Panics if `run` and `view` do not belong to the same specification
    /// (callers go through the warehouse or [`crate::spec::WorkflowSpec`]
    /// APIs which guarantee this).
    pub fn new(run: &WorkflowRun, view: &UserView) -> Self {
        assert_eq!(
            run.spec_name(),
            view.spec_name(),
            "run and view must be over the same specification"
        );

        // --- 1. Composite of every step node; union-find over step nodes.
        let rg = run.graph();
        let n = rg.node_count();
        let mut comp_of_node: Vec<Option<CompositeId>> = vec![None; n];
        for node in rg.node_ids() {
            if let RunNode::Step { module, .. } = rg.node(node) {
                comp_of_node[node.index()] = Some(view.composite_of(*module));
            }
        }
        let mut uf = UnionFind::new(n);
        for (_, s, t, _) in rg.edges() {
            if let (Some(cs), Some(ct)) = (comp_of_node[s.index()], comp_of_node[t.index()]) {
                // Steps group only within *composite* modules proper — a
                // singleton composite is the module itself, so its steps
                // (e.g. the unrolled iterations of a reflexive loop) stay
                // separate. This keeps UAdmin ("no composite modules") the
                // finest level: its view-run is exactly the run.
                if cs == ct && view.members(cs).len() > 1 {
                    uf.union(s.index(), t.index());
                }
            }
        }

        // --- 2. Collect groups (sorted by smallest member step id).
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for node in rg.node_ids() {
            if comp_of_node[node.index()].is_some() {
                groups.entry(uf.find(node.index())).or_default().push(node);
            }
        }
        let step_id = |node: NodeId| match rg.node(node) {
            RunNode::Step { id, .. } => *id,
            _ => unreachable!("groups contain only steps"),
        };
        let mut group_list: Vec<Vec<NodeId>> = groups.into_values().collect();
        for g in &mut group_list {
            g.sort_by_key(|&m| step_id(m));
        }
        group_list.sort_by_key(|g| step_id(g[0]));

        // --- 3. Assign execution ids.
        let mut next_virtual = run.max_step_id() + 1;
        let mut execs = Vec::with_capacity(group_list.len());
        let mut exec_of_step: HashMap<StepId, u32> = HashMap::new();
        let mut exec_of_node: Vec<u32> = vec![u32::MAX; n];
        for (i, g) in group_list.iter().enumerate() {
            let composite = comp_of_node[g[0].index()].expect("groups contain only steps");
            let singleton_composite = view.members(composite).len() == 1;
            let (id, is_virtual) = if g.len() == 1 && singleton_composite {
                (step_id(g[0]), false)
            } else {
                let id = StepId(next_virtual);
                next_virtual += 1;
                (id, true)
            };
            let members: Vec<StepId> = g.iter().map(|&m| step_id(m)).collect();
            for &m in &members {
                exec_of_step.insert(m, i as u32);
            }
            for &node in g {
                exec_of_node[node.index()] = i as u32;
            }
            execs.push(CompositeExecution {
                id,
                composite,
                members,
                is_virtual,
            });
        }

        // --- 4. Build the view graph with merged boundary edges.
        let mut graph: Digraph<ViewRunNode, Vec<DataId>> =
            Digraph::with_capacity(execs.len() + 2, rg.edge_count());
        let vin = graph.add_node(ViewRunNode::Input);
        let vout = graph.add_node(ViewRunNode::Output);
        let mut node_of_exec = Vec::with_capacity(execs.len());
        for i in 0..execs.len() {
            node_of_exec.push(graph.add_node(ViewRunNode::Exec(i as u32)));
        }
        let map = |node: NodeId| -> NodeId {
            match rg.node(node) {
                RunNode::Input => vin,
                RunNode::Output => vout,
                RunNode::Step { .. } => node_of_exec[exec_of_node[node.index()] as usize],
            }
        };
        let mut edge_data: HashMap<(NodeId, NodeId), Vec<DataId>> = HashMap::new();
        let mut edge_order: Vec<(NodeId, NodeId)> = Vec::new();
        for (e, s, t, _) in rg.edges() {
            let (vs, vt) = (map(s), map(t));
            if vs == vt {
                continue; // internal to a composite execution: hidden
            }
            let entry = edge_data.entry((vs, vt)).or_insert_with(|| {
                edge_order.push((vs, vt));
                Vec::new()
            });
            entry.extend(rg.edge(e).iter().copied());
        }
        let mut producer: HashMap<DataId, NodeId> = HashMap::new();
        for key in edge_order {
            let mut data = edge_data.remove(&key).expect("recorded above");
            data.sort();
            data.dedup();
            for &d in &data {
                producer.insert(d, key.0);
            }
            graph.add_edge(key.0, key.1, data);
        }

        ViewRun {
            spec_name: run.spec_name().to_string(),
            view_name: view.name().to_string(),
            execs,
            graph,
            exec_of_step,
            producer,
        }
    }

    /// The specification's name.
    pub fn spec_name(&self) -> &str {
        &self.spec_name
    }

    /// The view's name.
    pub fn view_name(&self) -> &str {
        &self.view_name
    }

    /// The composite executions, ordered by smallest member step.
    pub fn execs(&self) -> &[CompositeExecution] {
        &self.execs
    }

    /// The view-level run graph.
    pub fn graph(&self) -> &Digraph<ViewRunNode, Vec<DataId>> {
        &self.graph
    }

    /// The input node (always node 0).
    pub fn input(&self) -> NodeId {
        NodeId::from_index(0)
    }

    /// The output node (always node 1).
    pub fn output(&self) -> NodeId {
        NodeId::from_index(1)
    }

    /// The view-graph node of execution index `i`.
    pub fn node_of_exec(&self, i: u32) -> NodeId {
        NodeId::from_index(i as usize + 2)
    }

    /// The execution at a view-graph node, if it is one.
    pub fn exec_at(&self, n: NodeId) -> Option<&CompositeExecution> {
        match self.graph.node(n) {
            ViewRunNode::Exec(i) => Some(&self.execs[*i as usize]),
            _ => None,
        }
    }

    /// The composite execution containing original step `s`.
    pub fn exec_of_step(&self, s: StepId) -> Option<&CompositeExecution> {
        self.exec_of_step.get(&s).map(|&i| &self.execs[i as usize])
    }

    /// Finds an execution by its (possibly virtual) id.
    pub fn exec_by_id(&self, id: StepId) -> Option<&CompositeExecution> {
        self.exec_index_by_id(id).map(|i| &self.execs[i as usize])
    }

    /// The position of the execution with (possibly virtual) id `id` — the
    /// index [`Self::node_of_exec`] expects, found in one scan.
    pub fn exec_index_by_id(&self, id: StepId) -> Option<u32> {
        self.execs.iter().position(|e| e.id == id).map(|i| i as u32)
    }

    /// The data input to execution `i`: union of its incoming edges, sorted.
    pub fn inputs_of(&self, i: u32) -> Vec<DataId> {
        let n = self.node_of_exec(i);
        let mut v: Vec<DataId> = self
            .graph
            .in_edges(n)
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The data output by execution `i`: union of its outgoing edges, sorted.
    pub fn outputs_of(&self, i: u32) -> Vec<DataId> {
        let n = self.node_of_exec(i);
        let mut v: Vec<DataId> = self
            .graph
            .out_edges(n)
            .flat_map(|e| self.graph.edge(e).iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All data visible at this view level, sorted. Data passed strictly
    /// inside a composite execution is *not* visible.
    pub fn visible_data(&self) -> Vec<DataId> {
        let mut v: Vec<DataId> = self.producer.keys().copied().collect();
        v.sort();
        v
    }

    /// Whether `d` is visible at this view level.
    pub fn is_visible(&self, d: DataId) -> bool {
        self.producer.contains_key(&d)
    }

    /// The view-graph node that produced visible datum `d`.
    pub fn producer_node(&self, d: DataId) -> Option<NodeId> {
        self.producer.get(&d).copied()
    }

    /// Renders the view-run as DOT, labeling executions `S13:M10`-style.
    pub fn to_dot(&self, spec: &WorkflowSpec, view: &UserView) -> String {
        use crate::run::format_data_range;
        use zoom_graph::dot::{to_dot, DotStyle};
        let _ = spec;
        let style = DotStyle {
            node_label: Box::new(move |_, n: &ViewRunNode| match n {
                ViewRunNode::Input => "input".to_string(),
                ViewRunNode::Output => "output".to_string(),
                ViewRunNode::Exec(i) => {
                    let e = &self.execs[*i as usize];
                    format!("{}:{}", e.id, view.composite_name(e.composite))
                }
            }),
            node_attrs: Box::new(|_, n: &ViewRunNode| match n {
                ViewRunNode::Input | ViewRunNode::Output => "shape=circle".to_string(),
                ViewRunNode::Exec(_) => "shape=box,style=dotted".to_string(),
            }),
            edge_label: Box::new(|_, data: &Vec<DataId>| format_data_range(data)),
            graph_attrs: vec!["rankdir=LR".to_string()],
        };
        to_dot(
            &self.graph,
            &format!("{} through {}", self.spec_name, self.view_name),
            &style,
        )
    }
}

/// Minimal union-find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunBuilder;
    use crate::spec::SpecBuilder;
    use crate::view::CompositeModule;

    /// input -> A -> B -> C -> output with loop C -> B (the M3/M5 shape).
    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("C", "B")
            .to_output("C");
        b.build().unwrap()
    }

    /// A run unrolling the B/C loop twice:
    /// S1:A -> S2:B -> S3:C -> S4:B -> S5:C -> output
    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        let s3 = rb.step(c);
        let s4 = rb.step(b);
        let s5 = rb.step(c);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s2, s3, [3])
            .data_edge(s3, s4, [4])
            .data_edge(s4, s5, [5])
            .output_edge(s5, [6]);
        rb.build().unwrap()
    }

    #[test]
    fn admin_view_run_is_the_run() {
        let s = spec();
        let r = run(&s);
        let v = UserView::admin(&s);
        let vr = ViewRun::new(&r, &v);
        assert_eq!(vr.execs().len(), r.step_count());
        assert!(vr.execs().iter().all(|e| !e.is_virtual));
        assert!(vr.execs().iter().all(|e| e.members == vec![e.id]));
        assert_eq!(vr.visible_data().len(), r.data_count());
        assert_eq!(vr.graph().edge_count(), r.graph().edge_count());
    }

    #[test]
    fn blackbox_hides_everything_internal() {
        let s = spec();
        let r = run(&s);
        let v = UserView::black_box(&s);
        let vr = ViewRun::new(&r, &v);
        assert_eq!(vr.execs().len(), 1);
        let e = &vr.execs()[0];
        assert!(e.is_virtual);
        assert_eq!(e.id, StepId(6)); // fresh, after max step id 5
        assert_eq!(e.members.len(), 5);
        // Only the initial input and the final output are visible.
        assert_eq!(vr.visible_data(), vec![DataId(1), DataId(6)]);
        assert_eq!(vr.inputs_of(0), vec![DataId(1)]);
        assert_eq!(vr.outputs_of(0), vec![DataId(6)]);
    }

    #[test]
    fn loop_leaving_composite_splits_executions() {
        // Composite {A, B}: the loop goes B -> C -> B, leaving through C, so
        // B's two steps do NOT merge: groups {S1,S2}, {S4}.
        let s = spec();
        let r = run(&s);
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("AB", vec![a, b]),
                CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        let vr = ViewRun::new(&r, &v);
        assert_eq!(vr.execs().len(), 4);
        let e0 = vr.exec_of_step(StepId(1)).unwrap();
        assert_eq!(e0.members, vec![StepId(1), StepId(2)]);
        assert!(e0.is_virtual);
        assert_eq!(e0.id, StepId(6));
        let e1 = vr.exec_of_step(StepId(4)).unwrap();
        assert_eq!(e1.members, vec![StepId(4)]);
        // Single-step group of a multi-module composite is still virtual.
        assert!(e1.is_virtual);
        assert_eq!(e1.id, StepId(7));
        // C's steps keep their original ids (singleton composite).
        let e2 = vr.exec_of_step(StepId(3)).unwrap();
        assert_eq!(e2.id, StepId(3));
        assert!(!e2.is_virtual);
        // d2 (A->B inside the composite) is hidden.
        assert!(!vr.is_visible(DataId(2)));
        assert!(vr.is_visible(DataId(3)));
    }

    #[test]
    fn loop_inside_composite_merges_executions() {
        // Composite {B, C}: the whole loop is internal, one execution.
        let s = spec();
        let r = run(&s);
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("A", vec![a]),
                CompositeModule::new("BC", vec![b, c]),
            ],
        )
        .unwrap();
        let vr = ViewRun::new(&r, &v);
        assert_eq!(vr.execs().len(), 2);
        let e = vr.exec_of_step(StepId(2)).unwrap();
        assert_eq!(e.members, vec![StepId(2), StepId(3), StepId(4), StepId(5)]);
        assert_eq!(vr.inputs_of(1), vec![DataId(2)]);
        assert_eq!(vr.outputs_of(1), vec![DataId(6)]);
        // The looping (d3, d4, d5) is invisible.
        assert_eq!(vr.visible_data(), vec![DataId(1), DataId(2), DataId(6)]);
    }

    #[test]
    fn parallel_executions_stay_separate() {
        // spec: input -> A -> {B, B'} -> C -> output where two B-steps run in
        // parallel with no edge between them: they form two executions.
        let mut sb = SpecBuilder::new("par");
        sb.analysis("A");
        sb.analysis("B");
        sb.analysis("C");
        sb.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .to_output("C");
        let s = sb.build().unwrap();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        let s3 = rb.step(b);
        let s4 = rb.step(c);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s1, s3, [3])
            .data_edge(s2, s4, [4])
            .data_edge(s3, s4, [5])
            .output_edge(s4, [6]);
        let r = rb.build().unwrap();
        let v = UserView::admin(&s);
        let vr = ViewRun::new(&r, &v);
        let eb1 = vr.exec_of_step(s2).unwrap();
        let eb2 = vr.exec_of_step(s3).unwrap();
        assert_ne!(eb1.id, eb2.id);
        assert_eq!(vr.execs().len(), 4);
    }

    #[test]
    fn exec_lookup_apis() {
        let s = spec();
        let r = run(&s);
        let v = UserView::black_box(&s);
        let vr = ViewRun::new(&r, &v);
        assert!(vr.exec_by_id(StepId(6)).is_some());
        assert!(vr.exec_by_id(StepId(1)).is_none());
        assert_eq!(vr.producer_node(DataId(1)), Some(vr.input()));
        let e = vr.exec_by_id(StepId(6)).unwrap();
        assert_eq!(vr.producer_node(DataId(6)), Some(vr.node_of_exec(0)));
        assert_eq!(e.composite, CompositeId(0));
        assert!(vr.exec_at(vr.node_of_exec(0)).is_some());
        assert!(vr.exec_at(vr.input()).is_none());
    }

    #[test]
    fn dot_rendering_shows_virtual_ids() {
        let s = spec();
        let r = run(&s);
        let v = UserView::black_box(&s);
        let vr = ViewRun::new(&r, &v);
        let dot = vr.to_dot(&s, &v);
        assert!(dot.contains("S6:s-blackbox"));
        assert!(dot.contains("style=dotted"));
    }
}
