//! Induced specifications (Section II): the higher-level workflow `U(G_w)`
//! that a user view defines.
//!
//! `U(G_w)` has a node for each composite module plus input and output, and
//! an edge `M_i -> M_j` whenever the original specification has an edge
//! between a module of `M_i` and a module of `M_j` (similarly for edges
//! touching input/output). Edges internal to a composite vanish.

use crate::ids::CompositeId;
use crate::spec::{ModuleKind, SpecBuilder, WorkflowSpec};
use crate::view::UserView;
use zoom_graph::{Digraph, NodeId};

/// The induced specification together with the mapping between composites
/// and induced-graph nodes.
#[derive(Clone, Debug)]
pub struct InducedSpec {
    /// The induced workflow `U(G_w)`, itself a valid specification.
    pub spec: WorkflowSpec,
    /// For each composite id, its node in `spec`.
    pub node_of_composite: Vec<NodeId>,
}

impl InducedSpec {
    /// The induced-graph node of composite `c`.
    pub fn node(&self, c: CompositeId) -> NodeId {
        self.node_of_composite[c.index()]
    }

    /// The composite of an induced-graph module node, if it is one.
    pub fn composite(&self, n: NodeId) -> Option<CompositeId> {
        self.node_of_composite
            .iter()
            .position(|&x| x == n)
            .map(|i| CompositeId(i as u32))
    }
}

/// Computes the induced specification `U(G_w)` for `view` over `spec`.
///
/// A composite is classified [`ModuleKind::Analysis`] if any member is; a
/// composite of pure formatting modules stays `Formatting`.
///
/// # Panics
/// Panics if `view` is not a view of `spec` (mismatched partitions); views
/// constructed through [`UserView::new`] against the same spec are always
/// safe.
pub fn induced_spec(spec: &WorkflowSpec, view: &UserView) -> InducedSpec {
    let mut b = SpecBuilder::new(format!("{}@{}", spec.name(), view.name()));
    let mut node_of_composite = Vec::with_capacity(view.size());
    for c in view.composite_ids() {
        let kind = if view
            .members(c)
            .iter()
            .any(|&m| spec.kind(m) == ModuleKind::Analysis)
        {
            ModuleKind::Analysis
        } else {
            ModuleKind::Formatting
        };
        node_of_composite.push(b.module(view.composite_name(c).to_string(), kind));
    }
    let map = |n: NodeId| -> NodeId {
        if n == spec.input() {
            NodeId::from_index(0) // builder's input
        } else if n == spec.output() {
            NodeId::from_index(1) // builder's output
        } else {
            node_of_composite[view.composite_of(n).index()]
        }
    };
    for (_, s, t, _) in spec.graph().edges() {
        let (is_, it) = (map(s), map(t));
        if is_ != it {
            b.connect(is_, it);
        }
    }
    // Edges internal to a composite induce nothing; but a composite whose
    // members contain a cycle among themselves (including a member
    // self-loop) carries a self-loop in the induced specification. This
    // keeps UAdmin's induced spec isomorphic to the original and preserves
    // the paper's lemma that views introduce no loops beyond those in the
    // original specification (Mary's M11 = {M3, M4} gets no self-loop even
    // though it has the internal edge M3 -> M4, because the M3/M5 cycle
    // leaves the composite).
    for c in view.composite_ids() {
        let members = view.members(c);
        if has_internal_cycle(spec, members) {
            let n = node_of_composite[c.index()];
            b.connect(n, n);
        }
    }
    let spec = b
        .build()
        .expect("induced graph of a valid spec and partition is a valid spec");
    InducedSpec {
        spec,
        node_of_composite,
    }
}

/// Whether the subgraph of `spec` induced by `members` contains a directed
/// cycle (a member self-loop counts).
fn has_internal_cycle(spec: &WorkflowSpec, members: &[NodeId]) -> bool {
    let mut sub: Digraph<(), ()> = Digraph::with_capacity(members.len(), members.len());
    let mut index_of = std::collections::HashMap::with_capacity(members.len());
    for &m in members {
        index_of.insert(m, sub.add_node(()));
    }
    for &m in members {
        let &sm = index_of.get(&m).expect("member indexed");
        for succ in spec.graph().successors(m) {
            if let Some(&ss) = index_of.get(&succ) {
                sub.add_edge(sm, ss, ());
            }
        }
    }
    !zoom_graph::algo::topo::is_acyclic(&sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::CompositeModule;

    /// input -> A -> B -> C -> output, plus A -> C
    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.formatting("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("A", "C")
            .to_output("C");
        b.build().unwrap()
    }

    #[test]
    fn induced_by_admin_is_isomorphic() {
        let s = spec();
        let v = UserView::admin(&s);
        let ind = induced_spec(&s, &v);
        assert_eq!(ind.spec.module_count(), s.module_count());
        assert_eq!(ind.spec.graph().edge_count(), s.graph().edge_count());
    }

    #[test]
    fn induced_by_blackbox_collapses() {
        let s = spec();
        let v = UserView::black_box(&s);
        let ind = induced_spec(&s, &v);
        assert_eq!(ind.spec.module_count(), 1);
        // input -> box -> output only.
        assert_eq!(ind.spec.graph().edge_count(), 2);
    }

    #[test]
    fn grouping_merges_and_dedups_edges() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("AB", vec![a, b]),
                CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        let ind = induced_spec(&s, &v);
        assert_eq!(ind.spec.module_count(), 2);
        // Edges: input->AB, AB->C (deduped from B->C and A->C), C->output.
        assert_eq!(ind.spec.graph().edge_count(), 3);
        let nab = ind.node(CompositeId(0));
        let nc = ind.node(CompositeId(1));
        assert!(ind.spec.graph().has_edge(nab, nc));
        assert_eq!(ind.composite(nab), Some(CompositeId(0)));
        // Composite kind: AB contains analysis A.
        assert_eq!(ind.spec.kind(nab), ModuleKind::Analysis);
    }

    #[test]
    fn internal_edges_vanish() {
        let s = spec();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new("v", &s, vec![CompositeModule::new("ABC", vec![a, b, c])]).unwrap();
        let ind = induced_spec(&s, &v);
        assert_eq!(ind.spec.graph().edge_count(), 2);
    }

    #[test]
    fn cross_composite_loop_survives() {
        // A <-> B with A and B in different composites: the induced spec
        // keeps the loop (the paper: views introduce no loops *other than*
        // those present in the original).
        let mut bld = SpecBuilder::new("loopy");
        bld.analysis("A");
        bld.analysis("B");
        bld.from_input("A")
            .edge("A", "B")
            .edge("B", "A")
            .to_output("A");
        let s = bld.build().unwrap();
        let v = UserView::admin(&s);
        let ind = induced_spec(&s, &v);
        let na = ind.node(CompositeId(0));
        let nb = ind.node(CompositeId(1));
        assert!(ind.spec.graph().has_edge(na, nb));
        assert!(ind.spec.graph().has_edge(nb, na));
    }

    #[test]
    fn internal_cycle_becomes_self_loop_linear_edge_does_not() {
        // A <-> B cycle plus C: composite {A, B} gets a self-loop; a
        // composite {B, C} with only the linear internal edge B -> C does
        // not (the cycle leaves it through A).
        let mut bld = SpecBuilder::new("cyc");
        bld.analysis("A");
        bld.analysis("B");
        bld.analysis("C");
        bld.from_input("A")
            .edge("A", "B")
            .edge("B", "A")
            .edge("B", "C")
            .to_output("C");
        let s = bld.build().unwrap();
        let (a, b, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let v = UserView::new(
            "v",
            &s,
            vec![
                CompositeModule::new("AB", vec![a, b]),
                CompositeModule::new("C", vec![c]),
            ],
        )
        .unwrap();
        let ind = induced_spec(&s, &v);
        let nab = ind.node(CompositeId(0));
        assert!(ind.spec.graph().has_edge(nab, nab));

        let v2 = UserView::new(
            "v2",
            &s,
            vec![
                CompositeModule::new("A", vec![a]),
                CompositeModule::new("BC", vec![b, c]),
            ],
        )
        .unwrap();
        let ind2 = induced_spec(&s, &v2);
        let nbc = ind2.node(CompositeId(1));
        assert!(!ind2.spec.graph().has_edge(nbc, nbc));
        // But the A <-> BC loop is visible as a 2-cycle.
        let na = ind2.node(CompositeId(0));
        assert!(ind2.spec.graph().has_edge(na, nbc));
        assert!(ind2.spec.graph().has_edge(nbc, na));
    }

    #[test]
    fn self_loop_preserved_on_composite() {
        let mut bld = SpecBuilder::new("reflexive");
        bld.analysis("A");
        bld.from_input("A").edge("A", "A").to_output("A");
        let s = bld.build().unwrap();
        let v = UserView::admin(&s);
        let ind = induced_spec(&s, &v);
        let na = ind.node(CompositeId(0));
        assert!(ind.spec.graph().has_edge(na, na));
    }
}
