#![warn(missing_docs)]

//! # zoom-model
//!
//! The workflow model of *"Querying and Managing Provenance through User
//! Views in Scientific Workflows"* (ICDE 2008), Section II:
//!
//! * [`spec`] — workflow specifications `G_w(N, E)` with distinguished
//!   input/output nodes (possibly cyclic);
//! * [`run`] — workflow runs: DAGs of steps with data-labeled edges, loops
//!   unrolled, unique producers per data object;
//! * [`log`] — event logs (the system-agnostic interface ZOOM consumes) and
//!   run ⇄ log conversion;
//! * [`view`] — user views: partitions of the modules into composite
//!   modules (UAdmin / UBlackBox / custom);
//! * [`induced`] — the induced higher-level specification `U(G_w)`;
//! * [`composite`] — composite executions: the run projected through a view,
//!   hiding steps and data internal to composite executions;
//! * [`ids`], [`error`] — shared identifiers and error types.

pub mod composite;
pub mod error;
pub mod ids;
pub mod induced;
pub mod log;
pub mod run;
pub mod spec;
pub mod view;

pub use composite::{CompositeExecution, ViewRun, ViewRunNode};
pub use error::{ModelError, Result};
pub use ids::{CompositeId, DataId, StepId, Timestamp};
pub use induced::{induced_spec, InducedSpec};
pub use log::{EventLog, LogEvent};
pub use run::{Producer, RunBuilder, RunNode, StepAppend, UserInputMeta, WorkflowRun};
pub use spec::{ModuleKind, SpecBuilder, SpecNode, WorkflowSpec};
pub use view::{CompositeModule, UserView};
