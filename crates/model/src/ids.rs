//! Identifier newtypes shared across the workflow model.
//!
//! The paper writes steps as `S1, S2, …` and data objects as `d1, d2, …`;
//! these newtypes reproduce that notation in their `Display` impls.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a step (one execution of a module) within a workflow run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepId(pub u32);

/// Identifier of a data object. Data is never overwritten or updated in
/// place (Section II), so an id denotes one immutable object produced by at
/// most one step.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataId(pub u64);

/// Index of a composite module within a [`crate::view::UserView`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompositeId(pub u32);

impl StepId {
    /// Dense index of this step id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CompositeId {
    /// Dense index of this composite id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Debug for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Debug for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for CompositeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Debug for CompositeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A logical timestamp for log events. The paper's logs record wall-clock
/// times; for reproducibility our simulated executions use a monotonically
/// increasing logical clock.
#[derive(
    Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The next instant.
    pub fn tick(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(StepId(13).to_string(), "S13");
        assert_eq!(DataId(447).to_string(), "d447");
        assert_eq!(CompositeId(2).to_string(), "C2");
        assert_eq!(Timestamp(5).to_string(), "t5");
    }

    #[test]
    fn ordering_and_tick() {
        assert!(StepId(1) < StepId(2));
        assert!(DataId(100) < DataId(101));
        assert_eq!(Timestamp(0).tick(), Timestamp(1));
    }
}
