//! Property-based round-trip tests for the hand-written binary codec, on
//! arbitrary nested value shapes and on real model types from generated
//! workloads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zoom_warehouse::codec::{from_bytes, to_bytes};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Tree {
    Leaf,
    Value(i64),
    Pair(Box<Tree>, Box<Tree>),
    Tagged { name: String, children: Vec<Tree> },
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        Just(Tree::Leaf),
        any::<i64>().prop_map(Tree::Value),
        ".{0,12}".prop_map(|name| Tree::Tagged {
            name,
            children: vec![]
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
            (".{0,8}", proptest::collection::vec(inner, 0..4))
                .prop_map(|(name, children)| Tree::Tagged { name, children }),
        ]
    })
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Record {
    flag: bool,
    counts: Vec<u32>,
    label: String,
    table: BTreeMap<u16, String>,
    opt: Option<(i8, f64)>,
    tree: Tree,
    bytes_like: Vec<u8>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_records_roundtrip(
        flag in any::<bool>(),
        counts in proptest::collection::vec(any::<u32>(), 0..20),
        label in ".{0,40}",
        table in proptest::collection::btree_map(any::<u16>(), ".{0,10}", 0..8),
        opt in proptest::option::of((any::<i8>(), prop::num::f64::NORMAL)),
        tree in arb_tree(),
        bytes_like in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let rec = Record { flag, counts, label, table, opt, tree, bytes_like };
        let bytes = to_bytes(&rec).expect("encodes");
        let back: Record = from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(rec, back);
    }

    #[test]
    fn primitive_extremes_roundtrip(
        a in any::<u64>(),
        b in any::<i64>(),
        c in any::<f32>().prop_filter("NaN compares unequal", |x| !x.is_nan()),
        d in any::<char>(),
    ) {
        let v = (a, b, c, d, u64::MAX, i64::MIN, f64::MIN_POSITIVE);
        let bytes = to_bytes(&v).expect("encodes");
        let back: (u64, i64, f32, char, u64, i64, f64) =
            from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(v, back);
    }

    #[test]
    fn corrupting_one_byte_never_panics(
        seed in any::<u64>(),
        victim in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let rec = Record {
            flag: true,
            counts: vec![1, 2, 3],
            label: "corruption target".into(),
            table: BTreeMap::new(),
            opt: Some((1, 2.0)),
            tree: Tree::Pair(Box::new(Tree::Leaf), Box::new(Tree::Value(seed as i64))),
            bytes_like: vec![0; 16],
        };
        let mut bytes = to_bytes(&rec).expect("encodes").to_vec();
        let idx = victim % bytes.len();
        bytes[idx] ^= flip;
        // Must either fail cleanly or produce *some* Record; never panic.
        let _ = from_bytes::<Record>(&bytes);
    }

    #[test]
    fn generated_model_types_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = zoom_gen::generate_random_spec("codec-prop", 8, &mut rng);
        let cfg = zoom_gen::RunGenConfig {
            user_input: (1, 10),
            data_per_step: (1, 3),
            loop_iterations: (1, 4),
            max_nodes: 120,
            max_edges: 120,
        };
        let run = zoom_gen::generate_run(&spec, &cfg, &mut rng).expect("valid");
        let log = zoom_model::EventLog::from_run(&run, &spec);

        let bytes = to_bytes(&spec).expect("encodes");
        let spec2: zoom_model::WorkflowSpec = from_bytes(&bytes).expect("decodes");
        prop_assert!(spec2.validate().is_ok());
        prop_assert_eq!(spec.name(), spec2.name());

        let bytes = to_bytes(&run).expect("encodes");
        let run2: zoom_model::WorkflowRun = from_bytes(&bytes).expect("decodes");
        prop_assert!(run2.validate(&spec).is_ok());
        prop_assert_eq!(run.all_data(), run2.all_data());

        let bytes = to_bytes(&log).expect("encodes");
        let log2: zoom_model::EventLog = from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(log, log2);
    }
}
