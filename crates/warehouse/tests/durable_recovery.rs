//! Crash-recovery fault injection for the durable store.
//!
//! Two attack surfaces:
//!
//! 1. **Sync-point kills** — a counting run tallies every write-side
//!    filesystem operation a full workload performs; the sweep then re-runs
//!    the workload with the storage failing (stickily, with an optional
//!    torn-byte prefix) at each operation in turn. After every kill the
//!    directory must reopen cleanly and hold exactly the mutations that
//!    were acknowledged before the fault.
//! 2. **Torn tails** — the journal file is truncated at every byte offset;
//!    `open` must never panic and must recover a prefix of the committed
//!    mutations (whole records up to the cut).

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use zoom_model::{RunBuilder, SpecBuilder, UserView, WorkflowRun, WorkflowSpec};
use zoom_warehouse::io::FaultFs;
use zoom_warehouse::{durable, DurableOptions, DurableWarehouse, Warehouse};

fn tempdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zoom-recovery-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn spec(name: &str, modules: usize) -> WorkflowSpec {
    let mut b = SpecBuilder::new(name);
    let labels: Vec<String> = (0..modules).map(|i| format!("M{i}")).collect();
    for l in &labels {
        b.analysis(l);
    }
    b.from_input(&labels[0]);
    for w in labels.windows(2) {
        b.edge(&w[0], &w[1]);
    }
    b.to_output(labels.last().unwrap());
    b.build().unwrap()
}

/// A linear run through `s`: d1 → M0 → d2 → M1 → … → d(n+1).
fn run(s: &WorkflowSpec) -> WorkflowRun {
    let mut rb = RunBuilder::new(s);
    let steps: Vec<_> = (0..s.module_count())
        .map(|i| rb.step(s.module(&format!("M{i}")).unwrap()))
        .collect();
    rb.input_edge(steps[0], [1]);
    for (i, w) in steps.windows(2).enumerate() {
        rb.data_edge(w[0], w[1], [i as u64 + 2]);
    }
    rb.output_edge(*steps.last().unwrap(), [s.module_count() as u64 + 1]);
    rb.build().unwrap()
}

/// One workload mutation, replayable against a reference warehouse.
/// Views and runs name their spec so the driver can resume mid-workload
/// against a store that already holds earlier events.
#[derive(Clone)]
enum Event {
    Spec(WorkflowSpec),
    View(&'static str, UserView),
    Run(&'static str, WorkflowRun),
}

/// The fixed workload: two workflows, views, three runs.
fn workload() -> Vec<Event> {
    let s1 = spec("wf-one", 3);
    let s2 = spec("wf-two", 2);
    vec![
        Event::Spec(s1.clone()),
        Event::View("wf-one", UserView::admin(&s1)),
        Event::Run("wf-one", run(&s1)),
        Event::Run("wf-one", run(&s1)),
        Event::Spec(s2.clone()),
        Event::View("wf-two", UserView::admin(&s2)),
        Event::Run("wf-two", run(&s2)),
    ]
}

/// Applies the workload to a faulted store, returning how many events were
/// acknowledged (every mutation after the first failure also fails, so the
/// acknowledged set is a prefix).
fn drive(dw: &mut DurableWarehouse, events: &[Event]) -> usize {
    let mut committed = 0;
    for ev in events {
        let ok = match ev {
            Event::Spec(s) => dw.register_spec(s.clone()).is_ok(),
            Event::View(name, v) => dw
                .warehouse()
                .spec_by_name(name)
                .is_some_and(|sid| dw.register_view(sid, v.clone()).is_ok()),
            Event::Run(name, r) => dw
                .warehouse()
                .spec_by_name(name)
                .is_some_and(|sid| dw.load_run(sid, r.clone()).is_ok()),
        };
        if !ok {
            break;
        }
        committed += 1;
    }
    committed
}

/// The expected state after the first `committed` events: an in-memory
/// warehouse with the same mutation sequence (ids match because both start
/// empty).
fn reference(events: &[Event], committed: usize) -> Warehouse {
    let mut w = Warehouse::new();
    for ev in &events[..committed] {
        match ev {
            Event::Spec(s) => {
                w.register_spec(s.clone()).unwrap();
            }
            Event::View(name, v) => {
                let sid = w.spec_by_name(name).unwrap();
                w.register_view(sid, v.clone()).unwrap();
            }
            Event::Run(name, r) => {
                let sid = w.spec_by_name(name).unwrap();
                w.load_run(sid, r.clone()).unwrap();
            }
        }
    }
    w
}

/// Recovered state must equal the reference exactly: same table sizes and
/// the same deep-provenance answers for every run at its admin view.
fn assert_state_matches(recovered: &Warehouse, expected: &Warehouse) {
    let (rs, es) = (recovered.stats(), expected.stats());
    assert_eq!(
        (rs.specs, rs.views, rs.runs, rs.steps, rs.data_objects),
        (es.specs, es.views, es.runs, es.steps, es.data_objects),
        "recovered sizes diverge from committed state"
    );
    for name in ["wf-one", "wf-two"] {
        let Some(sid) = expected.spec_by_name(name) else {
            assert!(recovered.spec_by_name(name).is_none());
            continue;
        };
        assert_eq!(recovered.spec_by_name(name), Some(sid));
        let Some(vid) = expected.find_view(sid, "UAdmin") else {
            continue;
        };
        assert_eq!(recovered.find_view(sid, "UAdmin"), Some(vid));
        let runs = expected.runs_of_spec(sid).to_vec();
        assert_eq!(recovered.runs_of_spec(sid), &runs[..]);
        for rid in runs {
            let out = expected.run(rid).unwrap().final_outputs()[0];
            let want = expected.deep_provenance(rid, vid, out).unwrap();
            let got = recovered.deep_provenance(rid, vid, out).unwrap();
            assert_eq!(got, want, "{name}/{rid} provenance diverges");
        }
    }
}

/// Runs the full kill sweep for one option set: count ops fault-free, then
/// kill at every op index with every torn-byte width.
fn sweep(tag: &str, options: DurableOptions, torn_widths: &[usize]) {
    let events = workload();

    // Fault-free counting run: how many write-side ops does the full
    // workload cost, and what does full success look like?
    let dir = tempdir(&format!("{tag}-count"));
    let counting = Arc::new(FaultFs::counting());
    let mut dw = DurableWarehouse::open_with(counting.clone(), &dir, options).unwrap();
    assert_eq!(drive(&mut dw, &events), events.len());
    let total_ops = counting.ops();
    drop(dw);
    assert_state_matches(
        DurableWarehouse::open(&dir).unwrap().warehouse(),
        &reference(&events, events.len()),
    );
    std::fs::remove_dir_all(&dir).ok();

    assert!(total_ops > 0);
    for k in 0..total_ops {
        for &torn in torn_widths {
            let dir = tempdir(&format!("{tag}-k{k}-t{torn}"));
            let faulty = Arc::new(FaultFs::fail_after(k, torn));
            let committed = match DurableWarehouse::open_with(faulty.clone(), &dir, options) {
                Ok(mut dw) => drive(&mut dw, &events),
                // The store died while initializing: nothing was ever
                // acknowledged.
                Err(_) => 0,
            };
            assert!(faulty.tripped(), "k={k} torn={torn}: fault never fired");
            // Recovery on healthy storage must succeed and must hold
            // exactly the acknowledged prefix.
            let recovered = DurableWarehouse::open(&dir)
                .unwrap_or_else(|e| panic!("k={k} torn={torn}: recovery failed: {e}"));
            assert_state_matches(recovered.warehouse(), &reference(&events, committed));
            // And the directory is fully healthy afterwards: fsck is clean
            // and the next workload run goes through untouched.
            let report = durable::fsck(&dir)
                .unwrap_or_else(|e| panic!("k={k} torn={torn}: fsck failed: {e}"));
            assert_eq!(report.torn_bytes, 0, "k={k} torn={torn}");
            assert!(report.strays.is_empty(), "k={k} torn={torn}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn kill_at_every_sync_point() {
    sweep("plain", DurableOptions::default(), &[0, 1, 3]);
}

#[test]
fn kill_at_every_sync_point_while_compacting() {
    // A tiny threshold makes every mutation cross a compaction, so the
    // sweep also kills inside snapshot writes, journal rotation, and the
    // manifest swing.
    let options = DurableOptions {
        compact_threshold_bytes: 32,
        auto_compact: true,
        ..DurableOptions::default()
    };
    sweep("compact", options, &[0, 3]);
}

/// Truncating the journal at every byte offset: `open` must never fail and
/// must recover exactly the records wholly before the cut.
fn check_every_truncation(dir: &std::path::Path, events: &[Event], committed_full: usize) {
    let manifest = std::fs::read(dir.join("MANIFEST")).unwrap();
    assert!(!manifest.is_empty());
    // Find the live journal through fsck rather than trusting a name.
    let report = durable::fsck(dir).unwrap();
    let wal_path = dir.join(&report.journal);
    let full = std::fs::read(&wal_path).unwrap();
    let magic = 8usize;

    // Frame boundaries: offsets (from file start) at which a record ends.
    let mut ends = vec![magic];
    let mut off = magic;
    while off + 8 <= full.len() {
        let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
        if full.len() < off + 8 + len {
            break;
        }
        off += 8 + len;
        ends.push(off);
    }
    assert_eq!(off, full.len(), "workload journal has no torn tail");
    let records_in_tail = ends.len() - 1;
    // Events not in the tail are protected by the snapshot generation.
    let snapshot_events = committed_full - records_in_tail;

    for cut in magic..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let recovered =
            DurableWarehouse::open(dir).unwrap_or_else(|e| panic!("cut={cut}: open failed: {e}"));
        let whole = ends.iter().filter(|&&e| e <= cut).count() - 1;
        assert_state_matches(
            recovered.warehouse(),
            &reference(events, snapshot_events + whole),
        );
        drop(recovered);
        // open() truncated the torn remainder; restore for the next cut.
        std::fs::write(&wal_path, &full).unwrap();
    }
}

#[test]
fn truncation_at_every_byte_offset() {
    let events = workload();
    let dir = tempdir("truncate");
    let options = DurableOptions {
        auto_compact: false, // keep every record in the tail
        ..DurableOptions::default()
    };
    let mut dw = DurableWarehouse::open_opts(&dir, options).unwrap();
    assert_eq!(drive(&mut dw, &events), events.len());
    drop(dw);
    check_every_truncation(&dir, &events, events.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_behind_a_snapshot() {
    // Checkpoint mid-workload: early events live in the snapshot, late ones
    // in the tail. Cutting the tail must never disturb the snapshot state.
    let events = workload();
    let dir = tempdir("truncate-snap");
    let options = DurableOptions {
        auto_compact: false,
        ..DurableOptions::default()
    };
    let mut dw = DurableWarehouse::open_opts(&dir, options).unwrap();
    assert_eq!(drive(&mut dw, &events[..4]), 4);
    dw.checkpoint().unwrap();
    assert_eq!(drive(&mut dw, &events[4..]), events.len() - 4);
    drop(dw);
    check_every_truncation(&dir, &events, events.len());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workload prefixes under random tail truncation: the recovered
    /// store is always a valid prefix of what was committed.
    #[test]
    fn random_truncation_recovers_a_prefix(
        committed in 1usize..8,
        cut_back in 0usize..200,
    ) {
        let events = workload();
        let committed = committed.min(events.len());
        let dir = tempdir(&format!("prop-{committed}-{cut_back}"));
        let options = DurableOptions { auto_compact: false, ..DurableOptions::default() };
        let mut dw = DurableWarehouse::open_opts(&dir, options).unwrap();
        prop_assert_eq!(drive(&mut dw, &events[..committed]), committed);
        drop(dw);

        let report = durable::fsck(&dir).unwrap();
        let wal_path = dir.join(&report.journal);
        let full = std::fs::read(&wal_path).unwrap();
        let cut = full.len().saturating_sub(cut_back).max(8);
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let recovered = DurableWarehouse::open(&dir).unwrap();
        let st = recovered.warehouse().stats();
        // A prefix: never more state than committed, and whatever state
        // there is matches the reference replay of that many events.
        let got_events = st.specs + st.views + st.runs;
        prop_assert!(got_events <= committed);
        assert_state_matches(recovered.warehouse(), &reference(&events, got_events));
        std::fs::remove_dir_all(&dir).ok();
    }
}
