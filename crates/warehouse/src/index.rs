//! Per-run base-closure provenance index.
//!
//! The paper's winning strategy (Section V-B) computes provenance "at the
//! finest granularity" once per run and then *projects* it per user view —
//! that is what made view switches ≈13 ms. The [`ViewRunCache`] covers the
//! projection half (materialized composite executions); this module covers
//! the closure half: a view-independent reachability index over the raw run
//! DAG, the embedded analog of the prototype's base-provenance temp table.
//!
//! [`ProvenanceIndex`] stores, per run-graph node, two [`BitSet`] rows —
//! the backward closure (the node and everything its data transitively
//! derived from) and the forward closure (the node and everything derived
//! from it). Rows are built in one topological pass each, unioning
//! predecessor (resp. successor) rows: `O(V·E/64)` words of work, instead
//! of one `O(V+E)` BFS *per query*. Deep provenance at any view level then
//! reduces to iterating the members of one precomputed row and projecting
//! them through the view; the forward query reduces to unioning a handful
//! of rows. The index never looks at views, so one copy per run serves
//! every registered view, exactly like the paper's shared temp table.
//!
//! [`ProvenanceIndexCache`] is the run-keyed cache the [`crate::Warehouse`]
//! holds next to its [`ViewRunCache`]; both are invalidated together.
//!
//! [`ViewRunCache`]: crate::cache::ViewRunCache

use crate::fxhash::FxHashMap;
use crate::resilience::{Deadline, Interrupt};
use crate::schema::RunId;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use zoom_graph::algo::topo::topological_sort;
use zoom_graph::{BitSet, NodeId};
use zoom_model::{ModelError, WorkflowRun};

/// Why a deadline-aware index build failed: either the run is structurally
/// bad (cyclic) or the build was interrupted by its [`Deadline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexBuildError {
    /// The run graph is cyclic ([`ModelError::RunHasCycle`]).
    Cycle,
    /// The deadline passed or the build was cancelled mid-pass.
    Interrupted(Interrupt),
}

impl fmt::Display for IndexBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexBuildError::Cycle => write!(f, "run graph has a cycle"),
            IndexBuildError::Interrupted(i) => i.fmt(f),
        }
    }
}

impl From<Interrupt> for IndexBuildError {
    fn from(i: Interrupt) -> Self {
        IndexBuildError::Interrupted(i)
    }
}

impl std::error::Error for IndexBuildError {}

/// Reachability rows over one run's raw (UAdmin-level) graph.
///
/// Both directions include the node itself, so a row *is* the visited set
/// the recursive `CONNECT BY` query would produce starting from that node.
#[derive(Clone, Debug)]
pub struct ProvenanceIndex {
    ancestors: Vec<BitSet>,
    descendants: Vec<BitSet>,
}

impl ProvenanceIndex {
    /// Builds both closure directions for `run` in two topological passes.
    ///
    /// Returns [`ModelError::RunHasCycle`] if the run graph is cyclic.
    /// Validated runs never are, but a hand-loaded or corrupted durable
    /// log can hand us one, and building an index must not crash `open()`.
    pub fn build(run: &WorkflowRun) -> Result<Self, ModelError> {
        Self::build_deadline(run, &mut Deadline::unlimited()).map_err(|e| match e {
            IndexBuildError::Cycle => ModelError::RunHasCycle,
            IndexBuildError::Interrupted(_) => unreachable!("unlimited deadline never interrupts"),
        })
    }

    /// [`ProvenanceIndex::build`] under an execution budget: both
    /// topological passes poll `deadline` per node, so an adversarially
    /// large run cannot pin a core unbounded while its index materializes.
    pub fn build_deadline(
        run: &WorkflowRun,
        deadline: &mut Deadline,
    ) -> Result<Self, IndexBuildError> {
        let g = run.graph();
        let n = g.node_count();
        let order = topological_sort(g).ok_or(IndexBuildError::Cycle)?;

        // Placeholder rows are never unioned: topological order guarantees
        // every predecessor's real row exists before its dependents read it.
        let mut ancestors = vec![BitSet::new(0); n];
        for &node in &order {
            deadline.tick()?;
            let mut row = BitSet::new(n);
            row.insert(node.index());
            for p in g.predecessors(node) {
                row.union_with(&ancestors[p.index()]);
            }
            ancestors[node.index()] = row;
        }

        let mut descendants = vec![BitSet::new(0); n];
        for &node in order.iter().rev() {
            deadline.tick()?;
            let mut row = BitSet::new(n);
            row.insert(node.index());
            for s in g.successors(node) {
                row.union_with(&descendants[s.index()]);
            }
            descendants[node.index()] = row;
        }

        Ok(ProvenanceIndex {
            ancestors,
            descendants,
        })
    }

    /// The backward closure of `n`: itself plus every node it transitively
    /// depends on.
    pub fn ancestors(&self, n: NodeId) -> &BitSet {
        &self.ancestors[n.index()]
    }

    /// The forward closure of `n`: itself plus every node derived from it.
    pub fn descendants(&self, n: NodeId) -> &BitSet {
        &self.descendants[n.index()]
    }

    /// Number of indexed run-graph nodes.
    pub fn node_count(&self) -> usize {
        self.ancestors.len()
    }

    /// Approximate heap footprint of the rows, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let n = self.ancestors.len();
        2 * n * n.div_ceil(64) * std::mem::size_of::<u64>()
    }
}

/// The bitset index's run-keyed cache (see [`RunKeyedCache`]).
pub type ProvenanceIndexCache = RunKeyedCache<ProvenanceIndex>;

/// A concurrent `run → T` cache with lock-free counters, shared by the
/// bitset [`ProvenanceIndex`] and the interval
/// [`LabelIndex`](crate::labels::LabelIndex).
///
/// Obeys the same counter-accuracy guarantee as
/// [`crate::cache::ViewRunCache`]: `hits + misses` equals the number of
/// successful `get_or_build` calls; a build that loses the insert race
/// counts as a hit plus one `race_lost_builds`. A build that *fails*
/// counts as neither (the query itself surfaces the error).
#[derive(Debug)]
pub struct RunKeyedCache<T> {
    map: RwLock<FxHashMap<RunId, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    race_lost_builds: AtomicU64,
    build_nanos: AtomicU64,
}

// Manual impl: `derive(Default)` would demand `T: Default`, which the
// cached values never need (they are always built through the closure).
impl<T> Default for RunKeyedCache<T> {
    fn default() -> Self {
        RunKeyedCache {
            map: RwLock::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            race_lost_builds: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
        }
    }
}

impl<T> RunKeyedCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `run`, or builds and caches it.
    /// Build failures are propagated and cache nothing.
    pub fn get_or_build<E>(
        &self,
        run: RunId,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if let Some(hit) = self.map.read().get(&run).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Build outside the lock; a racing builder costs duplicate work but
        // never blocks readers for the duration of the closure computation.
        let started = Instant::now();
        let idx = Arc::new(build()?);
        let nanos = started.elapsed().as_nanos() as u64;
        let mut map = self.map.write();
        if let Some(existing) = map.get(&run).cloned() {
            // Lost the insert race: answered from the cache, so a hit —
            // keeping hits + misses == queries.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.race_lost_builds.fetch_add(1, Ordering::Relaxed);
            return Ok(existing);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.build_nanos.fetch_add(nanos, Ordering::Relaxed);
        map.insert(run, idx.clone());
        Ok(idx)
    }

    /// Mutates the cached value for `run` in place, if one is resident —
    /// the streaming hook that lets a label index *extend* instead of
    /// being dropped and rebuilt. Copy-on-write: concurrent readers
    /// holding the old `Arc` keep a consistent pre-update snapshot
    /// (`Arc::make_mut` clones only when the entry is shared). Returns
    /// `Ok(None)` when nothing is cached; on a closure error the entry is
    /// evicted (a half-updated index must never be served) and the error
    /// propagates.
    pub fn update_entry<R, E>(
        &self,
        run: RunId,
        update: impl FnOnce(&mut T) -> Result<R, E>,
    ) -> Result<Option<R>, E>
    where
        T: Clone,
    {
        let mut map = self.map.write();
        let Some(entry) = map.get_mut(&run) else {
            return Ok(None);
        };
        match update(Arc::make_mut(entry)) {
            Ok(r) => Ok(Some(r)),
            Err(e) => {
                map.remove(&run);
                Err(e)
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Folds over every cached value — the metrics layer's hook for
    /// bytes-resident gauges and label-size histograms. Holds the read
    /// lock for the duration, so callbacks must stay cheap.
    pub fn fold_entries<B>(&self, init: B, mut f: impl FnMut(B, &T) -> B) -> B {
        self.map.read().values().fold(init, |acc, v| f(acc, v))
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total nanoseconds spent building indexes (across misses).
    pub fn build_nanos(&self) -> u64 {
        self.build_nanos.load(Ordering::Relaxed)
    }

    /// A full counter snapshot for the metrics layer (this cache is
    /// unbounded — indexes are per-run and invalidated with the run — so
    /// `evictions` is always 0).
    pub fn metrics(&self) -> crate::metrics::CacheMetrics {
        crate::metrics::CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            race_lost_builds: self.race_lost_builds.load(Ordering::Relaxed),
            evictions: 0,
            entries: self.len() as u64,
            build_nanos: self.build_nanos.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached index.
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Drops the index for one run.
    pub fn invalidate_run(&self, run: RunId) {
        self.map.write().remove(&run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder};

    /// input -> A -> B -> C -> output, A also feeds C directly.
    fn diamondish() -> WorkflowRun {
        let mut b = SpecBuilder::new("idx");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("A", "C")
            .to_output("C");
        let s = b.build().unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        let s3 = rb.step(s.module("C").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s2, s3, [3])
            .data_edge(s1, s3, [4])
            .output_edge(s3, [5]);
        rb.build().unwrap()
    }

    #[test]
    fn rows_match_bfs_closures() {
        let run = diamondish();
        let g = run.graph();
        let idx = ProvenanceIndex::build(&run).unwrap();
        assert_eq!(idx.node_count(), g.node_count());
        for n in g.node_ids() {
            let back = zoom_graph::reachable_set(g, n, zoom_graph::Direction::Backward);
            let fwd = zoom_graph::reachable_set(g, n, zoom_graph::Direction::Forward);
            assert_eq!(idx.ancestors(n), &back, "ancestors of {n:?}");
            assert_eq!(idx.descendants(n), &fwd, "descendants of {n:?}");
        }
    }

    #[test]
    fn rows_contain_self() {
        let run = diamondish();
        let idx = ProvenanceIndex::build(&run).unwrap();
        for n in run.graph().node_ids() {
            assert!(idx.ancestors(n).contains(n.index()));
            assert!(idx.descendants(n).contains(n.index()));
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_build_time() {
        let run = diamondish();
        let cache = ProvenanceIndexCache::new();
        for _ in 0..3 {
            let idx = cache
                .get_or_build(RunId(7), || ProvenanceIndex::build(&run))
                .unwrap();
            assert_eq!(idx.node_count(), run.graph().node_count());
        }
        assert_eq!(cache.counters(), (2, 1));
        assert_eq!(cache.len(), 1);
        assert!(cache.build_nanos() > 0);
        cache.invalidate_run(RunId(7));
        assert!(cache.is_empty());
        cache
            .get_or_build(RunId(7), || ProvenanceIndex::build(&run))
            .unwrap();
        assert_eq!(cache.counters(), (2, 2));
        cache.clear();
        assert!(cache.is_empty());
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses, m.race_lost_builds), (2, 2, 0));
        assert_eq!(m.entries, 0);
    }

    /// A failed build caches nothing and counts neither hit nor miss.
    #[test]
    fn failed_build_is_not_cached_or_counted() {
        let cache = ProvenanceIndexCache::new();
        let r: Result<Arc<ProvenanceIndex>, &str> = cache.get_or_build(RunId(1), || Err("cyclic"));
        assert_eq!(r.unwrap_err(), "cyclic");
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), (0, 0));
    }

    /// Satellite 3: a cyclic run graph — which every builder/validator
    /// rejects, but a corrupted snapshot can smuggle past them via the
    /// codec — yields `RunHasCycle` instead of a panic.
    #[test]
    fn cyclic_run_yields_error_not_panic() {
        use serde::Serialize;
        use std::collections::{BTreeMap, HashMap};
        use zoom_graph::Digraph;
        use zoom_model::{DataId, ModelError, RunNode, StepId, UserInputMeta};

        // Mirror of WorkflowRun's serialized (positional) layout.
        #[derive(Serialize)]
        struct RawRun {
            spec_name: String,
            graph: Digraph<RunNode, Vec<DataId>>,
            node_of_step: HashMap<StepId, NodeId>,
            producer: HashMap<DataId, NodeId>,
            user_input_meta: HashMap<DataId, UserInputMeta>,
            params: HashMap<StepId, BTreeMap<String, String>>,
        }

        let mut g: Digraph<RunNode, Vec<DataId>> = Digraph::new();
        let input = g.add_node(RunNode::Input);
        let output = g.add_node(RunNode::Output);
        let a = g.add_node(RunNode::Step {
            id: StepId(1),
            module: NodeId::from_index(2),
        });
        let b = g.add_node(RunNode::Step {
            id: StepId(2),
            module: NodeId::from_index(3),
        });
        g.add_edge(input, a, vec![DataId(1)]);
        g.add_edge(a, b, vec![DataId(2)]);
        g.add_edge(b, a, vec![DataId(3)]); // the cycle
        g.add_edge(b, output, vec![DataId(4)]);
        let raw = RawRun {
            spec_name: "cyclic".into(),
            graph: g,
            node_of_step: HashMap::from([(StepId(1), a), (StepId(2), b)]),
            producer: HashMap::from([
                (DataId(1), input),
                (DataId(2), a),
                (DataId(3), b),
                (DataId(4), b),
            ]),
            user_input_meta: HashMap::new(),
            params: HashMap::new(),
        };
        let bytes = crate::codec::to_bytes(&raw).unwrap();
        let run: WorkflowRun = crate::codec::from_bytes(&bytes).unwrap();

        let err = ProvenanceIndex::build(&run).unwrap_err();
        assert_eq!(err, ModelError::RunHasCycle);
    }
}
