//! An append-only journal for incremental durability.
//!
//! Snapshots ([`crate::persist`]) rewrite the whole warehouse; a laboratory
//! ingesting runs "about twice a week" per workflow wants every
//! registration and load to be durable *as it happens*. The journal
//! appends one length-prefixed, checksummed record per mutation; opening a
//! journal replays the records into a fresh warehouse. A torn final record
//! (crash mid-append) is detected via CRC and dropped; corruption in the
//! middle of the file is reported as an error.
//!
//! Record wire format: `[u32 len (LE)] [u32 crc32 of payload (LE)]
//! [payload: codec-encoded JournalRecord]`, after an 8-byte magic header.

use crate::codec::{self, CodecError};
use crate::io::{RealFs, StorageIo};
use crate::schema::{RunId, RunRow, SpecId, SpecRow, ViewId, ViewRow};
use crate::store::{Warehouse, WarehouseError};
use crate::stream::{PushOutcome, StreamError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use zoom_model::{EventLog, LogEvent, UserView, WorkflowRun, WorkflowSpec};

/// Magic bytes identifying a warehouse journal.
pub const MAGIC: &[u8; 8] = b"ZOOMWJ\x00\x01";

/// Errors from journal operations.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Encoding/decoding error.
    Codec(CodecError),
    /// Warehouse-level rejection during append or replay.
    Warehouse(WarehouseError),
    /// The file is not a journal.
    BadHeader,
    /// A record in the middle of the journal is corrupt (CRC mismatch).
    Corrupt {
        /// Index of the corrupt record.
        record: usize,
    },
    /// A journaled id does not match the id replay assigned — the journal
    /// was written against a different base state (or doctored).
    IdMismatch {
        /// The id stored in the record.
        expected: String,
        /// The id replay assigned.
        got: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "io error: {e}"),
            JournalError::Codec(e) => write!(f, "codec error: {e}"),
            JournalError::Warehouse(e) => write!(f, "warehouse error: {e}"),
            JournalError::BadHeader => write!(f, "not a warehouse journal (bad header)"),
            JournalError::Corrupt { record } => {
                write!(f, "journal record {record} is corrupt (crc mismatch)")
            }
            JournalError::IdMismatch { expected, got } => {
                write!(
                    f,
                    "journal replay id mismatch: record says {expected}, replay assigned {got}"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Codec(e)
    }
}

impl From<WarehouseError> for JournalError {
    fn from(e: WarehouseError) -> Self {
        JournalError::Warehouse(e)
    }
}

impl From<zoom_model::ModelError> for JournalError {
    fn from(e: zoom_model::ModelError) -> Self {
        JournalError::Warehouse(WarehouseError::Model(e))
    }
}

/// One durable mutation. Shared with [`crate::durable`], which journals the
/// same record kinds behind its manifest.
#[derive(Serialize, Deserialize)]
pub(crate) enum JournalRecord {
    /// A registered specification.
    Spec(SpecId, SpecRow),
    /// A registered view.
    View(ViewId, ViewRow),
    /// A loaded run.
    Run(RunId, RunRow),
    // Streaming records follow. New variants go at the END of the enum:
    // the codec encodes variants by index, so reordering would silently
    // misread old journals.
    /// A streaming run was opened against a spec.
    StreamBegin(RunId, SpecId),
    /// One accepted streaming event. Journaled event-at-a-time — not
    /// batched — so every acknowledged event is durable before `apply`
    /// mutates memory, and recovery replays exactly the acknowledged
    /// prefix.
    StreamEvent(RunId, LogEvent),
    /// A streaming run was sealed into a complete run.
    StreamSeal(RunId),
}

/// Encodes one record as a wire frame: `[len][crc][payload]`.
pub(crate) fn encode_frame(rec: &JournalRecord) -> Result<Vec<u8>, JournalError> {
    let payload = codec::to_bytes(rec)?;
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// What a replay pass over a journal body found.
pub(crate) struct ReplayOutcome {
    /// Number of intact records applied.
    pub records: usize,
    /// Bytes of the body covered by intact records; anything past this is a
    /// torn tail the caller should truncate away.
    pub valid_end: usize,
}

/// Replays a journal body (everything after the magic header) into `w`.
///
/// A torn final record is dropped; corruption before the end is an error.
/// With `check_ids`, every record's stored id must equal the id replay
/// assigns — the guarantee that the journal really is a continuation of
/// `w`'s current state.
pub(crate) fn replay_body(
    w: &mut Warehouse,
    body: &[u8],
    check_ids: bool,
) -> Result<ReplayOutcome, JournalError> {
    let mut offset = 0usize;
    let mut records = 0usize;
    let mut valid_end = 0usize;
    while body.len() - offset >= 8 {
        let len =
            u32::from_le_bytes(body[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(body[offset + 4..offset + 8].try_into().expect("4"));
        let start = offset + 8;
        if body.len() < start + len {
            break; // torn tail
        }
        let payload = &body[start..start + len];
        if crc32(payload) != crc {
            // A bad checksum at the very end is a torn write; earlier it
            // is corruption.
            if start + len == body.len() {
                break;
            }
            return Err(JournalError::Corrupt { record: records });
        }
        let rec: JournalRecord = codec::from_bytes(payload)?;
        apply(w, rec, check_ids)?;
        records += 1;
        offset = start + len;
        valid_end = offset;
    }
    Ok(ReplayOutcome { records, valid_end })
}

/// CRC-32 (IEEE 802.3, reflected), table-driven; implemented here because
/// no checksum crate is in the workspace's dependency budget.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A warehouse whose mutations are journaled to disk as they happen.
///
/// ```
/// use zoom_warehouse::JournaledWarehouse;
/// use zoom_model::SpecBuilder;
/// let mut path = std::env::temp_dir();
/// path.push(format!("zoom-journal-doc-{}", std::process::id()));
///
/// let mut b = SpecBuilder::new("doc");
/// b.analysis("A");
/// b.from_input("A").to_output("A");
/// let spec = b.build().unwrap();
///
/// let mut jw = JournaledWarehouse::create(&path).unwrap();
/// jw.register_spec(spec).unwrap();
/// drop(jw); // crash or exit: the record is already durable
///
/// let replayed = JournaledWarehouse::open(&path).unwrap();
/// assert_eq!(replayed.warehouse().stats().specs, 1);
/// # std::fs::remove_file(&path).ok();
/// ```
pub struct JournaledWarehouse {
    inner: Warehouse,
    io: Arc<dyn StorageIo>,
    path: PathBuf,
    records: usize,
}

impl fmt::Debug for JournaledWarehouse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournaledWarehouse")
            .field("path", &self.path)
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

impl JournaledWarehouse {
    /// Creates a fresh journal (truncating any existing file).
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        Self::create_with(Arc::new(RealFs), path)
    }

    /// Creates a fresh journal on an explicit storage backend.
    pub fn create_with(io: Arc<dyn StorageIo>, path: &Path) -> Result<Self, JournalError> {
        io.write(path, MAGIC)?;
        crate::io::sync_parent(&*io, path)?;
        Ok(JournaledWarehouse {
            inner: Warehouse::new(),
            io,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Opens an existing journal, replaying every intact record. A torn
    /// final record (crash during the last append) is dropped silently;
    /// corruption before the end is an error.
    pub fn open(path: &Path) -> Result<Self, JournalError> {
        Self::open_with(Arc::new(RealFs), path)
    }

    /// Opens an existing journal on an explicit storage backend.
    pub fn open_with(io: Arc<dyn StorageIo>, path: &Path) -> Result<Self, JournalError> {
        let bytes = io.read(path)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::BadHeader);
        }
        let mut inner = Warehouse::new();
        // A journal written from empty reassigns the same ids on replay, so
        // id checking is free here and catches doctored records.
        let outcome = replay_body(&mut inner, &bytes[MAGIC.len()..], true)?;
        // Truncate away any torn tail so later appends extend intact data.
        let keep = (MAGIC.len() + outcome.valid_end) as u64;
        if keep < bytes.len() as u64 {
            io.set_len(path, keep)?;
        }
        Ok(JournaledWarehouse {
            inner,
            io,
            path: path.to_path_buf(),
            records: outcome.records,
        })
    }

    fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        let frame = encode_frame(rec)?;
        let started = std::time::Instant::now();
        let registry = self.inner.metrics_registry();
        crate::resilience::RetryPolicy::default().run(
            || registry.record_io_retry(),
            || self.io.append(&self.path, &frame),
        )?;
        registry.record_journal_append(started.elapsed().as_nanos() as u64);
        self.records += 1;
        Ok(())
    }

    /// Registers a specification, durably. If the append fails, the
    /// in-memory registration is rolled back so memory never diverges from
    /// disk.
    pub fn register_spec(&mut self, spec: WorkflowSpec) -> Result<SpecId, JournalError> {
        let row = SpecRow { spec };
        let id = self.inner.register_spec(row.spec.clone())?;
        if let Err(e) = self.append(&JournalRecord::Spec(id, row)) {
            self.inner.rollback_spec(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Registers a view, durably (rolled back on a failed append).
    pub fn register_view(&mut self, spec: SpecId, view: UserView) -> Result<ViewId, JournalError> {
        let id = self.inner.register_view(spec, view.clone())?;
        if let Err(e) = self.append(&JournalRecord::View(id, ViewRow { spec, view })) {
            self.inner.rollback_view(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Loads a run, durably (rolled back on a failed append).
    pub fn load_run(&mut self, spec: SpecId, run: WorkflowRun) -> Result<RunId, JournalError> {
        let id = self.inner.load_run(spec, run.clone())?;
        if let Err(e) = self.append(&JournalRecord::Run(id, RunRow { spec, run })) {
            self.inner.rollback_run(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Ingests an event log, durably (journals the reconstructed run).
    pub fn load_log(&mut self, spec: SpecId, log: &EventLog) -> Result<RunId, JournalError> {
        let run = log.to_run(self.inner.spec(spec)?)?;
        self.load_run(spec, run)
    }

    /// Opens a streaming run, durably (rolled back on a failed append).
    pub fn begin_stream(&mut self, spec: SpecId) -> Result<RunId, JournalError> {
        let id = self.inner.begin_stream(spec)?;
        if let Err(e) = self.append(&JournalRecord::StreamBegin(id, spec)) {
            self.inner.rollback_stream(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Pushes one streaming event, durably. Validation (`stream_accept`)
    /// is read-only, the journal append happens before the in-memory
    /// apply, and the apply is infallible — so an acknowledged event is
    /// always on disk, and a failed append changes nothing.
    pub fn stream_push(
        &mut self,
        run: RunId,
        event: &LogEvent,
    ) -> Result<PushOutcome, JournalError> {
        let commit = self.inner.stream_accept(run, event)?;
        self.append(&JournalRecord::StreamEvent(run, event.clone()))?;
        Ok(self.inner.stream_apply(run, commit))
    }

    /// Seals a streaming run, durably (same accept/journal/apply order as
    /// [`JournaledWarehouse::stream_push`]).
    pub fn stream_seal(&mut self, run: RunId) -> Result<(), JournalError> {
        let commit = self.inner.stream_seal_check(run)?;
        self.append(&JournalRecord::StreamSeal(run))?;
        self.inner.stream_seal_apply(run, commit);
        Ok(())
    }

    /// Read access to the replayed/ live warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.inner
    }

    /// Number of records in the journal.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Compacts the journal into a snapshot file and starts a fresh journal
    /// containing the same state (snapshot + empty tail).
    ///
    /// Rejected while streams are active: snapshots carry only committed
    /// rows, not mid-stream ingestor state, so compacting now would strand
    /// the open streams' buffered events.
    pub fn compact_into_snapshot(&self, snapshot: &Path) -> Result<(), JournalError> {
        let active = self.inner.active_streams();
        if active > 0 {
            return Err(JournalError::Warehouse(WarehouseError::Stream(
                StreamError::ActiveStreams(active),
            )));
        }
        crate::persist::save(&self.inner, snapshot).map_err(|e| match e {
            crate::persist::PersistError::Io(e) => JournalError::Io(e),
            crate::persist::PersistError::Codec(e) => JournalError::Codec(e),
            crate::persist::PersistError::BadHeader => JournalError::BadHeader,
            crate::persist::PersistError::Invalid(e) => {
                JournalError::Warehouse(WarehouseError::Model(e))
            }
        })
    }
}

fn check_id(
    check: bool,
    expected: impl fmt::Display,
    got: impl fmt::Display,
) -> Result<(), JournalError> {
    let (expected, got) = (expected.to_string(), got.to_string());
    if check && expected != got {
        return Err(JournalError::IdMismatch { expected, got });
    }
    Ok(())
}

fn apply(w: &mut Warehouse, rec: JournalRecord, check_ids: bool) -> Result<(), JournalError> {
    match rec {
        JournalRecord::Spec(id, row) => {
            // Journal bytes bypass the builders; re-validate.
            row.spec.validate().map_err(WarehouseError::Model)?;
            let got = w.register_spec(row.spec)?;
            check_id(check_ids, id, got)?;
        }
        JournalRecord::View(id, row) => {
            // `register_view` re-validates the partition against the spec.
            let got = w.register_view(row.spec, row.view)?;
            check_id(check_ids, id, got)?;
        }
        JournalRecord::Run(id, row) => {
            row.run
                .validate(w.spec(row.spec)?)
                .map_err(WarehouseError::Model)?;
            let got = w.load_run(row.spec, row.run)?;
            check_id(check_ids, id, got)?;
        }
        JournalRecord::StreamBegin(id, spec) => {
            let got = w.begin_stream(spec)?;
            check_id(check_ids, id, got)?;
        }
        JournalRecord::StreamEvent(run, ev) => {
            // The event was validated before it was journaled; replaying
            // it through the same accept path re-validates for free.
            w.stream_push(run, &ev)?;
        }
        JournalRecord::StreamSeal(run) => {
            w.stream_seal(run)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{DataId, RunBuilder, SpecBuilder};

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zoom-journal-{name}-{}", std::process::id()));
        p
    }

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("j");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        rb.build().unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_replay() {
        let path = temp("replay");
        let s = spec();
        {
            let mut jw = JournaledWarehouse::create(&path).unwrap();
            let sid = jw.register_spec(s.clone()).unwrap();
            jw.register_view(sid, UserView::admin(&s)).unwrap();
            jw.load_run(sid, run(&s)).unwrap();
            assert_eq!(jw.record_count(), 3);
        }
        let jw = JournaledWarehouse::open(&path).unwrap();
        assert_eq!(jw.record_count(), 3);
        let st = jw.warehouse().stats();
        assert_eq!((st.specs, st.views, st.runs), (1, 1, 1));
        // The replayed warehouse answers queries.
        let sid = jw.warehouse().spec_by_name("j").unwrap();
        let vid = jw.warehouse().find_view(sid, "UAdmin").unwrap();
        let rid = jw.warehouse().runs_of_spec(sid)[0];
        let res = jw.warehouse().deep_provenance(rid, vid, DataId(3)).unwrap();
        assert_eq!(res.tuples(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp("reopen");
        let s = spec();
        {
            let mut jw = JournaledWarehouse::create(&path).unwrap();
            jw.register_spec(s.clone()).unwrap();
        }
        {
            let mut jw = JournaledWarehouse::open(&path).unwrap();
            let sid = jw.warehouse().spec_by_name("j").unwrap();
            jw.load_run(sid, run(&s)).unwrap();
            assert_eq!(jw.record_count(), 2);
        }
        let jw = JournaledWarehouse::open(&path).unwrap();
        assert_eq!(jw.record_count(), 2);
        assert_eq!(jw.warehouse().stats().runs, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = temp("torn");
        let s = spec();
        {
            let mut jw = JournaledWarehouse::create(&path).unwrap();
            let sid = jw.register_spec(s.clone()).unwrap();
            jw.load_run(sid, run(&s)).unwrap();
        }
        // Chop off the last 5 bytes: the run record is torn.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let jw = JournaledWarehouse::open(&path).unwrap();
        assert_eq!(jw.record_count(), 1);
        assert_eq!(jw.warehouse().stats().runs, 0);
        assert_eq!(jw.warehouse().stats().specs, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_detected() {
        let path = temp("corrupt");
        let s = spec();
        {
            let mut jw = JournaledWarehouse::create(&path).unwrap();
            let sid = jw.register_spec(s.clone()).unwrap();
            jw.load_run(sid, run(&s)).unwrap();
        }
        // Flip a byte inside the FIRST record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len() + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            JournaledWarehouse::open(&path),
            Err(JournalError::Corrupt { record: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_rejected() {
        let path = temp("badheader");
        std::fs::write(&path, b"NOTAJOURNAL!").unwrap();
        assert!(matches!(
            JournaledWarehouse::open(&path),
            Err(JournalError::BadHeader)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_produces_loadable_snapshot() {
        let jpath = temp("compact-journal");
        let spath = temp("compact-snapshot");
        let s = spec();
        let mut jw = JournaledWarehouse::create(&jpath).unwrap();
        let sid = jw.register_spec(s.clone()).unwrap();
        jw.register_view(sid, UserView::admin(&s)).unwrap();
        jw.load_run(sid, run(&s)).unwrap();
        jw.compact_into_snapshot(&spath).unwrap();
        let w = crate::persist::load(&spath).unwrap();
        assert_eq!(w.stats().runs, 1);
        std::fs::remove_file(&jpath).ok();
        std::fs::remove_file(&spath).ok();
    }
}
