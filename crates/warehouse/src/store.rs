//! The provenance warehouse facade.
//!
//! Mirrors the architecture of the paper's Figure 8: the system designer
//! registers workflow specifications and user-view definitions; run
//! information arrives as event logs (or validated runs) from the workflow
//! system; users query provenance with respect to a user view. The paper
//! used Oracle 10g behind JDBC; this warehouse is embedded and in-process,
//! with the same logical schema and the same query-acceleration strategy
//! (materialize base structures once, reuse across view switches).

use crate::cache::ViewRunCache;
use crate::fxhash::FxHashMap;
use crate::index::{IndexBuildError, ProvenanceIndex, ProvenanceIndexCache, RunKeyedCache};
use crate::labels::LabelIndex;
use crate::metrics::{IndexMetrics, MetricsRegistry, MetricsSnapshot, QueryKind, ViewClass};
use crate::query::{self, ImmediateProvenance, ProvenanceResult, QueryError, QueryFailure};
use crate::resilience::{AdmissionControl, CancelToken, Deadline, Interrupt};
use crate::schema::{RunId, RunRow, SpecId, SpecRow, ViewId, ViewRow, WarehouseStats};
use crate::stream::{PushOutcome, RunIngestor, SealCommit, StreamCommit, StreamError};
use crate::table::Table;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zoom_model::{
    DataId, EventLog, LogEvent, ModelError, UserInputMeta, UserView, ViewRun, WorkflowRun,
    WorkflowSpec,
};

/// Errors from warehouse operations.
#[derive(Debug)]
pub enum WarehouseError {
    /// A model-level validation failure (invalid spec, run, log, or view).
    Model(ModelError),
    /// Unknown specification id.
    SpecNotFound(SpecId),
    /// Unknown view id.
    ViewNotFound(ViewId),
    /// Unknown run id.
    RunNotFound(RunId),
    /// A specification with this name is already registered.
    DuplicateSpecName(String),
    /// The view/run does not belong to the given specification.
    SpecMismatch {
        /// What was expected.
        expected: String,
        /// What was provided.
        got: String,
    },
    /// The data object does not occur in the run.
    DataNotFound(DataId),
    /// The data object exists but is hidden at this view level.
    DataNotVisible {
        /// The queried object.
        data: DataId,
        /// The view that hides it.
        view: String,
    },
    /// The (possibly virtual) execution id does not exist in the run at
    /// this view level.
    ExecNotFound(zoom_model::StepId),
    /// The run has no data flowing to its output node.
    NoFinalOutputs(RunId),
    /// The view-run is structurally inconsistent with the run it claims to
    /// materialize (hand-loaded or corrupted state). The query is refused
    /// instead of aborting the process.
    CorruptViewRun(QueryError),
    /// Journaling the mutation to durable storage failed; the in-memory
    /// change was rolled back.
    Durability(Box<crate::durable::DurableError>),
    /// The query's deadline passed mid-traversal; the traversal unwound
    /// cooperatively instead of running unbounded.
    DeadlineExceeded,
    /// The query was cancelled via [`CancelToken`] mid-traversal.
    Cancelled,
    /// Admission control shed the query: the in-flight limit and the wait
    /// queue were both full. Retry later or at lower concurrency.
    Overloaded,
    /// The store is in degraded read-only mode (the write circuit breaker
    /// is open after consecutive permanent storage failures): mutations
    /// fail fast, queries keep serving from memory.
    Degraded,
    /// A streaming-ingestion event or seal was rejected; the stream and
    /// its committed prefix are unchanged.
    Stream(crate::stream::StreamError),
    /// A batch worker thread panicked mid-query. The batch's other slots
    /// still answer; only the panicked worker's claimed queries fail —
    /// a panic in one query must not abort the process (or, under
    /// `zoomd`, one tenant's connection thread).
    WorkerPanicked,
    /// The shard that owns the addressed state is quarantined or mid-
    /// rebuild: it was taken out of the write path by the supervisor and
    /// will return once repaired. Retry after the hinted delay; other
    /// shards are unaffected. Over the wire this renders as the typed
    /// `Unavailable` response instead of an error string.
    ShardUnavailable {
        /// The supervised shard that refused the operation.
        shard: u32,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// A visibility policy cannot be satisfied for this workflow: no user
    /// view conceals the protected modules (e.g. the workflow has a single
    /// module and it is hidden — even the black-box view is a singleton
    /// composite, which exposes the module's full I/O behaviour).
    PolicyUnsatisfiable {
        /// The workflow the policy was compiled against.
        spec: String,
        /// Why no concealing view exists.
        reason: String,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Model(e) => write!(f, "model error: {e}"),
            WarehouseError::SpecNotFound(id) => write!(f, "{id} not found"),
            WarehouseError::ViewNotFound(id) => write!(f, "{id} not found"),
            WarehouseError::RunNotFound(id) => write!(f, "{id} not found"),
            WarehouseError::DuplicateSpecName(n) => {
                write!(f, "a specification named `{n}` is already registered")
            }
            WarehouseError::SpecMismatch { expected, got } => {
                write!(
                    f,
                    "specification mismatch: expected `{expected}`, got `{got}`"
                )
            }
            WarehouseError::DataNotFound(d) => write!(f, "data object {d} not found in run"),
            WarehouseError::DataNotVisible { data, view } => {
                write!(f, "data object {data} is hidden at view level `{view}`")
            }
            WarehouseError::ExecNotFound(s) => {
                write!(f, "execution {s} not found in run at this view level")
            }
            WarehouseError::NoFinalOutputs(r) => {
                write!(f, "{r} has no final outputs")
            }
            WarehouseError::CorruptViewRun(e) => write!(f, "corrupt view-run: {e}"),
            WarehouseError::Durability(e) => write!(f, "durability error: {e}"),
            WarehouseError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            WarehouseError::Cancelled => write!(f, "query cancelled"),
            WarehouseError::Overloaded => {
                write!(f, "warehouse overloaded: query shed by admission control")
            }
            WarehouseError::Degraded => write!(
                f,
                "store is in degraded read-only mode: mutations rejected until storage recovers"
            ),
            WarehouseError::Stream(e) => write!(f, "stream error: {e}"),
            WarehouseError::WorkerPanicked => {
                write!(f, "batch query worker panicked; slot abandoned")
            }
            WarehouseError::ShardUnavailable {
                shard,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "shard {shard} unavailable (under repair); retry after {retry_after_ms} ms"
                )
            }
            WarehouseError::PolicyUnsatisfiable { spec, reason } => {
                write!(
                    f,
                    "visibility policy unsatisfiable for workflow `{spec}`: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<ModelError> for WarehouseError {
    fn from(e: ModelError) -> Self {
        WarehouseError::Model(e)
    }
}

impl From<crate::stream::StreamError> for WarehouseError {
    fn from(e: crate::stream::StreamError) -> Self {
        WarehouseError::Stream(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WarehouseError>;

/// The immediate-provenance answer with user-input metadata resolved.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ImmediateAnswer {
    /// Produced by a (possibly virtual) execution.
    Produced {
        /// The producing execution id.
        exec: zoom_model::StepId,
        /// Its full input set.
        inputs: Vec<DataId>,
        /// Parameters of the execution's member steps, as
        /// `(member step, key, value)`, sorted — "what data objects and
        /// parameters were input to that step" (Section II).
        params: Vec<(zoom_model::StepId, String, String)>,
    },
    /// Input by the user: "its provenance is whatever metadata information
    /// is recorded" (Section II).
    UserInput {
        /// Who/when, if recorded.
        meta: Option<UserInputMeta>,
    },
}

/// Every row of the warehouse, sorted by id (persistence support).
pub(crate) type ExportedRows = (
    Vec<(SpecId, SpecRow)>,
    Vec<(ViewId, ViewRow)>,
    Vec<(RunId, RunRow)>,
);

/// Which reachability strategy answers deep/forward provenance.
///
/// The default policy is *automatic*: runs at or above the labels
/// threshold (see [`Warehouse::set_labels_threshold`]) use [`Labels`]
/// (`O(n · avg_labels)` memory), smaller runs use [`Bitset`] (fastest
/// constant factors, `O(n²/64)` memory). [`Bfs`] runs a per-query
/// traversal with no index at all — the always-correct fallback and the
/// baseline the scorecard compares against.
///
/// [`Labels`]: IndexBackend::Labels
/// [`Bitset`]: IndexBackend::Bitset
/// [`Bfs`]: IndexBackend::Bfs
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexBackend {
    /// Tree-cover interval labels ([`crate::labels::LabelIndex`]).
    Labels,
    /// Dense closure rows ([`ProvenanceIndex`]).
    Bitset,
    /// Per-query BFS, no index.
    Bfs,
}

impl IndexBackend {
    /// Stable lowercase name, as reported by `stats --json`.
    pub fn name(self) -> &'static str {
        match self {
            IndexBackend::Labels => "labels",
            IndexBackend::Bitset => "bitset",
            IndexBackend::Bfs => "bfs",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            IndexBackend::Labels => 1,
            IndexBackend::Bitset => 2,
            IndexBackend::Bfs => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(IndexBackend::Labels),
            2 => Some(IndexBackend::Bitset),
            3 => Some(IndexBackend::Bfs),
            _ => None,
        }
    }
}

impl fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs with at least this many graph nodes default to the labels
/// backend; below it the bitset rows are small enough that their better
/// constant factors win. At 4096 nodes the bitset pair costs ~4 MiB per
/// run and doubles per doubling of n — labels stay near two intervals
/// per node on workflow shapes.
pub const DEFAULT_LABELS_THRESHOLD: usize = 4096;

/// The embedded provenance warehouse.
///
/// ```
/// use zoom_warehouse::Warehouse;
/// use zoom_model::{SpecBuilder, RunBuilder, UserView, DataId};
///
/// let mut b = SpecBuilder::new("wh-doc");
/// b.analysis("A");
/// b.from_input("A").to_output("A");
/// let spec = b.build().unwrap();
///
/// let mut wh = Warehouse::new();
/// let sid = wh.register_spec(spec.clone()).unwrap();
/// let vid = wh.register_view(sid, UserView::admin(&spec)).unwrap();
/// let mut rb = RunBuilder::new(&spec);
/// let s1 = rb.step(spec.module("A").unwrap());
/// rb.input_edge(s1, [1]).output_edge(s1, [2]);
/// let rid = wh.load_run(sid, rb.build().unwrap()).unwrap();
///
/// let prov = wh.deep_provenance(rid, vid, DataId(2)).unwrap();
/// assert_eq!(prov.tuples(), 2); // d1 and d2
/// ```
#[derive(Debug)]
pub struct Warehouse {
    specs: Table<SpecId, SpecRow>,
    spec_by_name: FxHashMap<String, SpecId>,
    views: Table<ViewId, ViewRow>,
    views_by_spec: FxHashMap<SpecId, Vec<ViewId>>,
    runs: Table<RunId, RunRow>,
    runs_by_spec: FxHashMap<SpecId, Vec<RunId>>,
    /// Live streaming ingestions, keyed by the prefix run they grow.
    /// Entries are removed on seal, so membership means "still streaming".
    streams: FxHashMap<RunId, RunIngestor>,
    next_spec: u32,
    next_view: u32,
    next_run: u32,
    cache: ViewRunCache,
    index: ProvenanceIndexCache,
    labels: RunKeyedCache<LabelIndex>,
    /// Forced backend (`IndexBackend::to_u8`); 0 means automatic.
    index_backend: AtomicU8,
    /// Node count at which the automatic policy switches to labels.
    labels_threshold: AtomicUsize,
    metrics: MetricsRegistry,
    /// Bounds concurrent facade queries; past the bound + queue, sheds
    /// with [`WarehouseError::Overloaded`].
    admission: Arc<AdmissionControl>,
    /// Default per-query deadline in nanoseconds; 0 means unlimited.
    default_deadline_nanos: AtomicU64,
    /// The token in-flight queries poll; [`Warehouse::cancel_queries`]
    /// raises it and installs a fresh one for later queries.
    cancel: RwLock<CancelToken>,
    /// Cap on batch fan-out worker threads; 0 means "hardware parallelism".
    max_batch_workers: AtomicUsize,
}

/// Default admission bound: plenty for an embedded store while still
/// giving a saturated deployment a shed point instead of a pile-up.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 64;

/// Default admission queue depth.
pub const DEFAULT_MAX_QUEUE: usize = 1024;

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse {
            specs: Table::default(),
            spec_by_name: FxHashMap::default(),
            views: Table::default(),
            views_by_spec: FxHashMap::default(),
            runs: Table::default(),
            runs_by_spec: FxHashMap::default(),
            streams: FxHashMap::default(),
            next_spec: 0,
            next_view: 0,
            next_run: 0,
            cache: ViewRunCache::default(),
            index: ProvenanceIndexCache::default(),
            labels: RunKeyedCache::default(),
            index_backend: AtomicU8::new(0),
            labels_threshold: AtomicUsize::new(DEFAULT_LABELS_THRESHOLD),
            metrics: MetricsRegistry::default(),
            admission: Arc::new(AdmissionControl::new(
                DEFAULT_MAX_IN_FLIGHT,
                DEFAULT_MAX_QUEUE,
            )),
            default_deadline_nanos: AtomicU64::new(0),
            cancel: RwLock::new(CancelToken::new()),
            max_batch_workers: AtomicUsize::new(0),
        }
    }
}

impl Warehouse {
    /// An empty warehouse.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Resilience configuration
    // ------------------------------------------------------------------

    /// Replaces the admission limits: at most `max_in_flight` concurrent
    /// facade queries, up to `max_queue` more waiting, the rest shed with
    /// [`WarehouseError::Overloaded`]. Queries already holding a permit
    /// from the old configuration finish undisturbed.
    pub fn set_admission_limits(&mut self, max_in_flight: usize, max_queue: usize) {
        self.admission = Arc::new(AdmissionControl::new(max_in_flight, max_queue));
    }

    /// The admission controller gating facade queries (shared so tests
    /// and embedding layers can hold permits to provoke shedding).
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// Sets the default per-query deadline; `None` (the initial state)
    /// means unlimited. Applies to queries started after the call.
    pub fn set_default_deadline(&self, budget: Option<Duration>) {
        let nanos = budget.map_or(0, |d| d.as_nanos().clamp(1, u64::MAX as u128) as u64);
        self.default_deadline_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The default per-query deadline, if one is configured.
    pub fn default_deadline(&self) -> Option<Duration> {
        match self.default_deadline_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }

    /// Cancels every in-flight query (they unwind with
    /// [`WarehouseError::Cancelled`] at their next stride check) and
    /// installs a fresh token for queries started afterwards.
    pub fn cancel_queries(&self) {
        let mut slot = self.cancel.write();
        slot.cancel();
        *slot = CancelToken::new();
    }

    /// The deadline a facade query started right now runs under: the
    /// default budget (if any) plus the current cancel token.
    pub fn current_deadline(&self) -> Deadline {
        let base = match self.default_deadline() {
            Some(budget) => Deadline::after(budget),
            None => Deadline::unlimited(),
        };
        base.with_token(self.cancel.read().clone())
    }

    /// Caps the batch fan-out worker count; 0 restores the default
    /// (hardware parallelism).
    pub fn set_max_batch_workers(&self, workers: usize) {
        self.max_batch_workers.store(workers, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Index backend selection
    // ------------------------------------------------------------------

    /// Forces every provenance query onto one [`IndexBackend`]; `None`
    /// restores the automatic node-count policy. Applies to queries
    /// started after the call (already-cached indexes stay cached).
    pub fn set_index_backend(&self, backend: Option<IndexBackend>) {
        self.index_backend
            .store(backend.map_or(0, IndexBackend::to_u8), Ordering::Relaxed);
    }

    /// The forced backend, or `None` when the automatic policy decides.
    pub fn index_backend(&self) -> Option<IndexBackend> {
        IndexBackend::from_u8(self.index_backend.load(Ordering::Relaxed))
    }

    /// Sets the node count at which the automatic policy prefers labels
    /// over bitset rows (see [`DEFAULT_LABELS_THRESHOLD`]).
    pub fn set_labels_threshold(&self, nodes: usize) {
        self.labels_threshold.store(nodes, Ordering::Relaxed);
    }

    /// The automatic policy's labels threshold.
    pub fn labels_threshold(&self) -> usize {
        self.labels_threshold.load(Ordering::Relaxed)
    }

    /// The backend a query over a run of `node_count` graph nodes uses
    /// right now: the forced backend if set, otherwise labels at or above
    /// the threshold and bitset below it.
    pub fn backend_for(&self, node_count: usize) -> IndexBackend {
        self.index_backend().unwrap_or_else(|| {
            if node_count >= self.labels_threshold() {
                IndexBackend::Labels
            } else {
                IndexBackend::Bitset
            }
        })
    }

    /// Human-readable backend policy for the observability surface:
    /// a fixed backend's name, or `"auto"` when the node-count policy
    /// decides per run.
    pub fn backend_policy(&self) -> String {
        self.index_backend()
            .map_or_else(|| "auto".to_string(), |b| b.name().to_string())
    }

    // ------------------------------------------------------------------
    // Registration (the "System designer" and "Workflow system" arrows of
    // Figure 8).
    // ------------------------------------------------------------------

    /// Registers a workflow specification. Names must be unique.
    pub fn register_spec(&mut self, spec: WorkflowSpec) -> Result<SpecId> {
        if self.spec_by_name.contains_key(spec.name()) {
            return Err(WarehouseError::DuplicateSpecName(spec.name().to_string()));
        }
        let id = SpecId(self.next_spec);
        self.next_spec += 1;
        self.spec_by_name.insert(spec.name().to_string(), id);
        self.specs
            .insert(id, SpecRow { spec })
            .map_err(|_| WarehouseError::DuplicateSpecName(format!("{id}")))?;
        Ok(id)
    }

    /// Registers a user view of a registered specification. The view must
    /// actually partition this spec's modules — a matching `spec_name`
    /// alone (e.g. a view built against a stale spec of the same name) is
    /// not enough.
    pub fn register_view(&mut self, spec_id: SpecId, view: UserView) -> Result<ViewId> {
        let spec = self.spec(spec_id)?;
        if spec.name() != view.spec_name() {
            return Err(WarehouseError::SpecMismatch {
                expected: spec.name().to_string(),
                got: view.spec_name().to_string(),
            });
        }
        view.validate(spec).map_err(WarehouseError::Model)?;
        let id = ViewId(self.next_view);
        self.next_view += 1;
        self.views
            .insert(
                id,
                ViewRow {
                    spec: spec_id,
                    view,
                },
            )
            .expect("fresh view id");
        self.views_by_spec.entry(spec_id).or_default().push(id);
        Ok(id)
    }

    /// Loads a validated run of a registered specification.
    pub fn load_run(&mut self, spec_id: SpecId, run: WorkflowRun) -> Result<RunId> {
        let spec = self.spec(spec_id)?;
        if spec.name() != run.spec_name() {
            return Err(WarehouseError::SpecMismatch {
                expected: spec.name().to_string(),
                got: run.spec_name().to_string(),
            });
        }
        // Builders and validators reject cycles, but a hand-deserialized
        // run (corrupted snapshot, crafted bytes) can smuggle one past
        // them; rejecting here means a bad run can never reach the index
        // builder — and a bad durable log can never crash `open()`.
        if !zoom_graph::algo::topo::is_acyclic(run.graph()) {
            return Err(WarehouseError::Model(ModelError::RunHasCycle));
        }
        let id = RunId(self.next_run);
        self.next_run += 1;
        self.runs
            .insert(id, RunRow { spec: spec_id, run })
            .expect("fresh run id");
        self.runs_by_spec.entry(spec_id).or_default().push(id);
        Ok(id)
    }

    /// Reconstructs a run from a workflow-system event log and loads it —
    /// the ingestion path real deployments use (Figure 8's "Logs" arrow).
    pub fn load_log(&mut self, spec_id: SpecId, log: &EventLog) -> Result<RunId> {
        let spec = self.spec(spec_id)?;
        let run = log.to_run(spec)?;
        self.load_run(spec_id, run)
    }

    // ------------------------------------------------------------------
    // Streaming ingestion (ROADMAP item 3: provenance queryable mid-run)
    // ------------------------------------------------------------------

    /// Opens a streaming ingestion of `spec_id`: allocates a run whose
    /// committed prefix grows with every applied event and is immediately
    /// queryable through every view. Events arrive via
    /// [`Warehouse::stream_push`]; [`Warehouse::stream_seal`] completes
    /// the run.
    pub fn begin_stream(&mut self, spec_id: SpecId) -> Result<RunId> {
        let spec = self.spec(spec_id)?;
        let run = WorkflowRun::empty_prefix(spec);
        let id = RunId(self.next_run);
        self.next_run += 1;
        self.runs
            .insert(id, RunRow { spec: spec_id, run })
            .expect("fresh run id");
        self.runs_by_spec.entry(spec_id).or_default().push(id);
        self.streams.insert(id, RunIngestor::new());
        self.metrics.record_stream_started();
        Ok(id)
    }

    /// Read-only validation of one stream event: a typed rejection, or a
    /// [`StreamCommit`] that [`Warehouse::stream_apply`] is then guaranteed
    /// to apply without failing. The durable wrapper journals the event
    /// between the two calls, so nothing unjournaled ever mutates state.
    pub fn stream_accept(&self, run_id: RunId, event: &LogEvent) -> Result<StreamCommit> {
        let ing = self.live_stream(run_id)?;
        let spec_id = self.run_spec(run_id)?;
        let spec = self.spec(spec_id)?;
        let res = ing.accept(spec, event);
        if res.is_err() {
            self.metrics.record_stream_rejected();
        }
        Ok(res?)
    }

    /// Applies a validated event: commits any newly completed steps into
    /// the prefix run and maintains every derived structure — view-run
    /// cache rows for the run are invalidated, the bitset closure is
    /// dropped (it has no incremental form), and a cached label index is
    /// *extended in place* via `LabelIndex::update_to` (commit order makes
    /// every append a pure extension).
    pub fn stream_apply(&mut self, run_id: RunId, commit: StreamCommit) -> PushOutcome {
        let row = self.runs.get_mut(&run_id).expect("stream run exists");
        let spec = &self
            .specs
            .get(&row.spec)
            .expect("stream run's spec exists")
            .spec;
        let ing = self.streams.get_mut(&run_id).expect("stream is live");
        let outcome = ing.apply(spec, &mut row.run, commit);
        self.metrics.record_stream_event();
        if let PushOutcome::Committed(steps) = &outcome {
            self.metrics.record_steps_committed(steps.len() as u64);
            self.refresh_run_indexes(run_id);
        }
        outcome
    }

    /// Validates + applies one stream event (the in-memory push path; the
    /// durable wrapper journals between the two halves).
    pub fn stream_push(&mut self, run_id: RunId, event: &LogEvent) -> Result<PushOutcome> {
        let commit = self.stream_accept(run_id, event)?;
        Ok(self.stream_apply(run_id, commit))
    }

    /// Read-only seal validation: every step committed and at least one
    /// final output recorded.
    pub fn stream_seal_check(&self, run_id: RunId) -> Result<SealCommit> {
        let ing = self.live_stream(run_id)?;
        let res = ing.seal_check();
        if res.is_err() {
            self.metrics.record_stream_rejected();
        }
        Ok(res?)
    }

    /// Applies a validated seal: connects final outputs to the run's
    /// output node (the prefix becomes a complete run) and retires the
    /// ingestor — the run now behaves exactly like a batch-loaded one.
    pub fn stream_seal_apply(&mut self, run_id: RunId, commit: SealCommit) {
        let row = self.runs.get_mut(&run_id).expect("stream run exists");
        let spec = &self
            .specs
            .get(&row.spec)
            .expect("stream run's spec exists")
            .spec;
        let mut ing = self.streams.remove(&run_id).expect("stream is live");
        ing.apply_seal(spec, &mut row.run, commit);
        self.metrics.record_stream_sealed();
        self.refresh_run_indexes(run_id);
    }

    /// Validates + applies a seal (in-memory path).
    pub fn stream_seal(&mut self, run_id: RunId) -> Result<()> {
        let commit = self.stream_seal_check(run_id)?;
        self.stream_seal_apply(run_id, commit);
        Ok(())
    }

    /// Number of live (unsealed) streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Whether `run` is a live (unsealed) stream.
    pub fn is_streaming(&self, run_id: RunId) -> bool {
        self.streams.contains_key(&run_id)
    }

    /// The ingestor of a live stream, or the typed error.
    fn live_stream(&self, run_id: RunId) -> Result<&RunIngestor> {
        if !self.runs.contains(&run_id) {
            return Err(WarehouseError::RunNotFound(run_id));
        }
        self.streams
            .get(&run_id)
            .ok_or(WarehouseError::Stream(StreamError::SealedStream))
    }

    /// Re-aligns the derived per-run structures after the run graph grew:
    /// materialized view-runs and the bitset closure are stale (dropped,
    /// rebuilt on next use); a resident label index is extended in place —
    /// the whole point of commit ordering — falling back to a rebuild only
    /// when fragmentation demands it.
    fn refresh_run_indexes(&mut self, run_id: RunId) {
        self.cache.invalidate_run(run_id);
        self.index.invalidate_run(run_id);
        let row = self.runs.get(&run_id).expect("stream run exists");
        let updated = self.labels.update_entry(run_id, |idx| {
            idx.update_to(row.run.graph(), &mut Deadline::unlimited())
        });
        match updated {
            Ok(Some(crate::labels::UpdateOutcome::Appended(_))) => {
                self.metrics.record_label_append();
            }
            Ok(Some(crate::labels::UpdateOutcome::Rebuilt)) => {
                self.metrics.record_label_rebuild();
            }
            Ok(Some(crate::labels::UpdateOutcome::Fresh) | None) => {}
            // An update failure (unbounded deadline ⇒ only a cycle could
            // land here, and committed prefixes are acyclic by
            // construction) evicted the entry; queries rebuild lazily.
            Err(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Lookups
    // ------------------------------------------------------------------

    /// The specification under `id`.
    pub fn spec(&self, id: SpecId) -> Result<&WorkflowSpec> {
        self.specs
            .get(&id)
            .map(|r| &r.spec)
            .ok_or(WarehouseError::SpecNotFound(id))
    }

    /// Looks a specification up by name.
    pub fn spec_by_name(&self, name: &str) -> Option<SpecId> {
        self.spec_by_name.get(name).copied()
    }

    /// The view under `id` (and the spec it belongs to).
    pub fn view(&self, id: ViewId) -> Result<&UserView> {
        self.views
            .get(&id)
            .map(|r| &r.view)
            .ok_or(WarehouseError::ViewNotFound(id))
    }

    /// The spec a view belongs to.
    pub fn view_spec(&self, id: ViewId) -> Result<SpecId> {
        self.views
            .get(&id)
            .map(|r| r.spec)
            .ok_or(WarehouseError::ViewNotFound(id))
    }

    /// The run under `id`.
    pub fn run(&self, id: RunId) -> Result<&WorkflowRun> {
        self.runs
            .get(&id)
            .map(|r| &r.run)
            .ok_or(WarehouseError::RunNotFound(id))
    }

    /// The spec a run belongs to.
    pub fn run_spec(&self, id: RunId) -> Result<SpecId> {
        self.runs
            .get(&id)
            .map(|r| r.spec)
            .ok_or(WarehouseError::RunNotFound(id))
    }

    /// Every registered specification id, in registration order (spec ids
    /// are allocated densely).
    pub fn spec_ids(&self) -> Vec<SpecId> {
        (0..self.next_spec).map(SpecId).collect()
    }

    /// The registered view ids of `spec`, in registration order.
    pub fn views_of_spec(&self, spec: SpecId) -> &[ViewId] {
        self.views_by_spec.get(&spec).map_or(&[], Vec::as_slice)
    }

    /// Runs loaded for a spec.
    pub fn runs_of_spec(&self, spec: SpecId) -> &[RunId] {
        self.runs_by_spec.get(&spec).map_or(&[], Vec::as_slice)
    }

    /// Finds a registered view of `spec` by view name.
    pub fn find_view(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        self.views_of_spec(spec)
            .iter()
            .copied()
            .find(|&v| self.views.get(&v).is_some_and(|r| r.view.name() == name))
    }

    // ------------------------------------------------------------------
    // Querying (the "User" arrows of Figure 8)
    // ------------------------------------------------------------------

    /// The materialized view-run for `(run, view)` (cached).
    pub fn view_run(&self, run_id: RunId, view_id: ViewId) -> Result<Arc<ViewRun>> {
        let run_row = self
            .runs
            .get(&run_id)
            .ok_or(WarehouseError::RunNotFound(run_id))?;
        let view_row = self
            .views
            .get(&view_id)
            .ok_or(WarehouseError::ViewNotFound(view_id))?;
        if run_row.spec != view_row.spec {
            return Err(WarehouseError::SpecMismatch {
                expected: format!("{}", run_row.spec),
                got: format!("{}", view_row.spec),
            });
        }
        Ok(self.cache.get_or_build((run_id, view_id), || {
            ViewRun::new(&run_row.run, &view_row.view)
        }))
    }

    /// Materializes the view-run *without* consulting or filling the cache —
    /// the "rebuild every time" baseline strategy for the ablation bench.
    pub fn view_run_uncached(&self, run_id: RunId, view_id: ViewId) -> Result<ViewRun> {
        let run_row = self
            .runs
            .get(&run_id)
            .ok_or(WarehouseError::RunNotFound(run_id))?;
        let view_row = self
            .views
            .get(&view_id)
            .ok_or(WarehouseError::ViewNotFound(view_id))?;
        if run_row.spec != view_row.spec {
            return Err(WarehouseError::SpecMismatch {
                expected: format!("{}", run_row.spec),
                got: format!("{}", view_row.spec),
            });
        }
        Ok(ViewRun::new(&run_row.run, &view_row.view))
    }

    /// The base-closure provenance index for `run` (cached, view-independent;
    /// built on first use, shared by every view of the run).
    pub fn provenance_index(&self, run_id: RunId) -> Result<Arc<ProvenanceIndex>> {
        self.provenance_index_deadline(run_id, &mut Deadline::unlimited())
    }

    /// [`Warehouse::provenance_index`] under an execution budget: a cold
    /// build polls `deadline` per node, so one adversarially large run
    /// cannot pin the querying thread unbounded while its index
    /// materializes. An interrupted build caches nothing.
    pub fn provenance_index_deadline(
        &self,
        run_id: RunId,
        deadline: &mut Deadline,
    ) -> Result<Arc<ProvenanceIndex>> {
        let run_row = self
            .runs
            .get(&run_id)
            .ok_or(WarehouseError::RunNotFound(run_id))?;
        self.index
            .get_or_build(run_id, || {
                ProvenanceIndex::build_deadline(&run_row.run, deadline)
            })
            .map_err(|e| match e {
                IndexBuildError::Cycle => WarehouseError::Model(ModelError::RunHasCycle),
                IndexBuildError::Interrupted(i) => self.interrupt_error(i),
            })
    }

    /// The interval-label reachability index for `run` (cached,
    /// view-independent, built on first use — the labels-backend analog
    /// of [`Warehouse::provenance_index`]).
    pub fn label_index(&self, run_id: RunId) -> Result<Arc<LabelIndex>> {
        self.label_index_deadline(run_id, &mut Deadline::unlimited())
    }

    /// [`Warehouse::label_index`] under an execution budget: both label
    /// passes poll `deadline` per node. An interrupted build caches
    /// nothing.
    pub fn label_index_deadline(
        &self,
        run_id: RunId,
        deadline: &mut Deadline,
    ) -> Result<Arc<LabelIndex>> {
        let run_row = self
            .runs
            .get(&run_id)
            .ok_or(WarehouseError::RunNotFound(run_id))?;
        self.labels
            .get_or_build(run_id, || {
                LabelIndex::build_deadline(&run_row.run, deadline)
            })
            .map_err(|e| match e {
                IndexBuildError::Cycle => WarehouseError::Model(ModelError::RunHasCycle),
                IndexBuildError::Interrupted(i) => self.interrupt_error(i),
            })
    }

    /// Maps a traversal interruption to its typed error, bumping the
    /// matching counter.
    fn interrupt_error(&self, i: Interrupt) -> WarehouseError {
        match i {
            Interrupt::DeadlineExceeded => {
                self.metrics.record_deadline_exceeded();
                WarehouseError::DeadlineExceeded
            }
            Interrupt::Cancelled => {
                self.metrics.record_cancelled();
                WarehouseError::Cancelled
            }
        }
    }

    /// Acquires an admission slot (recording the decision), or the typed
    /// shed error. Holding the returned permit is what bounds in-flight
    /// facade queries.
    fn admit(&self) -> Result<crate::resilience::AdmissionPermit> {
        match self.admission.admit() {
            Some(permit) => {
                self.metrics.record_admission(true);
                Ok(permit)
            }
            None => {
                self.metrics.record_admission(false);
                Err(WarehouseError::Overloaded)
            }
        }
    }

    /// `(view class, view name)` for query metrics; unknown views classify
    /// as custom (the query will error out anyway).
    fn query_context(&self, view_id: ViewId) -> (ViewClass, &str) {
        match self.views.get(&view_id) {
            Some(r) => (ViewClass::of_view_name(r.view.name()), r.view.name()),
            None => (ViewClass::Custom, ""),
        }
    }

    /// Records one finished facade query: errors bump the error counter;
    /// successes land in the per-(kind, view class) histogram and, past
    /// the threshold, the slow-query log.
    fn record_query(
        &self,
        kind: QueryKind,
        run: RunId,
        view: ViewId,
        data: Option<DataId>,
        started: Instant,
        failed: bool,
    ) {
        if failed {
            self.metrics.record_query_error();
            return;
        }
        let (class, name) = self.query_context(view);
        self.metrics.record_query(
            kind,
            class,
            run,
            view,
            name,
            data.map(|d| d.0),
            started.elapsed().as_nanos() as u64,
        );
    }

    /// Deep provenance of `data` in `run` as seen through `view`.
    ///
    /// Answered from the per-run base-closure index: the first query on a
    /// run builds the index, every later query — at *any* view level —
    /// projects a precomputed closure row.
    pub fn deep_provenance(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
    ) -> Result<ProvenanceResult> {
        self.deep_provenance_with_deadline(run_id, view_id, data, &mut self.current_deadline())
    }

    /// [`Warehouse::deep_provenance`] under an explicit per-call deadline
    /// (overriding the store default). Subject to admission control like
    /// every facade query.
    pub fn deep_provenance_with_deadline(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
        deadline: &mut Deadline,
    ) -> Result<ProvenanceResult> {
        let _permit = self.admit()?;
        self.deep_provenance_recorded(run_id, view_id, data, deadline)
    }

    /// The timed-and-recorded query body, *without* admission — the batch
    /// path runs many of these under one batch-level permit.
    fn deep_provenance_recorded(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
        deadline: &mut Deadline,
    ) -> Result<ProvenanceResult> {
        let started = Instant::now();
        let res = self.deep_provenance_inner(run_id, view_id, data, deadline);
        self.record_query(
            QueryKind::Deep,
            run_id,
            view_id,
            Some(data),
            started,
            res.is_err(),
        );
        res
    }

    fn deep_provenance_inner(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
        deadline: &mut Deadline,
    ) -> Result<ProvenanceResult> {
        let vr = self.view_run(run_id, view_id)?;
        let run = self.run(run_id)?;
        let res = match self.backend_for(run.graph().node_count()) {
            IndexBackend::Labels => {
                let labels = self.label_index_deadline(run_id, deadline)?;
                query::deep_provenance_labeled_deadline(run, &vr, &labels, data, deadline)
            }
            IndexBackend::Bitset => {
                let index = self.provenance_index_deadline(run_id, deadline)?;
                query::deep_provenance_indexed_deadline(run, &vr, &index, data, deadline)
            }
            IndexBackend::Bfs => query::deep_provenance_deadline(run, &vr, data, deadline),
        };
        match res {
            Ok(Some(r)) => Ok(r),
            Ok(None) => Err(self.invisible_or_missing(run_id, view_id, data)),
            Err(QueryFailure::Corrupt(e)) => Err(WarehouseError::CorruptViewRun(e)),
            Err(QueryFailure::Interrupted(i)) => Err(self.interrupt_error(i)),
        }
    }

    /// Deep provenance of many `(run, view, data)` triples at once.
    ///
    /// Independent queries fan out across a capped worker pool pulling
    /// from an atomic-index work queue — no fixed chunking, so one
    /// pathological query cannot strand a chunk of light ones behind it
    /// (work-stealing by construction). Results come back in input order.
    /// The view-run and index caches are concurrent, so queries sharing a
    /// run or a view pair deduplicate work naturally — one thread builds,
    /// the rest hit.
    ///
    /// The whole batch consumes **one** admission slot: sub-queries never
    /// re-enter admission (a batch nesting into the queue it fills would
    /// deadlock). When shed, every slot reports
    /// [`WarehouseError::Overloaded`].
    pub fn deep_provenance_many(
        &self,
        queries: &[(RunId, ViewId, DataId)],
    ) -> Vec<Result<ProvenanceResult>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let _permit = match self.admit() {
            Ok(p) => p,
            Err(_) => {
                return queries
                    .iter()
                    .map(|_| Err(WarehouseError::Overloaded))
                    .collect();
            }
        };
        self.metrics.record_batch(queries.len());
        let cap = match self.max_batch_workers.load(Ordering::Relaxed) {
            0 => usize::MAX,
            n => n,
        };
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len())
            .min(cap);
        let base_deadline = self.current_deadline();
        if workers <= 1 {
            let mut deadline = base_deadline;
            return queries
                .iter()
                .map(|&(r, v, d)| self.deep_provenance_recorded(r, v, d, &mut deadline))
                .collect();
        }
        // Work-stealing fan-out: workers pull the next unclaimed input
        // index; a heavy query occupies one worker while the rest drain
        // the remainder. Each worker tags results with their input index
        // so the merge restores input order exactly.
        let next = AtomicUsize::new(0);
        // Slow-log attribution: the tenant tag is thread-local, so the
        // submitting thread's tag must be re-established inside every
        // scoped worker or batch slow queries would record untagged.
        let tenant = crate::metrics::current_tenant();
        crossbeam::thread::scope(|s| {
            let next = &next;
            let base_deadline = &base_deadline;
            let tenant = &tenant;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move |_| {
                        let _tag = crate::metrics::tag_tenant_shared(tenant.clone());
                        let mut deadline = base_deadline.clone();
                        let mut out: Vec<(usize, Result<ProvenanceResult>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(r, v, d)) = queries.get(i) else {
                                break;
                            };
                            out.push((i, self.deep_provenance_recorded(r, v, d, &mut deadline)));
                        }
                        out
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<ProvenanceResult>>> =
                (0..queries.len()).map(|_| None).collect();
            for h in handles {
                // A worker that panicked mid-query loses its claimed
                // slots; they are reported as failed below instead of
                // re-panicking here, which would poison every concurrent
                // caller sharing this warehouse behind a lock.
                if let Ok(results) = h.join() {
                    for (i, res) in results {
                        merged[i] = Some(res);
                    }
                }
            }
            merged
                .into_iter()
                .map(|slot| slot.unwrap_or(Err(WarehouseError::WorkerPanicked)))
                .collect()
        })
        .unwrap_or_else(|_| {
            queries
                .iter()
                .map(|_| Err(WarehouseError::WorkerPanicked))
                .collect()
        })
    }

    /// Immediate provenance of `data` in `run` as seen through `view`, with
    /// user-input metadata resolved from the run.
    pub fn immediate_provenance(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
    ) -> Result<ImmediateAnswer> {
        let _permit = self.admit()?;
        let started = Instant::now();
        let res = self.immediate_provenance_inner(run_id, view_id, data);
        self.record_query(
            QueryKind::Immediate,
            run_id,
            view_id,
            Some(data),
            started,
            res.is_err(),
        );
        res
    }

    fn immediate_provenance_inner(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
    ) -> Result<ImmediateAnswer> {
        let vr = self.view_run(run_id, view_id)?;
        match query::immediate_provenance(&vr, data) {
            Ok(Some(ImmediateProvenance::Produced { exec, inputs })) => {
                // Gather the member steps' parameters from the run.
                let run = self.run(run_id)?;
                let members = vr
                    .exec_by_id(exec)
                    .map(|e| e.members.clone())
                    .unwrap_or_default();
                let mut params: Vec<(zoom_model::StepId, String, String)> = Vec::new();
                for m in members {
                    for (k, v) in run.params_of(m) {
                        params.push((m, k.clone(), v.clone()));
                    }
                }
                params.sort();
                Ok(ImmediateAnswer::Produced {
                    exec,
                    inputs,
                    params,
                })
            }
            Ok(Some(ImmediateProvenance::UserInput)) => Ok(ImmediateAnswer::UserInput {
                meta: self.run(run_id)?.user_input_meta(data).cloned(),
            }),
            Ok(None) => Err(self.invisible_or_missing(run_id, view_id, data)),
            Err(e) => Err(WarehouseError::CorruptViewRun(e)),
        }
    }

    /// The canned forward query: data objects that have `data` in their
    /// provenance, at this view level.
    pub fn dependents_of(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
    ) -> Result<Vec<DataId>> {
        self.dependents_of_with_deadline(run_id, view_id, data, &mut self.current_deadline())
    }

    /// [`Warehouse::dependents_of`] under an explicit per-call deadline
    /// (overriding the store default).
    pub fn dependents_of_with_deadline(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
        deadline: &mut Deadline,
    ) -> Result<Vec<DataId>> {
        let _permit = self.admit()?;
        let started = Instant::now();
        let res = self.dependents_of_inner(run_id, view_id, data, deadline);
        self.record_query(
            QueryKind::Dependents,
            run_id,
            view_id,
            Some(data),
            started,
            res.is_err(),
        );
        res
    }

    fn dependents_of_inner(
        &self,
        run_id: RunId,
        view_id: ViewId,
        data: DataId,
        deadline: &mut Deadline,
    ) -> Result<Vec<DataId>> {
        let vr = self.view_run(run_id, view_id)?;
        let run = self.run(run_id)?;
        let res = match self.backend_for(run.graph().node_count()) {
            IndexBackend::Labels => {
                let labels = self.label_index_deadline(run_id, deadline)?;
                query::dependents_of_labeled_deadline(run, &vr, &labels, data, deadline)
            }
            IndexBackend::Bitset => {
                let index = self.provenance_index_deadline(run_id, deadline)?;
                query::dependents_of_indexed_deadline(run, &vr, &index, data, deadline)
            }
            IndexBackend::Bfs => query::dependents_of_deadline(run, &vr, data, deadline),
        };
        match res {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(self.invisible_or_missing(run_id, view_id, data)),
            Err(i) => Err(self.interrupt_error(i)),
        }
    }

    /// The data set passed between two executions at this view level — the
    /// prototype's edge-click interaction. `None` endpoints denote the
    /// run's input/output nodes.
    pub fn data_between(
        &self,
        run_id: RunId,
        view_id: ViewId,
        from: Option<zoom_model::StepId>,
        to: Option<zoom_model::StepId>,
    ) -> Result<Vec<DataId>> {
        let _permit = self.admit()?;
        let started = Instant::now();
        let res = self.data_between_inner(run_id, view_id, from, to);
        self.record_query(
            QueryKind::Between,
            run_id,
            view_id,
            None,
            started,
            res.is_err(),
        );
        res
    }

    fn data_between_inner(
        &self,
        run_id: RunId,
        view_id: ViewId,
        from: Option<zoom_model::StepId>,
        to: Option<zoom_model::StepId>,
    ) -> Result<Vec<DataId>> {
        let vr = self.view_run(run_id, view_id)?;
        match query::data_between(&vr, from, to) {
            Some(v) => Ok(v),
            None => {
                // `data_between` only fails when a named endpoint has no
                // execution at this view level; report which one.
                let missing = [from, to]
                    .into_iter()
                    .flatten()
                    .find(|&s| vr.exec_index_by_id(s).is_none())
                    .expect("an unknown execution endpoint exists");
                Err(WarehouseError::ExecNotFound(missing))
            }
        }
    }

    fn invisible_or_missing(&self, run_id: RunId, view_id: ViewId, data: DataId) -> WarehouseError {
        let exists = self
            .runs
            .get(&run_id)
            .is_some_and(|r| r.run.producer_of(data).is_some());
        if exists {
            let view = self
                .views
                .get(&view_id)
                .map_or_else(|| format!("{view_id}"), |r| r.view.name().to_string());
            WarehouseError::DataNotVisible { data, view }
        } else {
            WarehouseError::DataNotFound(data)
        }
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Aggregate sizes.
    pub fn stats(&self) -> WarehouseStats {
        WarehouseStats {
            specs: self.specs.len(),
            views: self.views.len(),
            runs: self.runs.len(),
            steps: self.runs.scan().map(|r| r.run.step_count()).sum(),
            data_objects: self.runs.scan().map(|r| r.run.data_count()).sum(),
            cached_view_runs: self.cache.len(),
            cached_indexes: self.index.len(),
            index_hits: self.index.counters().0,
            index_misses: self.index.counters().1,
            index_build_nanos: self.index.build_nanos(),
            view_run_hits: self.cache.counters().0,
            view_run_misses: self.cache.counters().1,
            view_run_evictions: self.cache.metrics().evictions,
            // Durability counters belong to the durable wrapper
            // (`crate::durable::DurableWarehouse::stats` fills them in).
            journal_records: 0,
            journal_bytes: 0,
            compactions: 0,
            epoch: 0,
            degraded: false,
        }
    }

    /// Drops every materialized view-run and every provenance index
    /// (bitset and labels alike).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.index.clear();
        self.labels.clear();
    }

    /// The metrics registry shared by every warehouse hot path.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A full metrics snapshot (in-memory backing: journal counters zero).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics_with(self.stats())
    }

    /// A full metrics snapshot folded over the given table stats — the
    /// durable wrapper passes its journal-aware [`WarehouseStats`] here.
    pub fn metrics_with(&self, stats: WarehouseStats) -> MetricsSnapshot {
        self.metrics.snapshot_into(
            stats,
            self.cache.metrics(),
            self.index.metrics(),
            self.index_metrics(),
        )
    }

    /// Gauges over the resident reachability indexes: backend policy,
    /// bytes held by each cache, and the label-size distribution.
    pub fn index_metrics(&self) -> IndexMetrics {
        let bitset_bytes = self
            .index
            .fold_entries(0u64, |acc, i| acc + i.memory_bytes() as u64);
        let (label_bytes, label_intervals, label_count_hist) = self.labels.fold_entries(
            (0u64, 0u64, [0u64; 16]),
            |(bytes, intervals, mut hist), l| {
                for (i, b) in l.label_count_histogram().iter().enumerate() {
                    hist[i] += b;
                }
                (
                    bytes + l.memory_bytes() as u64,
                    intervals + l.interval_count(),
                    hist,
                )
            },
        );
        IndexMetrics {
            backend: self.backend_policy(),
            bitset_bytes,
            label_bytes,
            label_intervals,
            label_count_hist,
            label_cache: self.labels.metrics(),
        }
    }

    /// Caps the view-run cache at `capacity` entries (0 = unbounded).
    pub fn set_view_run_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// `(hits, misses)` of the view-run cache.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }

    /// `(hits, misses)` of the provenance-index cache.
    pub fn index_counters(&self) -> (u64, u64) {
        self.index.counters()
    }

    /// `(hits, misses)` of the label-index cache.
    pub fn label_index_counters(&self) -> (u64, u64) {
        self.labels.counters()
    }

    // ------------------------------------------------------------------
    // Rollback (durability support)
    //
    // When a journal append fails after the in-memory mutation succeeded,
    // the durable stores undo the mutation so memory never claims state
    // the disk does not have. Only the most recent mutation of each kind
    // can be rolled back (ids are assigned sequentially and the failed
    // mutation is by construction the newest).
    // ------------------------------------------------------------------

    /// Undoes the most recent [`Warehouse::register_spec`].
    pub(crate) fn rollback_spec(&mut self, id: SpecId) {
        if let Some(row) = self.specs.remove_last(&id) {
            self.spec_by_name.remove(row.spec.name());
            self.next_spec = id.0;
        }
    }

    /// Undoes the most recent [`Warehouse::register_view`].
    pub(crate) fn rollback_view(&mut self, id: ViewId) {
        if let Some(row) = self.views.remove_last(&id) {
            if let Some(v) = self.views_by_spec.get_mut(&row.spec) {
                v.retain(|&x| x != id);
            }
            self.next_view = id.0;
        }
    }

    /// Undoes the most recent [`Warehouse::load_run`], evicting any cache
    /// rows keyed by the now-dead run id (which the next load will reuse).
    pub(crate) fn rollback_run(&mut self, id: RunId) {
        if let Some(row) = self.runs.remove_last(&id) {
            if let Some(v) = self.runs_by_spec.get_mut(&row.spec) {
                v.retain(|&x| x != id);
            }
            self.next_run = id.0;
            self.cache.invalidate_run(id);
            self.index.invalidate_run(id);
            self.labels.invalidate_run(id);
        }
    }

    /// Undoes the most recent [`Warehouse::begin_stream`].
    pub(crate) fn rollback_stream(&mut self, id: RunId) {
        self.streams.remove(&id);
        self.rollback_run(id);
    }

    /// Iterates over all rows (persistence support).
    pub(crate) fn export_rows(&self) -> ExportedRows {
        let mut specs: Vec<(SpecId, SpecRow)> =
            self.specs.entries().map(|(k, v)| (*k, v.clone())).collect();
        specs.sort_by_key(|(k, _)| *k);
        let mut views: Vec<(ViewId, ViewRow)> =
            self.views.entries().map(|(k, v)| (*k, v.clone())).collect();
        views.sort_by_key(|(k, _)| *k);
        let mut runs: Vec<(RunId, RunRow)> =
            self.runs.entries().map(|(k, v)| (*k, v.clone())).collect();
        runs.sort_by_key(|(k, _)| *k);
        (specs, views, runs)
    }

    /// Rebuilds a warehouse from exported rows (persistence support).
    pub(crate) fn from_rows(
        specs: Vec<(SpecId, SpecRow)>,
        views: Vec<(ViewId, ViewRow)>,
        runs: Vec<(RunId, RunRow)>,
    ) -> Self {
        let mut w = Warehouse::new();
        for (id, row) in specs {
            w.next_spec = w.next_spec.max(id.0 + 1);
            w.spec_by_name.insert(row.spec.name().to_string(), id);
            w.specs.insert(id, row).expect("unique spec ids");
        }
        for (id, row) in views {
            w.next_view = w.next_view.max(id.0 + 1);
            w.views_by_spec.entry(row.spec).or_default().push(id);
            w.views.insert(id, row).expect("unique view ids");
        }
        for (id, row) in runs {
            w.next_run = w.next_run.max(id.0 + 1);
            w.runs_by_spec.entry(row.spec).or_default().push(id);
            w.runs.insert(id, row).expect("unique run ids");
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, StepId};

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("wh-spec");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let (a, bb) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(s);
        rb.user("alice");
        let s1 = rb.step(a);
        let s2 = rb.step(bb);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        rb.build().unwrap()
    }

    #[test]
    fn end_to_end_register_load_query() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let bb = w.register_view(sid, UserView::black_box(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();

        let res = w.deep_provenance(rid, admin, DataId(3)).unwrap();
        assert_eq!(res.tuples(), 3);
        let res = w.deep_provenance(rid, bb, DataId(3)).unwrap();
        assert_eq!(res.tuples(), 2); // d1 and d3; d2 hidden

        // d2 is hidden under the black box.
        match w.deep_provenance(rid, bb, DataId(2)).unwrap_err() {
            WarehouseError::DataNotVisible { data, view } => {
                assert_eq!(data, DataId(2));
                assert_eq!(view, "UBlackBox");
            }
            e => panic!("unexpected {e}"),
        }
        // d99 does not exist at all.
        assert!(matches!(
            w.deep_provenance(rid, bb, DataId(99)).unwrap_err(),
            WarehouseError::DataNotFound(DataId(99))
        ));

        let stats = w.stats();
        assert_eq!(stats.specs, 1);
        assert_eq!(stats.views, 2);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.steps, 2);
        assert_eq!(stats.data_objects, 3);
        assert_eq!(stats.cached_view_runs, 2);
    }

    #[test]
    fn backend_selector_dispatches_and_answers_agree() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();

        // Automatic policy: a 4-node run graph sits far below the
        // threshold, so the bitset backend answers.
        assert_eq!(w.index_backend(), None);
        assert_eq!(w.backend_for(4), IndexBackend::Bitset);
        assert_eq!(w.backend_policy(), "auto");
        let baseline = w.deep_provenance(rid, admin, DataId(3)).unwrap();
        let dep_baseline = w.dependents_of(rid, admin, DataId(1)).unwrap();
        assert_eq!(w.index_counters().1, 1, "bitset index built once");
        assert_eq!(w.label_index_counters(), (0, 0), "labels untouched");

        // Dropping the threshold flips the same run onto labels.
        w.set_labels_threshold(1);
        assert_eq!(w.backend_for(4), IndexBackend::Labels);
        assert_eq!(w.deep_provenance(rid, admin, DataId(3)).unwrap(), baseline);
        assert_eq!(
            w.dependents_of(rid, admin, DataId(1)).unwrap(),
            dep_baseline
        );
        assert_eq!(w.label_index_counters().1, 1, "label index built once");

        // Forcing each backend overrides the policy; every answer agrees.
        for backend in [
            IndexBackend::Bfs,
            IndexBackend::Bitset,
            IndexBackend::Labels,
        ] {
            w.set_index_backend(Some(backend));
            assert_eq!(w.index_backend(), Some(backend));
            assert_eq!(w.backend_policy(), backend.name());
            assert_eq!(w.backend_for(1_000_000), backend);
            assert_eq!(w.deep_provenance(rid, admin, DataId(3)).unwrap(), baseline);
            assert_eq!(
                w.dependents_of(rid, admin, DataId(1)).unwrap(),
                dep_baseline
            );
        }
        w.set_index_backend(None);
        assert_eq!(w.index_backend(), None);

        // The gauges see both resident indexes.
        let ix = w.index_metrics();
        assert!(ix.bitset_bytes > 0);
        assert!(ix.label_bytes > 0);
        assert!(ix.label_intervals >= 8, "4 nodes × 2 directions ≥ 8");
        assert_eq!(ix.backend, "auto");
        assert_eq!(
            ix.label_count_hist.iter().sum::<u64>(),
            8,
            "one histogram entry per node per direction"
        );

        // clear_cache drops the label cache too.
        w.clear_cache();
        assert_eq!(w.index_metrics().label_bytes, 0);
        assert_eq!(w.index_metrics().bitset_bytes, 0);
    }

    #[test]
    fn immediate_answers_resolve_metadata() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();
        match w.immediate_provenance(rid, admin, DataId(1)).unwrap() {
            ImmediateAnswer::UserInput { meta } => {
                assert_eq!(meta.unwrap().user, "alice");
            }
            o => panic!("unexpected {o:?}"),
        }
        match w.immediate_provenance(rid, admin, DataId(2)).unwrap() {
            ImmediateAnswer::Produced { exec, inputs, .. } => {
                assert_eq!(exec, StepId(1));
                assert_eq!(inputs, vec![DataId(1)]);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn log_ingestion_path() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let log = EventLog::from_run(&run(&s), &s);
        let rid = w.load_log(sid, &log).unwrap();
        assert_eq!(w.run(rid).unwrap().step_count(), 2);
        assert_eq!(w.runs_of_spec(sid), &[rid]);
    }

    #[test]
    fn duplicate_and_mismatch_errors() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        assert!(matches!(
            w.register_spec(s.clone()).unwrap_err(),
            WarehouseError::DuplicateSpecName(_)
        ));

        // A view of some other spec cannot be registered under sid.
        let mut b2 = SpecBuilder::new("other");
        b2.analysis("X");
        b2.from_input("X").to_output("X");
        let other = b2.build().unwrap();
        assert!(matches!(
            w.register_view(sid, UserView::admin(&other)).unwrap_err(),
            WarehouseError::SpecMismatch { .. }
        ));
        assert!(matches!(
            w.load_run(sid, {
                let mut rb = RunBuilder::new(&other);
                let s1 = rb.step(other.module("X").unwrap());
                rb.input_edge(s1, [1]).output_edge(s1, [2]);
                rb.build().unwrap()
            })
            .unwrap_err(),
            WarehouseError::SpecMismatch { .. }
        ));

        // Cross-spec view/run pairing is rejected at query time.
        let oid = w.register_spec(other.clone()).unwrap();
        let oview = w.register_view(oid, UserView::admin(&other)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();
        assert!(matches!(
            w.view_run(rid, oview).unwrap_err(),
            WarehouseError::SpecMismatch { .. }
        ));
    }

    #[test]
    fn lookups() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        assert_eq!(w.spec_by_name("wh-spec"), Some(sid));
        assert_eq!(w.spec_by_name("nope"), None);
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        assert_eq!(w.find_view(sid, "UAdmin"), Some(admin));
        assert_eq!(w.find_view(sid, "UBio"), None);
        assert_eq!(w.view_spec(admin).unwrap(), sid);
        assert!(w.view(ViewId(99)).is_err());
        assert!(w.run(RunId(99)).is_err());
        assert!(w.spec(SpecId(99)).is_err());
    }

    #[test]
    fn view_switches_share_one_index() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let bb = w.register_view(sid, UserView::black_box(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();

        // Repeatedly switching views over the same run must build the
        // base-closure index exactly once (the paper's ≈13 ms view-switch
        // property): every query after the first is an index hit.
        for _ in 0..3 {
            w.deep_provenance(rid, admin, DataId(3)).unwrap();
            w.deep_provenance(rid, bb, DataId(3)).unwrap();
        }
        let (hits, misses) = w.index_counters();
        assert_eq!(misses, 1, "index built more than once across view switches");
        assert_eq!(hits, 5);

        let stats = w.stats();
        assert_eq!(stats.cached_indexes, 1);
        assert_eq!(stats.index_misses, 1);
        assert_eq!(stats.index_hits, 5);
        assert!(stats.index_build_nanos > 0);

        // clear_cache drops the index too; the next query rebuilds it.
        w.clear_cache();
        assert_eq!(w.stats().cached_indexes, 0);
        w.deep_provenance(rid, admin, DataId(3)).unwrap();
        assert_eq!(w.index_counters(), (5, 2));
    }

    #[test]
    fn data_between_reports_the_unknown_execution() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();

        // Known executions answer normally.
        assert_eq!(
            w.data_between(rid, admin, Some(StepId(1)), Some(StepId(2)))
                .unwrap(),
            vec![DataId(2)]
        );
        // Unknown endpoint surfaces as ExecNotFound naming the culprit,
        // not the old bogus DataNotFound(d0).
        match w
            .data_between(rid, admin, Some(StepId(1)), Some(StepId(42)))
            .unwrap_err()
        {
            WarehouseError::ExecNotFound(s) => assert_eq!(s, StepId(42)),
            e => panic!("unexpected {e}"),
        }
        match w
            .data_between(rid, admin, Some(StepId(99)), None)
            .unwrap_err()
        {
            WarehouseError::ExecNotFound(s) => assert_eq!(s, StepId(99)),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn stale_view_of_same_named_spec_rejected() {
        // A view whose spec_name matches but whose partition was built
        // against a different (e.g. outdated) spec must be rejected at
        // registration, not at query time.
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let mut b = SpecBuilder::new("wh-spec");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let stale = b.build().unwrap();
        assert!(matches!(
            w.register_view(sid, UserView::admin(&stale)).unwrap_err(),
            WarehouseError::Model(_)
        ));
    }

    #[test]
    fn rollbacks_undo_the_latest_mutation() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let vid = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();
        // Warm the caches so run rollback must evict them.
        w.deep_provenance(rid, vid, DataId(3)).unwrap();
        assert_eq!(w.stats().cached_indexes, 1);

        w.rollback_run(rid);
        assert_eq!(w.stats().runs, 0);
        assert!(w.runs_of_spec(sid).is_empty());
        assert_eq!(w.stats().cached_view_runs, 0);
        assert_eq!(w.stats().cached_indexes, 0);

        w.rollback_view(vid);
        assert_eq!(w.stats().views, 0);
        assert_eq!(w.find_view(sid, "UAdmin"), None);

        w.rollback_spec(sid);
        assert_eq!(w.stats().specs, 0);
        assert_eq!(w.spec_by_name("wh-spec"), None);

        // Ids are reusable: the replayed sequence assigns the same ids.
        assert_eq!(w.register_spec(s.clone()).unwrap(), sid);
        assert_eq!(w.register_view(sid, UserView::admin(&s)).unwrap(), vid);
        assert_eq!(w.load_run(sid, run(&s)).unwrap(), rid);
    }

    #[test]
    fn batch_matches_serial() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let bb = w.register_view(sid, UserView::black_box(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();

        let queries = [
            (rid, admin, DataId(3)),
            (rid, bb, DataId(3)),
            (rid, admin, DataId(2)),
            (rid, bb, DataId(99)),         // missing
            (rid, bb, DataId(2)),          // hidden
            (RunId(42), admin, DataId(1)), // unknown run
        ];
        let batch = w.deep_provenance_many(&queries);
        assert_eq!(batch.len(), queries.len());
        for (res, &(r, v, d)) in batch.iter().zip(&queries) {
            match (res, w.deep_provenance(r, v, d)) {
                (Ok(a), Ok(b)) => assert_eq!(*a, b),
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => panic!("batch {a:?} vs serial {b:?}"),
            }
        }
        assert!(w.deep_provenance_many(&[]).is_empty());
    }

    #[test]
    fn batch_preserves_input_order_under_skew() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();
        w.set_max_batch_workers(4);

        // Alternate instant failures (unknown run) with real deep queries
        // on a batch much larger than the worker pool, so fast workers
        // steal far ahead of slow ones. Each slot must still hold the
        // answer to *its* input.
        let queries: Vec<_> = (0..64u32)
            .map(|i| {
                if i % 2 == 0 {
                    (RunId(1000 + i), admin, DataId(1))
                } else {
                    (rid, admin, DataId(3))
                }
            })
            .collect();
        let expected = w.deep_provenance(rid, admin, DataId(3)).unwrap();
        let batch = w.deep_provenance_many(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, res) in batch.iter().enumerate() {
            if i % 2 == 0 {
                assert!(
                    matches!(res, Err(WarehouseError::RunNotFound(r)) if *r == RunId(1000 + i as u32)),
                    "slot {i} lost its input: {res:?}"
                );
            } else {
                assert_eq!(res.as_ref().unwrap(), &expected, "slot {i} out of order");
            }
        }
    }

    #[test]
    fn cache_behavior() {
        let mut w = Warehouse::new();
        let s = spec();
        let sid = w.register_spec(s.clone()).unwrap();
        let admin = w.register_view(sid, UserView::admin(&s)).unwrap();
        let rid = w.load_run(sid, run(&s)).unwrap();
        let _ = w.view_run(rid, admin).unwrap();
        let _ = w.view_run(rid, admin).unwrap();
        assert_eq!(w.cache_counters(), (1, 1));
        w.clear_cache();
        assert_eq!(w.stats().cached_view_runs, 0);
        let _ = w.view_run_uncached(rid, admin).unwrap();
        assert_eq!(w.stats().cached_view_runs, 0);
    }
}
