//! The unified crash-safe store: snapshot + journal behind a manifest.
//!
//! [`crate::persist`] gives whole-warehouse snapshots; [`crate::journal`]
//! gives incremental appends. A real deployment needs both at once —
//! snapshots bound recovery time, the journal makes every mutation durable
//! as it happens — plus an *atomic* way to switch between generations of
//! the pair. [`DurableWarehouse`] composes them inside one directory:
//!
//! ```text
//! <dir>/MANIFEST            current epoch + file names (the commit point)
//! <dir>/snap-000007.zoomwh  snapshot of everything up to epoch 7
//! <dir>/wal-000007.zoomwj   journal tail of mutations since that snapshot
//! ```
//!
//! `open` recovers snapshot-then-tail; every mutation appends to the tail
//! (with rollback of the in-memory change if the append fails); when the
//! tail outgrows [`DurableOptions::compact_threshold_bytes`], the store
//! compacts: write `snap-{e+1}`, start an empty `wal-{e+1}`, fsync both,
//! atomically swing `MANIFEST` to the new generation, then best-effort
//! remove the old one. A crash at *any* point leaves either the old
//! generation (manifest not yet swung) or the new one (swung) fully
//! intact; leftovers of the other are strays, cleaned on the next open.
//!
//! Replay is id-checked: each journaled record carries the id it was
//! assigned, and replay over the recovered snapshot must assign the same
//! id — the proof that the tail really continues that snapshot.

use crate::io::{RealFs, StorageIo};
use crate::journal::{self, JournalError, JournalRecord, ReplayOutcome};
use crate::persist::{self, PersistError};
use crate::resilience::{CircuitBreaker, HealthReport, RetryPolicy};
use crate::schema::{RunId, RunRow, SpecId, SpecRow, ViewId, ViewRow, WarehouseStats};
use crate::store::{Warehouse, WarehouseError};
use crate::stream::{PushOutcome, StreamError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use zoom_model::{EventLog, LogEvent, UserView, WorkflowRun, WorkflowSpec};

/// Magic bytes identifying a warehouse manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"ZOOMWM\x00\x01";

/// File name of the manifest inside a durable directory.
pub const MANIFEST: &str = "MANIFEST";

fn snap_name(epoch: u64) -> String {
    format!("snap-{epoch:06}.zoomwh")
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}.zoomwj")
}

/// Errors from the durable store.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Snapshot save/load error.
    Persist(PersistError),
    /// Journal append/replay error.
    Journal(JournalError),
    /// Warehouse-level rejection (invalid spec/view/run, unknown ids).
    Warehouse(WarehouseError),
    /// The manifest is missing, unreadable, or names impossible state.
    BadManifest(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::Persist(e) => write!(f, "snapshot error: {e}"),
            DurableError::Journal(e) => write!(f, "journal error: {e}"),
            DurableError::Warehouse(e) => write!(f, "warehouse error: {e}"),
            DurableError::BadManifest(m) => write!(f, "bad manifest: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

impl From<JournalError> for DurableError {
    fn from(e: JournalError) -> Self {
        // Unbox warehouse-level rejections so callers see them uniformly.
        match e {
            JournalError::Warehouse(we) => DurableError::Warehouse(we),
            other => DurableError::Journal(other),
        }
    }
}

impl From<WarehouseError> for DurableError {
    fn from(e: WarehouseError) -> Self {
        DurableError::Warehouse(e)
    }
}

impl From<zoom_model::ModelError> for DurableError {
    fn from(e: zoom_model::ModelError) -> Self {
        DurableError::Warehouse(WarehouseError::Model(e))
    }
}

/// Tuning knobs for [`DurableWarehouse`].
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// Journal-tail size (payload bytes past the magic header) above which
    /// a mutation triggers auto-compaction.
    pub compact_threshold_bytes: u64,
    /// Whether mutations compact automatically when the tail exceeds the
    /// threshold. With `false`, only explicit [`DurableWarehouse::checkpoint`]
    /// calls compact.
    pub auto_compact: bool,
    /// Retry policy applied to transient journal-append and checkpoint IO
    /// failures. [`RetryPolicy::none`] disables retrying.
    pub retry: RetryPolicy,
    /// Consecutive *permanent* journal-append failures that trip the write
    /// circuit breaker into degraded read-only mode (clamped to at least 1).
    pub breaker_threshold: u32,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            compact_threshold_bytes: 1 << 20, // 1 MiB
            auto_compact: true,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
        }
    }
}

/// The manifest names the live generation. Writing it (atomic rename) is
/// the commit point of a compaction.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
struct Manifest {
    epoch: u64,
    /// Snapshot file name, `None` until the first compaction.
    snapshot: Option<String>,
    /// Journal-tail file name.
    journal: String,
}

fn encode_manifest(m: &Manifest) -> Result<Vec<u8>, DurableError> {
    let payload = crate::codec::to_bytes(m).map_err(|e| DurableError::Persist(e.into()))?;
    let mut bytes = Vec::with_capacity(MANIFEST_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&journal::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, DurableError> {
    let head = MANIFEST_MAGIC.len();
    if bytes.len() < head + 8 || &bytes[..head] != MANIFEST_MAGIC {
        return Err(DurableError::BadManifest("bad magic".into()));
    }
    let len = u32::from_le_bytes(bytes[head..head + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[head + 4..head + 8].try_into().expect("4 bytes"));
    let payload = bytes
        .get(head + 8..head + 8 + len)
        .ok_or_else(|| DurableError::BadManifest("truncated".into()))?;
    if journal::crc32(payload) != crc {
        return Err(DurableError::BadManifest("crc mismatch".into()));
    }
    crate::codec::from_bytes(payload).map_err(|e| DurableError::Persist(e.into()))
}

/// Runs one durable IO step under `retry`, retrying transient filesystem
/// errors (wherever they surface in the [`DurableError`] tree) with
/// backoff. The original error is preserved on exhaustion.
fn retry_step<T>(
    retry: RetryPolicy,
    registry: &crate::metrics::MetricsRegistry,
    mut op: impl FnMut() -> Result<T, DurableError>,
) -> Result<T, DurableError> {
    let mut stash: Option<DurableError> = None;
    retry
        .run(
            || registry.record_io_retry(),
            || match op() {
                Ok(v) => Ok(v),
                Err(err) => {
                    let kind = match &err {
                        DurableError::Io(e) => Some(e.kind()),
                        DurableError::Persist(PersistError::Io(e)) => Some(e.kind()),
                        _ => None,
                    };
                    stash = Some(err);
                    // Non-IO failures surface as a permanent kind so the
                    // policy never retries them.
                    Err(std::io::Error::from(
                        kind.unwrap_or(std::io::ErrorKind::Other),
                    ))
                }
            },
        )
        .map_err(|e| stash.take().unwrap_or(DurableError::Io(e)))
}

/// Writes the manifest atomically: unique temp file, fsync, rename over
/// `MANIFEST`, fsync the directory. The rename is the commit point.
fn write_manifest(io: &dyn StorageIo, dir: &Path, m: &Manifest) -> Result<(), DurableError> {
    let target = dir.join(MANIFEST);
    let tmp = crate::io::unique_temp_path(&target);
    io.write(&tmp, &encode_manifest(m)?)?;
    if let Err(e) = io.rename(&tmp, &target) {
        let _ = io.remove_file(&tmp);
        return Err(e.into());
    }
    crate::io::sync_parent(io, &target)?;
    Ok(())
}

/// A crash-safe warehouse in one directory: snapshot + journal tail behind
/// a manifest, with automatic compaction.
///
/// ```
/// use zoom_warehouse::DurableWarehouse;
/// use zoom_model::SpecBuilder;
/// let mut dir = std::env::temp_dir();
/// dir.push(format!("zoom-durable-doc-{}", std::process::id()));
///
/// let mut b = SpecBuilder::new("doc");
/// b.analysis("A");
/// b.from_input("A").to_output("A");
/// let spec = b.build().unwrap();
///
/// let mut dw = DurableWarehouse::open(&dir).unwrap();
/// dw.register_spec(spec).unwrap();
/// drop(dw); // crash or exit: the record is already durable
///
/// let recovered = DurableWarehouse::open(&dir).unwrap();
/// assert_eq!(recovered.warehouse().stats().specs, 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableWarehouse {
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    inner: Warehouse,
    epoch: u64,
    snapshot: Option<String>,
    journal: String,
    journal_bytes: u64,
    journal_records: u64,
    compactions: u64,
    failed_compactions: u64,
    breaker: CircuitBreaker,
    options: DurableOptions,
}

impl fmt::Debug for DurableWarehouse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableWarehouse")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("journal_records", &self.journal_records)
            .field("journal_bytes", &self.journal_bytes)
            .field("compactions", &self.compactions)
            .finish_non_exhaustive()
    }
}

impl DurableWarehouse {
    /// Opens (or initializes) a durable warehouse in `dir` with default
    /// options.
    pub fn open(dir: &Path) -> Result<Self, DurableError> {
        Self::open_with(Arc::new(RealFs), dir, DurableOptions::default())
    }

    /// [`DurableWarehouse::open`] with explicit options.
    pub fn open_opts(dir: &Path, options: DurableOptions) -> Result<Self, DurableError> {
        Self::open_with(Arc::new(RealFs), dir, options)
    }

    /// Opens on an explicit storage backend. Recovery sequence:
    ///
    /// 1. no `MANIFEST` → initialize: empty `wal-000000`, then the manifest
    ///    (crash in between re-initializes next time — nothing committed);
    /// 2. load the manifest's snapshot (if any);
    /// 3. replay the journal tail over it with id checking, truncating a
    ///    torn final record;
    /// 4. best-effort removal of stray generation files the manifest does
    ///    not name (leftovers of a crashed compaction).
    pub fn open_with(
        io: Arc<dyn StorageIo>,
        dir: &Path,
        options: DurableOptions,
    ) -> Result<Self, DurableError> {
        io.create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST);
        if !io.exists(&manifest_path) {
            // Fresh init. Journal first, manifest last: until the manifest
            // exists, nothing is committed and reopen re-initializes.
            let wal = wal_name(0);
            io.write(&dir.join(&wal), journal::MAGIC)?;
            io.sync_dir(dir)?;
            write_manifest(
                &*io,
                dir,
                &Manifest {
                    epoch: 0,
                    snapshot: None,
                    journal: wal.clone(),
                },
            )?;
            let mut dw = DurableWarehouse {
                io,
                dir: dir.to_path_buf(),
                inner: Warehouse::new(),
                epoch: 0,
                snapshot: None,
                journal: wal,
                journal_bytes: 0,
                journal_records: 0,
                compactions: 0,
                failed_compactions: 0,
                breaker: CircuitBreaker::new(options.breaker_threshold),
                options,
            };
            dw.clean_strays();
            return Ok(dw);
        }

        let manifest = decode_manifest(&io.read(&manifest_path)?)?;
        let mut inner = match &manifest.snapshot {
            Some(name) => persist::load_with(&*io, &dir.join(name))?,
            None => Warehouse::new(),
        };
        let wal_path = dir.join(&manifest.journal);
        let bytes = io.read(&wal_path)?;
        if bytes.len() < journal::MAGIC.len() || &bytes[..journal::MAGIC.len()] != journal::MAGIC {
            return Err(DurableError::BadManifest(format!(
                "journal `{}` has a bad header",
                manifest.journal
            )));
        }
        let body = &bytes[journal::MAGIC.len()..];
        // The tail continues the snapshot: replayed ids must match.
        let ReplayOutcome { records, valid_end } = journal::replay_body(&mut inner, body, true)?;
        let keep = (journal::MAGIC.len() + valid_end) as u64;
        if keep < bytes.len() as u64 {
            io.set_len(&wal_path, keep)?;
        }
        let mut dw = DurableWarehouse {
            io,
            dir: dir.to_path_buf(),
            inner,
            epoch: manifest.epoch,
            snapshot: manifest.snapshot,
            journal: manifest.journal,
            journal_bytes: valid_end as u64,
            journal_records: records as u64,
            compactions: 0,
            failed_compactions: 0,
            breaker: CircuitBreaker::new(options.breaker_threshold),
            options,
        };
        dw.clean_strays();
        Ok(dw)
    }

    /// Removes generation files the manifest does not name — leftovers of
    /// a compaction that crashed before (new files) or after (old files)
    /// the manifest swing, plus orphaned temp files. Best-effort: failures
    /// are ignored; strays are inert until the next open retries.
    fn clean_strays(&mut self) {
        let Ok(names) = self.io.list_dir(&self.dir) else {
            return;
        };
        for name in names {
            if name == MANIFEST || Some(&name) == self.snapshot.as_ref() || name == self.journal {
                continue;
            }
            let generation = name.starts_with("snap-") || name.starts_with("wal-");
            if generation || name.ends_with(".tmp") {
                let _ = self.io.remove_file(&self.dir.join(&name));
            }
        }
    }

    /// Rejects the mutation up front when the breaker is open: degraded
    /// read-only mode fails writes fast, before the in-memory mutation,
    /// so there is nothing to roll back.
    fn check_writable(&mut self) -> Result<(), DurableError> {
        if self.breaker.is_open() {
            self.inner
                .metrics_registry()
                .record_degraded_write_rejected();
            return Err(DurableError::Warehouse(WarehouseError::Degraded));
        }
        Ok(())
    }

    fn append(&mut self, rec: &JournalRecord) -> Result<(), DurableError> {
        let frame = journal::encode_frame(rec)?;
        let started = std::time::Instant::now();
        let path = self.dir.join(&self.journal);
        let registry = self.inner.metrics_registry();
        let outcome = self.options.retry.run(
            || registry.record_io_retry(),
            || self.io.append(&path, &frame),
        );
        match outcome {
            Ok(()) => {
                self.breaker.record_success();
                registry.record_journal_append(started.elapsed().as_nanos() as u64);
                self.journal_bytes += frame.len() as u64;
                self.journal_records += 1;
                Ok(())
            }
            Err(e) => {
                if self.breaker.record_failure() {
                    registry.record_breaker_trip();
                }
                Err(e.into())
            }
        }
    }

    /// Compacts after a committed mutation if the tail outgrew the
    /// threshold. The mutation is already durable, so a failed compaction
    /// is counted but never surfaced as the mutation's error. Deferred
    /// while streams are active (see [`DurableWarehouse::checkpoint`]) —
    /// the tail keeps growing and compaction resumes after the last seal.
    fn maybe_compact(&mut self) {
        if self.inner.active_streams() > 0 {
            return;
        }
        if self.options.auto_compact
            && self.journal_bytes > self.options.compact_threshold_bytes
            && self.checkpoint().is_err()
        {
            self.failed_compactions += 1;
        }
    }

    /// Registers a specification, durably. On append failure the in-memory
    /// registration is rolled back so memory never diverges from disk.
    pub fn register_spec(&mut self, spec: WorkflowSpec) -> Result<SpecId, DurableError> {
        self.check_writable()?;
        let row = SpecRow { spec };
        let id = self.inner.register_spec(row.spec.clone())?;
        if let Err(e) = self.append(&JournalRecord::Spec(id, row)) {
            self.inner.rollback_spec(id);
            return Err(e);
        }
        self.maybe_compact();
        Ok(id)
    }

    /// Registers a view, durably (rolled back on a failed append).
    pub fn register_view(&mut self, spec: SpecId, view: UserView) -> Result<ViewId, DurableError> {
        self.check_writable()?;
        let id = self.inner.register_view(spec, view.clone())?;
        if let Err(e) = self.append(&JournalRecord::View(id, ViewRow { spec, view })) {
            self.inner.rollback_view(id);
            return Err(e);
        }
        self.maybe_compact();
        Ok(id)
    }

    /// Loads a run, durably (rolled back on a failed append).
    pub fn load_run(&mut self, spec: SpecId, run: WorkflowRun) -> Result<RunId, DurableError> {
        self.check_writable()?;
        let id = self.inner.load_run(spec, run.clone())?;
        if let Err(e) = self.append(&JournalRecord::Run(id, RunRow { spec, run })) {
            self.inner.rollback_run(id);
            return Err(e);
        }
        self.maybe_compact();
        Ok(id)
    }

    /// Ingests an event log, durably (journals the reconstructed run).
    pub fn load_log(&mut self, spec: SpecId, log: &EventLog) -> Result<RunId, DurableError> {
        let run = log.to_run(self.inner.spec(spec)?)?;
        self.load_run(spec, run)
    }

    /// Opens a streaming run, durably (rolled back on a failed append).
    ///
    /// While any stream is live, auto-compaction is deferred and explicit
    /// checkpoints are rejected: a snapshot carries only committed rows,
    /// so the journal tail from `StreamBegin` onward *is* the stream's
    /// durable state.
    pub fn begin_stream(&mut self, spec: SpecId) -> Result<RunId, DurableError> {
        self.check_writable()?;
        let id = self.inner.begin_stream(spec)?;
        if let Err(e) = self.append(&JournalRecord::StreamBegin(id, spec)) {
            self.inner.rollback_stream(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Pushes one streaming event, durably. The order is
    /// validate-then-journal-then-apply: `stream_accept` is read-only,
    /// so a failed append changes nothing and needs no rollback, and by
    /// the time memory moves the event is already on disk — an
    /// acknowledged event survives any crash.
    pub fn stream_push(
        &mut self,
        run: RunId,
        event: &LogEvent,
    ) -> Result<PushOutcome, DurableError> {
        self.check_writable()?;
        let commit = self.inner.stream_accept(run, event)?;
        self.append(&JournalRecord::StreamEvent(run, event.clone()))?;
        Ok(self.inner.stream_apply(run, commit))
    }

    /// Seals a streaming run, durably (same accept/journal/apply order as
    /// [`DurableWarehouse::stream_push`]). Sealing the last live stream
    /// re-enables compaction, which may trigger immediately if the tail
    /// outgrew the threshold during the stream.
    pub fn stream_seal(&mut self, run: RunId) -> Result<(), DurableError> {
        self.check_writable()?;
        let commit = self.inner.stream_seal_check(run)?;
        self.append(&JournalRecord::StreamSeal(run))?;
        self.inner.stream_seal_apply(run, commit);
        self.maybe_compact();
        Ok(())
    }

    /// Compacts now: snapshot the full state as epoch `e+1`, start an
    /// empty journal, and atomically swing the manifest.
    ///
    /// Ordering (each step fsynced before the next):
    /// 1. write `snap-{e+1}` (temp + rename + dir fsync);
    /// 2. create empty `wal-{e+1}`, fsync the directory;
    /// 3. rewrite `MANIFEST` atomically — **the commit point**;
    /// 4. best-effort removal of the old generation (failures leave strays
    ///    for the next open).
    ///
    /// A crash before step 3 leaves the old generation live (new files are
    /// strays); after it, the new generation is live.
    ///
    /// When the write breaker is open, a checkpoint doubles as the
    /// half-open probe: success rewrites the snapshot from memory — disk
    /// provably matches memory again — so the breaker closes and the store
    /// leaves degraded mode; failure re-opens it.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        // A snapshot cannot carry mid-stream ingestor state; compacting
        // now would strand every live stream's buffered events. Callers
        // seal (or the streams finish) first.
        let active = self.inner.active_streams();
        if active > 0 {
            return Err(DurableError::Warehouse(WarehouseError::Stream(
                StreamError::ActiveStreams(active),
            )));
        }
        let started = std::time::Instant::now();
        let probing = self.breaker.is_open();
        if probing {
            self.breaker.begin_probe();
        }
        let epoch = self.epoch + 1;
        let snap = snap_name(epoch);
        let wal = wal_name(epoch);
        if let Err(e) = self.write_generation(&snap, &wal, epoch) {
            if probing {
                // The probe failed: back to open, not a fresh trip.
                self.breaker.record_failure();
            }
            return Err(e);
        }
        if self.breaker.record_success() {
            self.inner.metrics_registry().record_breaker_recovery();
        }
        // Committed. The old generation is now garbage.
        let _ = self.io.remove_file(&self.dir.join(&self.journal));
        if let Some(old) = &self.snapshot {
            if *old != snap {
                let _ = self.io.remove_file(&self.dir.join(old));
            }
        }
        self.epoch = epoch;
        self.snapshot = Some(snap);
        self.journal = wal;
        self.journal_bytes = 0;
        self.journal_records = 0;
        self.compactions += 1;
        self.inner
            .metrics_registry()
            .record_checkpoint(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// The checkpoint's IO sequence up to and including the manifest swing
    /// (the commit point), each step retried on transient errors.
    fn write_generation(&self, snap: &str, wal: &str, epoch: u64) -> Result<(), DurableError> {
        let retry = self.options.retry;
        let registry = self.inner.metrics_registry();
        retry_step(retry, registry, || {
            persist::save_with(&*self.io, &self.inner, &self.dir.join(snap)).map_err(Into::into)
        })?;
        retry_step(retry, registry, || {
            self.io
                .write(&self.dir.join(wal), journal::MAGIC)
                .map_err(Into::into)
        })?;
        retry_step(retry, registry, || {
            self.io.sync_dir(&self.dir).map_err(Into::into)
        })?;
        retry_step(retry, registry, || {
            write_manifest(
                &*self.io,
                &self.dir,
                &Manifest {
                    epoch,
                    snapshot: Some(snap.to_string()),
                    journal: wal.to_string(),
                },
            )
        })
    }

    /// Read access to the recovered/live warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.inner
    }

    /// Rebuilds the inner warehouse's admission control with new limits
    /// (the one configuration mutation that is safe on a durable store —
    /// it touches no journaled state).
    pub fn set_admission_limits(&mut self, max_in_flight: usize, max_queue: usize) {
        self.inner.set_admission_limits(max_in_flight, max_queue);
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage backend this store opened on. The supervisor's online
    /// repair re-opens a fresh store on the *same* backend so armed fault
    /// schedules (tests) and real disks (production) behave identically.
    pub fn io(&self) -> Arc<dyn StorageIo> {
        Arc::clone(&self.io)
    }

    /// The options this store opened with (repair reopens with the same).
    pub fn options(&self) -> DurableOptions {
        self.options
    }

    /// Current durability epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compactions performed since this handle opened (auto + explicit).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Auto-compactions that failed since this handle opened (the
    /// triggering mutations were already durable, so they still succeeded).
    pub fn failed_compactions(&self) -> u64 {
        self.failed_compactions
    }

    /// Warehouse statistics with the durability counters filled in.
    pub fn stats(&self) -> WarehouseStats {
        let mut s = self.inner.stats();
        s.journal_records = self.journal_records;
        s.journal_bytes = self.journal_bytes;
        s.compactions = self.compactions;
        s.epoch = self.epoch;
        s.degraded = self.breaker.is_open();
        s
    }

    /// Whether the write circuit breaker has the store in degraded
    /// read-only mode (mutations fail fast; queries keep serving).
    pub fn degraded(&self) -> bool {
        self.breaker.is_open()
    }

    /// A point-in-time health report: breaker state plus the lifetime
    /// resilience counters from the metrics registry.
    pub fn health(&self) -> HealthReport {
        let registry = self.inner.metrics_registry();
        HealthReport {
            writable: !self.breaker.is_open(),
            breaker: self.breaker.state(),
            consecutive_failures: self.breaker.consecutive_failures(),
            breaker_trips: registry.breaker_trips(),
            breaker_recoveries: registry.breaker_recoveries(),
            io_retries: registry.io_retries(),
            degraded_writes_rejected: registry.degraded_writes_rejected(),
            durable: true,
            state: if self.breaker.is_open() {
                crate::resilience::ShardState::Degraded
            } else {
                crate::resilience::ShardState::Healthy
            },
            epoch: self.epoch,
            quarantines: registry.shard_quarantines(),
            repairs: registry.shard_repairs(),
            last_repair_nanos: 0,
        }
    }
}

/// What [`fsck`] found in a durable directory.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Manifest epoch.
    pub epoch: u64,
    /// Snapshot file named by the manifest, if any.
    pub snapshot: Option<String>,
    /// Journal file named by the manifest.
    pub journal: String,
    /// Specifications recovered.
    pub specs: usize,
    /// Views recovered.
    pub views: usize,
    /// Runs recovered.
    pub runs: usize,
    /// Intact journal-tail records.
    pub journal_records: usize,
    /// Bytes of torn tail past the last intact record (0 on a clean
    /// shutdown).
    pub torn_bytes: u64,
    /// Generation/temp files the manifest does not name.
    pub strays: Vec<String>,
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "epoch:           {}", self.epoch)?;
        writeln!(
            f,
            "snapshot:        {}",
            self.snapshot.as_deref().unwrap_or("(none)")
        )?;
        writeln!(f, "journal:         {}", self.journal)?;
        writeln!(f, "journal records: {}", self.journal_records)?;
        writeln!(f, "torn bytes:      {}", self.torn_bytes)?;
        writeln!(
            f,
            "state:           {} specs, {} views, {} runs",
            self.specs, self.views, self.runs
        )?;
        if self.strays.is_empty() {
            write!(f, "strays:          (none)")
        } else {
            write!(f, "strays:          {}", self.strays.join(", "))
        }
    }
}

/// Verifies a durable directory without modifying it: checks the manifest,
/// loads and validates the snapshot, replays the journal tail with id
/// checking, and reports torn bytes and stray files.
pub fn fsck(dir: &Path) -> Result<FsckReport, DurableError> {
    fsck_with(&RealFs, dir)
}

/// [`fsck`] on an explicit storage backend.
pub fn fsck_with(io: &dyn StorageIo, dir: &Path) -> Result<FsckReport, DurableError> {
    let manifest = decode_manifest(&io.read(&dir.join(MANIFEST))?)?;
    let mut w = match &manifest.snapshot {
        Some(name) => persist::load_with(io, &dir.join(name))?,
        None => Warehouse::new(),
    };
    let bytes = io.read(&dir.join(&manifest.journal))?;
    if bytes.len() < journal::MAGIC.len() || &bytes[..journal::MAGIC.len()] != journal::MAGIC {
        return Err(DurableError::BadManifest(format!(
            "journal `{}` has a bad header",
            manifest.journal
        )));
    }
    let body = &bytes[journal::MAGIC.len()..];
    let outcome = journal::replay_body(&mut w, body, true)?;
    let mut strays = Vec::new();
    if let Ok(names) = io.list_dir(dir) {
        for name in names {
            if name == MANIFEST
                || Some(&name) == manifest.snapshot.as_ref()
                || name == manifest.journal
            {
                continue;
            }
            if name.starts_with("snap-") || name.starts_with("wal-") || name.ends_with(".tmp") {
                strays.push(name);
            }
        }
    }
    let stats = w.stats();
    Ok(FsckReport {
        epoch: manifest.epoch,
        snapshot: manifest.snapshot,
        journal: manifest.journal,
        specs: stats.specs,
        views: stats.views,
        runs: stats.runs,
        journal_records: outcome.records,
        torn_bytes: (body.len() - outcome.valid_end) as u64,
        strays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultFs;
    use zoom_model::{DataId, RunBuilder, SpecBuilder};

    fn tempdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zoom-durable-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("d");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn run(s: &WorkflowSpec) -> WorkflowRun {
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        rb.build().unwrap()
    }

    #[test]
    fn fresh_open_initializes_and_reopens() {
        let dir = tempdir("fresh");
        let dw = DurableWarehouse::open(&dir).unwrap();
        assert_eq!(dw.epoch(), 0);
        assert!(dir.join(MANIFEST).exists());
        assert!(dir.join(wal_name(0)).exists());
        drop(dw);
        let dw = DurableWarehouse::open(&dir).unwrap();
        assert_eq!(dw.epoch(), 0);
        assert_eq!(dw.warehouse().stats().specs, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tempdir("survive");
        let s = spec();
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            let sid = dw.register_spec(s.clone()).unwrap();
            dw.register_view(sid, UserView::admin(&s)).unwrap();
            dw.load_run(sid, run(&s)).unwrap();
            assert_eq!(dw.stats().journal_records, 3);
        }
        let dw = DurableWarehouse::open(&dir).unwrap();
        let st = dw.stats();
        assert_eq!((st.specs, st.views, st.runs), (1, 1, 1));
        assert_eq!(st.journal_records, 3);
        assert_eq!(st.epoch, 0);
        let w = dw.warehouse();
        let sid = w.spec_by_name("d").unwrap();
        let vid = w.find_view(sid, "UAdmin").unwrap();
        let rid = w.runs_of_spec(sid)[0];
        assert_eq!(w.deep_provenance(rid, vid, DataId(3)).unwrap().tuples(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_swings_the_generation() {
        let dir = tempdir("checkpoint");
        let s = spec();
        let mut dw = DurableWarehouse::open(&dir).unwrap();
        let sid = dw.register_spec(s.clone()).unwrap();
        dw.register_view(sid, UserView::admin(&s)).unwrap();
        dw.checkpoint().unwrap();
        assert_eq!(dw.epoch(), 1);
        assert_eq!(dw.compactions(), 1);
        assert_eq!(dw.stats().journal_records, 0);
        // Old generation is gone, new one is live.
        assert!(!dir.join(wal_name(0)).exists());
        assert!(dir.join(snap_name(1)).exists());
        assert!(dir.join(wal_name(1)).exists());
        // Mutations continue on the new tail and everything reopens.
        dw.load_run(sid, run(&s)).unwrap();
        drop(dw);
        let dw = DurableWarehouse::open(&dir).unwrap();
        let st = dw.stats();
        assert_eq!((st.specs, st.views, st.runs), (1, 1, 1));
        assert_eq!(st.epoch, 1);
        assert_eq!(st.journal_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_at_threshold() {
        let dir = tempdir("auto");
        let s = spec();
        let mut dw = DurableWarehouse::open_opts(
            &dir,
            DurableOptions {
                compact_threshold_bytes: 64, // any spec record exceeds this
                auto_compact: true,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        let sid = dw.register_spec(s.clone()).unwrap();
        assert!(dw.compactions() >= 1, "tiny threshold must auto-compact");
        assert_eq!(dw.stats().journal_records, 0);
        assert_eq!(dw.failed_compactions(), 0);
        dw.register_view(sid, UserView::admin(&s)).unwrap();
        dw.load_run(sid, run(&s)).unwrap();
        drop(dw);
        let dw = DurableWarehouse::open(&dir).unwrap();
        let st = dw.stats();
        assert_eq!((st.specs, st.views, st.runs), (1, 1, 1));
        assert!(st.epoch >= 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = tempdir("torn");
        let s = spec();
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            let sid = dw.register_spec(s.clone()).unwrap();
            dw.load_run(sid, run(&s)).unwrap();
        }
        let wal = dir.join(wal_name(0));
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
        // fsck sees the tear without repairing it.
        let report = fsck(&dir).unwrap();
        assert_eq!(report.journal_records, 1);
        assert!(report.torn_bytes > 0);
        // open drops the torn record and truncates.
        let dw = DurableWarehouse::open(&dir).unwrap();
        assert_eq!(dw.stats().journal_records, 1);
        assert_eq!(dw.warehouse().stats().runs, 0);
        let report = fsck(&dir).unwrap();
        assert_eq!(report.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctored_journal_id_rejected() {
        let dir = tempdir("doctored");
        let s = spec();
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            dw.register_spec(s.clone()).unwrap();
        }
        // Append a record claiming an id replay cannot assign.
        let frame = journal::encode_frame(&JournalRecord::Spec(
            SpecId(41),
            SpecRow {
                spec: {
                    let mut b = SpecBuilder::new("other");
                    b.analysis("X");
                    b.from_input("X").to_output("X");
                    b.build().unwrap()
                },
            },
        ))
        .unwrap();
        let fs = RealFs;
        fs.append(&dir.join(wal_name(0)), &frame).unwrap();
        match DurableWarehouse::open(&dir).unwrap_err() {
            DurableError::Journal(JournalError::IdMismatch { expected, got }) => {
                assert_eq!(expected, "spec#41");
                assert_eq!(got, "spec#1");
            }
            e => panic!("unexpected {e}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strays_cleaned_on_open() {
        let dir = tempdir("strays");
        {
            DurableWarehouse::open(&dir).unwrap();
        }
        std::fs::write(dir.join(snap_name(9)), b"leftover").unwrap();
        std::fs::write(dir.join(wal_name(9)), b"leftover").unwrap();
        std::fs::write(dir.join(".MANIFEST.1.2.tmp"), b"leftover").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"user file").unwrap();
        let report = fsck(&dir).unwrap();
        assert_eq!(report.strays.len(), 3);
        DurableWarehouse::open(&dir).unwrap();
        assert!(!dir.join(snap_name(9)).exists());
        assert!(!dir.join(wal_name(9)).exists());
        assert!(!dir.join(".MANIFEST.1.2.tmp").exists());
        // Files that are not ours are left alone.
        assert!(dir.join("unrelated.txt").exists());
        assert!(fsck(&dir).unwrap().strays.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_rolls_back_memory() {
        let dir = tempdir("rollback");
        let s = spec();
        // Count the ops an open costs, then allow exactly those: the first
        // mutation's append is the op that fails.
        let counting = Arc::new(FaultFs::counting());
        DurableWarehouse::open_with(counting.clone(), &dir, DurableOptions::default()).unwrap();
        let budget = counting.ops();
        std::fs::remove_dir_all(&dir).ok();

        let faulty = Arc::new(FaultFs::fail_after(budget, 0));
        let mut dw =
            DurableWarehouse::open_with(faulty.clone(), &dir, DurableOptions::default()).unwrap();
        assert!(!faulty.tripped());
        let err = dw.register_spec(s.clone()).unwrap_err();
        assert!(matches!(err, DurableError::Io(_)), "got {err}");
        assert!(faulty.tripped());
        // Memory rolled back: the spec is not visible.
        assert_eq!(dw.warehouse().stats().specs, 0);
        assert_eq!(dw.stats().journal_records, 0);
        assert!(dw.warehouse().spec_by_name("d").is_none());
        // And the directory still opens clean (nothing was committed).
        let dw = DurableWarehouse::open(&dir).unwrap();
        assert_eq!(dw.warehouse().stats().specs, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_reports_healthy_directory() {
        let dir = tempdir("fsck");
        let s = spec();
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            let sid = dw.register_spec(s.clone()).unwrap();
            dw.register_view(sid, UserView::admin(&s)).unwrap();
            dw.checkpoint().unwrap();
            dw.load_run(sid, run(&s)).unwrap();
        }
        let report = fsck(&dir).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.snapshot.as_deref(), Some(snap_name(1).as_str()));
        assert_eq!(report.journal, wal_name(1));
        assert_eq!((report.specs, report.views, report.runs), (1, 1, 1));
        assert_eq!(report.journal_records, 1);
        assert_eq!(report.torn_bytes, 0);
        assert!(report.strays.is_empty());
        let text = report.to_string();
        assert!(text.contains("epoch:           1"), "{text}");
        assert!(text.contains("1 specs, 1 views, 1 runs"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_survives_mid_run_reopen() {
        let dir = tempdir("stream-reopen");
        let s = spec();
        let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
        let log = {
            let mut rb = RunBuilder::new(&s);
            let s1 = rb.step(a);
            let s2 = rb.step(b);
            rb.input_edge(s1, [1])
                .data_edge(s1, s2, [2])
                .output_edge(s2, [3]);
            EventLog::from_run(&rb.build().unwrap(), &s)
        };
        // Push only the first half of the log, then "crash".
        let half = log.events.len() / 2;
        let rid;
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            let sid = dw.register_spec(s.clone()).unwrap();
            dw.register_view(sid, UserView::admin(&s)).unwrap();
            rid = dw.begin_stream(sid).unwrap();
            for ev in &log.events[..half] {
                dw.stream_push(rid, ev).unwrap();
            }
            assert!(dw.warehouse().is_streaming(rid));
        }
        // Recovery replays StreamBegin + the acknowledged events: the
        // stream is still live and accepts the rest, then seals.
        let mut dw = DurableWarehouse::open(&dir).unwrap();
        assert!(dw.warehouse().is_streaming(rid));
        // Mid-stream, a checkpoint is refused.
        match dw.checkpoint().unwrap_err() {
            DurableError::Warehouse(WarehouseError::Stream(StreamError::ActiveStreams(1))) => {}
            e => panic!("unexpected {e}"),
        }
        for ev in &log.events[half..] {
            dw.stream_push(rid, ev).unwrap();
        }
        dw.stream_seal(rid).unwrap();
        assert!(!dw.warehouse().is_streaming(rid));
        // Sealed: checkpoint works again, and the run answers queries
        // across one more reopen.
        dw.checkpoint().unwrap();
        drop(dw);
        let dw = DurableWarehouse::open(&dir).unwrap();
        let w = dw.warehouse();
        let sid = w.spec_by_name("d").unwrap();
        let vid = w.find_view(sid, "UAdmin").unwrap();
        assert_eq!(w.deep_provenance(rid, vid, DataId(3)).unwrap().tuples(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_events_are_durable_once_acknowledged() {
        let dir = tempdir("stream-acked");
        let s = spec();
        let rid;
        let mut acked = 0usize;
        {
            let mut dw = DurableWarehouse::open(&dir).unwrap();
            let sid = dw.register_spec(s.clone()).unwrap();
            rid = dw.begin_stream(sid).unwrap();
            let (a, b) = (s.module("A").unwrap(), s.module("B").unwrap());
            let log = {
                let mut rb = RunBuilder::new(&s);
                let s1 = rb.step(a);
                let s2 = rb.step(b);
                rb.input_edge(s1, [1])
                    .data_edge(s1, s2, [2])
                    .output_edge(s2, [3]);
                EventLog::from_run(&rb.build().unwrap(), &s)
            };
            for ev in &log.events {
                dw.stream_push(rid, ev).unwrap();
                acked += 1;
            }
        }
        // Every acknowledged event is in the journal tail; fsck sees the
        // records (1 spec + 1 begin + acked events) with no torn bytes.
        let report = fsck(&dir).unwrap();
        assert_eq!(report.journal_records, 2 + acked);
        assert_eq!(report.torn_bytes, 0);
        let dw = DurableWarehouse::open(&dir).unwrap();
        assert_eq!(dw.warehouse().stats().runs, 1);
        assert!(dw.warehouse().is_streaming(rid));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_corruption_detected() {
        let dir = tempdir("badmanifest");
        {
            DurableWarehouse::open(&dir).unwrap();
        }
        let mpath = dir.join(MANIFEST);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&mpath, &bytes).unwrap();
        assert!(matches!(
            DurableWarehouse::open(&dir).unwrap_err(),
            DurableError::BadManifest(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
